//! The PilotScope middleware demonstration (paper §3): a console managing
//! drivers over the push/pull DB interactor. The database user just runs
//! SQL — which AI4DB driver steers each query is transparent.
//!
//! ```bash
//! cargo run --example pilotscope_session
//! ```

use std::sync::Arc;

use lqo::card::data_driven::DeepDbEstimator;
use lqo::card::estimator::FitContext;
use lqo::engine::datagen::stats_like;
use lqo::engine::TrueCardOracle;
use lqo::framework::framework::OptContext;
use lqo::pilot::{BaoDriver, CardDriver, EngineInteractor, LeroDriver, PilotConsole};

fn main() {
    // The "database" plus the lightweight interactor patch.
    let catalog = Arc::new(stats_like(200, 99).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
    let mut console = PilotConsole::new(interactor);

    // Register drivers: a learned-cardinality driver wrapping DeepDB, plus
    // the Bao and Lero end-to-end optimizer drivers.
    let fit = FitContext {
        catalog: ctx.catalog.clone(),
        stats: ctx.stats.clone(),
    };
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let deepdb = Arc::new(DeepDbEstimator::fit(&fit, oracle));
    console
        .register_driver(Box::new(CardDriver::new(deepdb)))
        .unwrap();
    console
        .register_driver(Box::new(BaoDriver::new(ctx.clone())))
        .unwrap();
    console
        .register_driver(Box::new(LeroDriver::new(ctx)))
        .unwrap();
    println!("registered drivers: {:?}\n", console.driver_names());

    let workload = [
        "SELECT COUNT(*) FROM users u, posts p \
         WHERE u.id = p.owner_user_id AND u.reputation > 200",
        "SELECT COUNT(*) FROM posts p, comments c, votes v \
         WHERE p.id = c.post_id AND p.id = v.post_id AND v.vote_type < 3",
        "SELECT COUNT(*) FROM users u, badges b \
         WHERE u.id = b.user_id AND b.class = 0",
    ];

    // 1. Plain database, no driver.
    println!("-- plain database --");
    for sql in &workload {
        let out = console.execute_sql(sql).unwrap();
        println!(
            "  count={:<8} work={:>10.0}  driver={:?}",
            out.count, out.work, out.driver
        );
    }

    // 2. Each driver in turn; the SQL (and the answers) never change.
    for driver in ["learned-cardinality", "bao", "lero"] {
        console.start_driver(Some(driver)).unwrap();
        println!("\n-- driver: {driver} --");
        for sql in &workload {
            let out = console.execute_sql(sql).unwrap();
            println!(
                "  count={:<8} work={:>10.0}  driver={:?}",
                out.count, out.work, out.driver
            );
        }
    }

    // 3. Background model update, then a second steered pass.
    console.tick();
    console.start_driver(Some("bao")).unwrap();
    println!("\n-- bao after one background model update --");
    for sql in &workload {
        let out = console.execute_sql(sql).unwrap();
        println!("  count={:<8} work={:>10.0}", out.count, out.work);
    }
    println!(
        "\nqueries executed through the console: {}",
        console.executed()
    );
}
