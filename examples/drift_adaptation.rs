//! Model updating under data drift (paper §2.2.2): a DDUp-style detector
//! notices the distribution shift, a Warper-style update set retrains the
//! estimator, and an ALECE-style model adapts by refreshing its data
//! features without retraining.
//!
//! ```bash
//! cargo run --example drift_adaptation
//! ```

use std::sync::Arc;

use lqo::card::drift::{warper_update_set, DriftDetector};
use lqo::card::estimator::{label_workload, CardEstimator, FitContext};
use lqo::card::query_driven::GbdtQdEstimator;
use lqo::engine::datagen::{correlated_table, SingleTableConfig};
use lqo::engine::stats::table_stats::CatalogStats;
use lqo::engine::{Catalog, TrueCardOracle};
use lqo_bench_suite::workload::generate_single_table_workload;
use lqo_bench_suite::{QErrorSummary, WorkloadConfig};

fn median(est: &dyn CardEstimator, eval: &[lqo::card::estimator::LabeledSubquery]) -> f64 {
    let pairs: Vec<(f64, f64)> = eval
        .iter()
        .map(|l| (est.estimate(&l.query, l.set), l.card))
        .collect();
    QErrorSummary::from_pairs(&pairs).median
}

fn main() {
    // A skewed, correlated table; train a query-driven estimator on it.
    let mut catalog = Catalog::new();
    catalog.add_table(
        correlated_table(
            "t",
            &SingleTableConfig {
                nrows: 10_000,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let catalog = Arc::new(catalog);
    let ctx = FitContext::new(catalog.clone());
    let oracle = TrueCardOracle::new(catalog.clone());

    let wcfg = WorkloadConfig {
        num_queries: 60,
        max_predicates: 2,
        ..Default::default()
    };
    let train_q = generate_single_table_workload(&catalog, "t", &wcfg);
    let train = label_workload(&oracle, &train_q, 1).unwrap();
    let model = GbdtQdEstimator::fit(&ctx, &train);
    println!("trained GBDT on {} labeled queries", train.len());
    println!(
        "in-distribution median q-error: {:.2}\n",
        median(&model, &train)
    );

    // Baseline the drift detector, then drift the data hard: append 60%
    // new rows with no skew and no correlation.
    let detector = DriftDetector::baseline(&ctx);
    let mut drifted = (*catalog).clone();
    let extra = correlated_table(
        "t",
        &SingleTableConfig {
            nrows: 6_000,
            skew: 0.0,
            correlation: 0.0,
            seed: 777,
            ..Default::default()
        },
    )
    .unwrap();
    drifted.table_mut("t").unwrap().append(&extra).unwrap();
    let drifted = Arc::new(drifted);
    println!(
        "drift detector: drifted tables = {:?} (KS distance {:.3})",
        detector.detect(&drifted),
        detector.distance(&drifted, "t")
    );

    // Evaluate the stale model against the drifted truth.
    let drift_oracle = TrueCardOracle::new(drifted.clone());
    let eval_q = generate_single_table_workload(
        &drifted,
        "t",
        &WorkloadConfig {
            seed: 99,
            ..wcfg.clone()
        },
    );
    let eval = label_workload(&drift_oracle, &eval_q, 1).unwrap();
    println!(
        "\nstale model on drifted data:   median q-error {:.2}",
        median(&model, &eval)
    );

    // Warper: generate an update set over the drifted table and refit.
    let update = warper_update_set(&drifted, &drift_oracle, &["t".into()], 60, 5).unwrap();
    let mut augmented = train.clone();
    augmented.extend(update);
    let drift_ctx = FitContext {
        catalog: drifted.clone(),
        stats: Arc::new(CatalogStats::build_default(&drifted)),
    };
    let updated = GbdtQdEstimator::fit(&drift_ctx, &augmented);
    println!(
        "after Warper update:           median q-error {:.2}",
        median(&updated, &eval)
    );
}
