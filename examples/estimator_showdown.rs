//! A miniature of experiment T1: fit one estimator per Table-1 family and
//! compare q-error distributions on held-out multi-join queries.
//!
//! ```bash
//! cargo run --example estimator_showdown
//! ```

use std::sync::Arc;
use std::time::Instant;

use lqo::card::estimator::{label_workload, FitContext};
use lqo::card::registry::{build_estimator, EstimatorKind};
use lqo::engine::datagen::stats_like;
use lqo::engine::TrueCardOracle;
use lqo_bench_suite::{generate_workload, QErrorSummary, TextTable, WorkloadConfig};

fn main() {
    let catalog = Arc::new(stats_like(200, 5).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));

    let train_q = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 40,
            seed: 1,
            ..Default::default()
        },
    );
    let eval_q = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 20,
            seed: 2,
            ..Default::default()
        },
    );
    let train = label_workload(&oracle, &train_q, 3).unwrap();
    let eval = label_workload(&oracle, &eval_q, 3).unwrap();
    println!(
        "training on {} labeled sub-queries, evaluating on {}\n",
        train.len(),
        eval.len()
    );

    // One representative per family.
    let kinds = [
        EstimatorKind::Histogram,  // traditional
        EstimatorKind::GbdtQd,     // query-driven, statistical
        EstimatorKind::Mscn,       // query-driven, DNN
        EstimatorKind::Kde,        // data-driven, kernel
        EstimatorKind::NeuroCard,  // data-driven, autoregressive
        EstimatorKind::Flat,       // data-driven, PGM
        EstimatorKind::FactorJoin, // data-driven, join histograms
        EstimatorKind::Glue,       // hybrid
    ];

    let mut table = TextTable::new(
        "estimator showdown (held-out q-errors)",
        &["Method", "Technique", "median", "p95", "max", "fit-ms"],
    );
    for kind in kinds {
        let t0 = Instant::now();
        let est = build_estimator(kind, &ctx, &oracle, &train);
        let fit_ms = t0.elapsed().as_millis();
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|l| (est.estimate(&l.query, l.set), l.card))
            .collect();
        let q = QErrorSummary::from_pairs(&pairs);
        table.row(vec![
            est.name().into(),
            est.technique().into(),
            format!("{:.2}", q.median),
            format!("{:.2}", q.p95),
            format!("{:.0}", q.max),
            fit_ms.to_string(),
        ]);
    }
    println!("{}", table.render());
}
