//! End-to-end learned optimizers in their training loop: Bao and Lero
//! explore candidate plans, execute, learn from measured work, and (on
//! this skewed IMDB-like data, where histogram estimates mislead the
//! native optimizer) close the gap to the true-cardinality plans.
//!
//! ```bash
//! cargo run --example learned_optimizer_loop
//! ```

use std::sync::Arc;

use lqo::engine::datagen::imdb_like;
use lqo::framework::framework::{LearnedOptimizer, OptContext};
use lqo::framework::harness::TrainingLoop;
use lqo::framework::{bao, lero};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn main() {
    let catalog = Arc::new(imdb_like(250, 7).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 25,
            min_tables: 2,
            max_tables: 5,
            ..Default::default()
        },
    );
    println!(
        "workload: {} queries over the IMDB-like schema\n",
        queries.len()
    );

    let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
    let native = training.native_total();
    println!("native optimizer total work: {native:.0} units\n");

    for mut system in [bao(ctx.clone()), lero(ctx.clone())] {
        println!("--- {} ---", system.name());
        println!(
            "    explorer: {}, risk model: {}",
            system.explorer_name(),
            system.risk_name()
        );
        for (epoch, stats) in training.run(&mut system, 4).into_iter().enumerate() {
            println!(
                "    epoch {}: total {:>12.0} ({:.2}x native), {} regressions, worst {:.1}x",
                epoch + 1,
                stats.total_work,
                stats.total_work / native,
                stats.regressions,
                stats.max_regression,
            );
        }
        println!("    executions observed: {}\n", system.history_len());
    }
}
