//! Learned join-order search (paper §2.1.3): offline RL (DQ, RTOS-lite),
//! online adaptive methods (Eddy-RL, Skinner-MCTS) and the classical
//! baselines, compared on the same queries under true cardinalities.
//!
//! ```bash
//! cargo run --example join_order_search
//! ```

use std::sync::Arc;

use lqo::engine::datagen::imdb_like;
use lqo::engine::optimizer::CardSource;
use lqo::engine::{TrueCardOracle, TrueCardSource};
use lqo::joinorder::{
    DpBaseline, DqJoinOrderer, EddyRl, GreedyBaseline, JoinEnv, JoinOrderSearch, RtosLite,
    SkinnerMcts,
};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn main() {
    let catalog = Arc::new(imdb_like(150, 21).unwrap());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let card: Arc<dyn CardSource> = Arc::new(TrueCardSource::new(oracle));
    let env = JoinEnv::new(catalog.clone(), card);

    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 10,
            min_tables: 4,
            max_tables: 6,
            ..Default::default()
        },
    );
    println!("{} queries with 4–6 joined tables\n", queries.len());

    // Reference: exhaustive bushy DP.
    let mut dp = DpBaseline {
        left_deep_only: false,
    };
    let reference: Vec<f64> = queries
        .iter()
        .map(|q| env.tree_cost(q, &dp.find_plan(&env, q).unwrap()))
        .collect();

    let mut methods: Vec<Box<dyn JoinOrderSearch>> = vec![
        Box::new(DpBaseline {
            left_deep_only: true,
        }),
        Box::new(GreedyBaseline),
        Box::new(DqJoinOrderer::new(8, Default::default())),
        Box::new(RtosLite::new(8, 40)),
        Box::new(EddyRl::new(60)),
        Box::new(SkinnerMcts::new(300)),
    ];
    println!("{:<16} {:>14} {:>10}", "method", "geo-mean-ratio", "worst");
    for m in &mut methods {
        m.train(&env, &queries); // no-op for the online methods
        let ratios: Vec<f64> = queries
            .iter()
            .zip(&reference)
            .map(|(q, &r)| env.tree_cost(q, &m.find_plan(&env, q).unwrap()) / r)
            .collect();
        let geo = lqo::ml::metrics::geometric_mean(&ratios);
        let worst = ratios.iter().copied().fold(0.0f64, f64::max);
        println!("{:<16} {geo:>14.2} {worst:>9.1}x", m.name());
    }

    // Skinner's regret accounting from its last query.
    let mut skinner = SkinnerMcts::new(300);
    skinner.find_plan(&env, &queries[0]).unwrap();
    let report = skinner.last_report.unwrap();
    println!(
        "\nSkinner regret report: final cost {:.0}, best seen {:.0}, \
         cumulative regret {:.0} over {} slices",
        report.final_cost, report.best_seen_cost, report.cumulative_regret, report.slices
    );
}
