//! Quickstart: build a synthetic database, run SQL through the native
//! optimizer, then swap in a learned cardinality estimator and watch the
//! plan change.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use lqo::card::estimator::{label_workload, EstimatorCardSource, FitContext};
use lqo::card::registry::{build_estimator, EstimatorKind};
use lqo::engine::datagen::stats_like;
use lqo::engine::query::parse_query;
use lqo::engine::{Executor, Optimizer, TrueCardOracle};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn main() {
    // 1. A STATS-like database: 8 Stack-Exchange-style tables with skewed,
    //    correlated data.
    let catalog = Arc::new(stats_like(300, 42).unwrap());
    println!(
        "catalog: {} tables, {} rows total\n",
        catalog.tables().len(),
        catalog.total_rows()
    );

    // 2. Parse and validate a SQL query.
    let sql = "SELECT COUNT(*) FROM users u, posts p, comments c \
               WHERE u.id = p.owner_user_id AND p.id = c.post_id \
               AND u.reputation > 500 AND p.score >= 4";
    let query = parse_query(sql).unwrap();
    query.validate(&catalog).unwrap();
    println!("query: {query}\n");

    // 3. Plan with the native cost-based optimizer (histogram estimates).
    let ctx = FitContext::new(catalog.clone());
    let optimizer = Optimizer::with_defaults(&catalog);
    let trad = lqo::engine::TraditionalCardSource::new(catalog.clone(), ctx.stats.clone());
    let native = optimizer.optimize_default(&query, &trad).unwrap();
    println!(
        "native plan (est. cost {:.0}):\n{}",
        native.cost,
        native.plan.explain(&query)
    );

    // 4. Execute it: the engine reports the count, deterministic work
    //    units, and every intermediate result size.
    let executor = Executor::with_defaults(&catalog);
    let result = executor.execute(&query, &native.plan).unwrap();
    println!(
        "result: count = {}, work = {:.0} units, wall = {:?}\n",
        result.count, result.work, result.wall
    );

    // 5. Train a learned estimator (DeepDB-style SPNs) and re-plan with
    //    its cardinalities injected into the same optimizer.
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let train_queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 20,
            ..Default::default()
        },
    );
    let workload = label_workload(&oracle, &train_queries, 3).unwrap();
    let deepdb = build_estimator(EstimatorKind::DeepDb, &ctx, &oracle, &workload);
    println!(
        "fitted {} ({} parameters)",
        deepdb.name(),
        deepdb.model_size()
    );

    let learned_src = EstimatorCardSource::new(Arc::from(deepdb));
    let learned = optimizer.optimize_default(&query, &learned_src).unwrap();
    println!(
        "\nlearned-cardinality plan:\n{}",
        learned.plan.explain(&query)
    );

    let learned_result = executor.execute(&query, &learned.plan).unwrap();
    println!(
        "same answer ({} rows); work {:.0} vs native {:.0} units",
        learned_result.count, learned_result.work, result.work
    );

    // 6. Ground truth, for reference.
    let truth = oracle.true_card_full(&query).unwrap();
    assert_eq!(truth, result.count);
    assert_eq!(truth, learned_result.count);
    println!("\ntrue cardinality (oracle): {truth}");
}
