//! Integration of the PilotScope middleware with estimators and learned
//! optimizers: the full §3 demonstration as assertions.

use std::sync::Arc;

use lqo::card::estimator::label_workload;
use lqo::card::estimator::FitContext;
use lqo::card::registry::{build_estimator, EstimatorKind};
use lqo::engine::datagen::stats_like;
use lqo::engine::TrueCardOracle;
use lqo::framework::framework::OptContext;
use lqo::pilot::{
    BaoDriver, CardDriver, DbInteractor, EngineInteractor, LeroDriver, PilotConsole, PullReply,
    PullRequest, PushAction,
};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn setup() -> (Arc<lqo::engine::Catalog>, OptContext, Vec<String>) {
    let catalog = Arc::new(stats_like(90, 12).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let sqls = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 6,
            seed: 8,
            ..Default::default()
        },
    )
    .iter()
    .map(|q| q.to_string())
    .collect();
    (catalog, ctx, sqls)
}

#[test]
fn every_driver_preserves_query_answers() {
    let (catalog, ctx, sqls) = setup();
    let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
    let mut console = PilotConsole::new(interactor);

    // Reference answers: no driver.
    let reference: Vec<u64> = sqls
        .iter()
        .map(|sql| console.execute_sql(sql).unwrap().count)
        .collect();

    // Register all three drivers.
    let fit = FitContext {
        catalog: ctx.catalog.clone(),
        stats: ctx.stats.clone(),
    };
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 5,
            seed: 4,
            ..Default::default()
        },
    );
    let train = label_workload(&oracle, &queries, 2).unwrap();
    let est = build_estimator(EstimatorKind::BayesNet, &fit, &oracle, &train);
    console
        .register_driver(Box::new(CardDriver::new(Arc::from(est))))
        .unwrap();
    console
        .register_driver(Box::new(BaoDriver::new(ctx.clone())))
        .unwrap();
    console
        .register_driver(Box::new(LeroDriver::new(ctx.clone())))
        .unwrap();

    for driver in ["learned-cardinality", "bao", "lero"] {
        console.start_driver(Some(driver)).unwrap();
        for (sql, &expected) in sqls.iter().zip(&reference) {
            let out = console.execute_sql(sql).unwrap();
            assert_eq!(out.count, expected, "driver {driver} changed the answer");
            assert_eq!(out.driver.as_deref(), Some(driver));
        }
        console.tick();
    }
}

#[test]
fn interactor_steering_is_session_scoped_and_reversible() {
    let (catalog, _, _) = setup();
    let interactor = EngineInteractor::new(catalog);
    let q = lqo::engine::query::parse_query(
        "SELECT COUNT(*) FROM users u, posts p, comments c \
         WHERE u.id = p.owner_user_id AND p.id = c.post_id AND u.views < 400",
    )
    .unwrap();
    let s1 = interactor.open_session();
    let s2 = interactor.open_session();

    // Steer s1 towards nested loops only.
    interactor
        .push(
            s1,
            PushAction::SetHints(lqo::engine::HintSet {
                allow_hash: false,
                allow_merge: false,
                ..Default::default()
            }),
        )
        .unwrap();
    let PullReply::Plan { plan: p1, .. } =
        interactor.pull(s1, PullRequest::Plan(q.clone())).unwrap()
    else {
        panic!()
    };
    let PullReply::Plan { plan: p2, .. } =
        interactor.pull(s2, PullRequest::Plan(q.clone())).unwrap()
    else {
        panic!()
    };
    assert_ne!(p1.fingerprint(), p2.fingerprint());

    // Both plans execute to the same answer.
    let exec = |s, plan| {
        let PullReply::Execution { count, .. } = interactor
            .pull(s, PullRequest::ExecutePlan(q.clone(), plan))
            .unwrap()
        else {
            panic!()
        };
        count
    };
    assert_eq!(exec(s1, p1), exec(s2, p2));
}

#[test]
fn card_driver_injection_count_grows() {
    let (catalog, ctx, sqls) = setup();
    let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
    let mut console = PilotConsole::new(interactor);
    let fit = FitContext {
        catalog: ctx.catalog.clone(),
        stats: ctx.stats.clone(),
    };
    let est = build_estimator(
        EstimatorKind::Sampling,
        &fit,
        &Arc::new(TrueCardOracle::new(catalog)),
        &[],
    );
    console
        .register_driver(Box::new(CardDriver::new(Arc::from(est))))
        .unwrap();
    console.start_driver(Some("learned-cardinality")).unwrap();
    for sql in &sqls {
        console.execute_sql(sql).unwrap();
    }
    assert_eq!(console.executed(), sqls.len());
}
