//! Integration tests of the end-to-end learned optimizers and the Eraser
//! guard, spanning `learned-qo`, `lqo-join`, `lqo-cost` and the engine.

use std::sync::Arc;

use lqo::engine::datagen::imdb_like;
use lqo::engine::Executor;
use lqo::framework::framework::{LearnedOptimizer, OptContext};
use lqo::framework::harness::TrainingLoop;
use lqo::framework::{balsa, bao, hyper_qo, leon, lero, neo, GuardedOptimizer, NativeBaseline};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn setup() -> (OptContext, Vec<lqo::engine::SpjQuery>) {
    let catalog = Arc::new(imdb_like(100, 3).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 8,
            min_tables: 2,
            max_tables: 4,
            seed: 55,
            ..Default::default()
        },
    );
    (ctx, queries)
}

#[test]
fn every_system_survives_a_full_training_loop() {
    let (ctx, queries) = setup();
    let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
    let native = training.native_total();
    let mut systems: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(NativeBaseline::new(ctx.clone())),
        Box::new(bao(ctx.clone())),
        Box::new(lero(ctx.clone())),
        Box::new(hyper_qo(ctx.clone())),
        Box::new(leon(ctx.clone())),
        Box::new(neo(ctx.clone())),
        Box::new(balsa(ctx.clone())),
    ];
    for sys in &mut systems {
        let stats = training.run(sys.as_mut(), 3);
        let last = stats.last().unwrap();
        // The timeout budget bounds any system's total work.
        assert!(
            last.total_work <= native * training.timeout_factor,
            "{}: {} vs bound {}",
            sys.name(),
            last.total_work,
            native * training.timeout_factor
        );
        assert_eq!(last.per_query.len(), training.queries().len());
    }
}

#[test]
fn trained_systems_produce_executable_plans_on_unseen_queries() {
    let (ctx, queries) = setup();
    let (train_q, test_q) = queries.split_at(5);
    let training = TrainingLoop::new(ctx.clone(), train_q.to_vec()).unwrap();
    let executor = Executor::with_defaults(&ctx.catalog);
    let mut systems: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(bao(ctx.clone())),
        Box::new(lero(ctx.clone())),
        Box::new(neo(ctx.clone())),
    ];
    for sys in &mut systems {
        training.run(sys.as_mut(), 2);
        for q in test_q {
            let plan = sys.plan(q).unwrap();
            assert_eq!(plan.tables(), q.all_tables(), "{}", sys.name());
            executor.execute(q, &plan).unwrap();
        }
    }
}

#[test]
fn eraser_guard_composes_with_training() {
    let (ctx, queries) = setup();
    let training = TrainingLoop::new(ctx.clone(), queries.clone()).unwrap();
    let mut guarded = GuardedOptimizer::new(bao(ctx.clone()));
    training.run(&mut guarded, 2);
    assert!(guarded.is_guarding());

    // On a shifted workload the guard still produces valid plans.
    let shifted = generate_workload(
        &ctx.catalog,
        &WorkloadConfig {
            num_queries: 5,
            min_tables: 3,
            max_tables: 5,
            seed: 999,
            ..Default::default()
        },
    );
    let executor = Executor::with_defaults(&ctx.catalog);
    for q in &shifted {
        let plan = guarded.plan(q).unwrap();
        executor.execute(q, &plan).unwrap();
    }
}

#[test]
fn learned_optimizer_beats_a_sabotaged_native() {
    // Give the native optimizer deliberately terrible cardinalities
    // (everything = 1); Bao's hint arms + learning must recover.
    use lqo::engine::optimizer::CardSource;
    use lqo::engine::{SpjQuery, TableSet};
    struct AllOnes;
    impl CardSource for AllOnes {
        fn cardinality(&self, _q: &SpjQuery, _s: TableSet) -> f64 {
            1.0
        }
    }
    let (mut ctx, queries) = setup();
    ctx.card = Arc::new(AllOnes);
    let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
    let mut opt = bao(ctx);
    let stats = training.run(&mut opt, 4);
    let first = &stats[0];
    let last = stats.last().unwrap();
    // Learning from execution feedback must not make things worse.
    assert!(
        last.total_work <= first.total_work * 1.5,
        "first {} last {}",
        first.total_work,
        last.total_work
    );
}
