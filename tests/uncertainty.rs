//! Uncertainty quantification for learned cardinality estimators — the
//! prediction-interval evaluation of Thirumuruganathan et al. (ICDE 2022),
//! \[55\] in the paper: do the uncertainty estimates of Fauce-style deep
//! ensembles and NNGP-style Bayesian regression actually *cover* the true
//! cardinalities, and are they larger off-distribution?

use std::sync::Arc;

use lqo::card::estimator::{label_workload, FitContext, LabeledSubquery};
use lqo::card::query_dnn::{FauceEstimator, NngpEstimator};
use lqo::engine::datagen::stats_like;
use lqo::engine::TrueCardOracle;
use lqo::ml::scaler::log_label;
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn setup() -> (FitContext, Vec<LabeledSubquery>, Vec<LabeledSubquery>) {
    let catalog = Arc::new(stats_like(120, 91).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let train_q = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 30,
            seed: 1,
            ..Default::default()
        },
    );
    let eval_q = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 15,
            seed: 2,
            ..Default::default()
        },
    );
    let train = label_workload(&oracle, &train_q, 3).unwrap();
    let eval = label_workload(&oracle, &eval_q, 3).unwrap();
    (ctx, train, eval)
}

/// Fraction of held-out sub-queries whose true (log) cardinality falls
/// inside `estimate ± width_factor * uncertainty` (log space).
fn coverage(
    points: &[(f64, f64, f64)], // (estimate, uncertainty, truth)
    width_factor: f64,
) -> f64 {
    let hits = points
        .iter()
        .filter(|&&(est, unc, truth)| {
            let center = log_label::encode(est);
            let t = log_label::encode(truth);
            // Uncertainties are produced in scaled log space (labels are
            // log/25); rescale to raw log space.
            let half = width_factor * unc * 25.0;
            (t - center).abs() <= half + 1e-9
        })
        .count();
    hits as f64 / points.len().max(1) as f64
}

#[test]
fn ensemble_intervals_cover_most_truths() {
    let (ctx, train, eval) = setup();
    let fauce = FauceEstimator::fit(&ctx, &train);
    let points: Vec<(f64, f64, f64)> = eval
        .iter()
        .map(|l| {
            let (est, unc) = fauce.estimate_with_uncertainty(&l.query, l.set);
            (est, unc, l.card)
        })
        .collect();
    // A 3-sigma-style interval should cover a clear majority; the exact
    // nominal level is what [55] studies — here we assert the qualitative
    // property (wide intervals cover much more than point estimates).
    let wide = coverage(&points, 3.0);
    let point = coverage(&points, 0.0);
    assert!(
        wide >= 0.5,
        "3-sigma ensemble coverage only {wide:.2} over {} points",
        points.len()
    );
    assert!(wide >= point, "widening intervals must not lose coverage");
}

#[test]
fn nngp_intervals_cover_most_truths() {
    let (ctx, train, eval) = setup();
    let nngp = NngpEstimator::fit(&ctx, &train);
    let points: Vec<(f64, f64, f64)> = eval
        .iter()
        .map(|l| {
            let (est, unc) = nngp.estimate_with_uncertainty(&l.query, l.set);
            (est, unc, l.card)
        })
        .collect();
    let wide = coverage(&points, 3.0);
    assert!(
        wide >= 0.5,
        "3-sigma NNGP coverage only {wide:.2} over {} points",
        points.len()
    );
}

#[test]
fn uncertainty_grows_off_distribution() {
    let (ctx, train, _) = setup();
    // Train only on 2-table sub-queries; 3-table joins are then
    // off-distribution and should carry larger ensemble disagreement.
    let small: Vec<LabeledSubquery> = train.iter().filter(|l| l.set.len() <= 2).cloned().collect();
    let big: Vec<LabeledSubquery> = train.iter().filter(|l| l.set.len() >= 3).cloned().collect();
    if big.is_empty() {
        return; // workload happened to have no 3-way joins; nothing to test
    }
    let fauce = FauceEstimator::fit(&ctx, &small);
    let mean_unc = |ls: &[LabeledSubquery]| {
        ls.iter()
            .map(|l| fauce.estimate_with_uncertainty(&l.query, l.set).1)
            .sum::<f64>()
            / ls.len() as f64
    };
    let in_dist = mean_unc(&small);
    let off_dist = mean_unc(&big);
    assert!(
        off_dist >= in_dist * 0.8,
        "off-distribution uncertainty {off_dist:.4} collapsed below \
         in-distribution {in_dist:.4}"
    );
}
