//! Cross-crate integration: data generation → workload → estimator fit →
//! cardinality injection → optimization → execution, end to end.

use std::sync::Arc;

use lqo::card::estimator::{label_workload, EstimatorCardSource, FitContext};
use lqo::card::registry::{build_estimator, EstimatorKind};
use lqo::engine::datagen::{imdb_like, stats_like, tpch_like};
use lqo::engine::optimizer::CardSource;
use lqo::engine::{Executor, Optimizer, TrueCardOracle, TrueCardSource};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn workload(
    catalog: &Arc<lqo::engine::Catalog>,
    n: usize,
    seed: u64,
) -> Vec<lqo::engine::SpjQuery> {
    generate_workload(
        catalog,
        &WorkloadConfig {
            num_queries: n,
            min_tables: 2,
            max_tables: 4,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn any_estimator_plan_gives_correct_answers() {
    let catalog = Arc::new(stats_like(100, 31).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let queries = workload(&catalog, 8, 77);
    let train = label_workload(&oracle, &queries[..4], 2).unwrap();

    let optimizer = Optimizer::with_defaults(&catalog);
    let executor = Executor::with_defaults(&catalog);
    for kind in [
        EstimatorKind::Histogram,
        EstimatorKind::GbdtQd,
        EstimatorKind::BayesNet,
        EstimatorKind::FactorJoin,
    ] {
        let est = build_estimator(kind, &ctx, &oracle, &train);
        let src = EstimatorCardSource::new(Arc::from(est));
        for q in &queries {
            let plan = optimizer.optimize_default(q, &src).unwrap().plan;
            let count = executor.execute(q, &plan).unwrap().count;
            let truth = oracle.true_card_full(q).unwrap();
            // Plans differ; answers never do.
            assert_eq!(count, truth, "kind {kind:?} on {q}");
        }
    }
}

#[test]
fn all_three_schemas_support_the_full_pipeline() {
    for (name, catalog) in [
        ("imdb", imdb_like(80, 1).unwrap()),
        ("stats", stats_like(80, 1).unwrap()),
        ("tpch", tpch_like(80, 1).unwrap()),
    ] {
        let catalog = Arc::new(catalog);
        let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
        let queries = workload(&catalog, 5, 13);
        assert!(!queries.is_empty(), "{name}: no queries generated");
        let optimizer = Optimizer::with_defaults(&catalog);
        let executor = Executor::with_defaults(&catalog);
        let truth = TrueCardSource::new(oracle.clone());
        for q in &queries {
            let plan = optimizer.optimize_default(q, &truth).unwrap().plan;
            let count = executor.execute(q, &plan).unwrap().count;
            assert_eq!(count, oracle.true_card_full(q).unwrap(), "{name}: {q}");
        }
    }
}

#[test]
fn true_card_plans_never_lose_badly_to_traditional() {
    let catalog = Arc::new(imdb_like(120, 9).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let queries = workload(&catalog, 8, 21);
    let optimizer = Optimizer::with_defaults(&catalog);
    let executor = Executor::with_defaults(&catalog);
    let truth = TrueCardSource::new(oracle);
    let trad = lqo::engine::TraditionalCardSource::new(catalog.clone(), ctx.stats.clone());

    let mut true_total = 0.0;
    let mut trad_total = 0.0;
    for q in &queries {
        let tp = optimizer.optimize_default(q, &truth).unwrap().plan;
        true_total += executor.execute(q, &tp).unwrap().work;
        let np = optimizer
            .optimize_default(q, &trad as &dyn CardSource)
            .unwrap()
            .plan;
        trad_total += executor.execute(q, &np).unwrap().work;
    }
    // The paper's benchmark finding: true cardinalities give plans at
    // least as good as histogram estimates (modulo cost-model bias).
    assert!(
        true_total <= trad_total * 1.3,
        "true {true_total} vs traditional {trad_total}"
    );
}

#[test]
fn estimator_feedback_improves_lpce() {
    let catalog = Arc::new(stats_like(80, 47).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let queries = workload(&catalog, 6, 3);
    let train = label_workload(&oracle, &queries[..3], 2).unwrap();
    let est = build_estimator(EstimatorKind::Lpce, &ctx, &oracle, &train);

    let q = &queries[5];
    let truth = oracle.true_card_full(q).unwrap() as f64;
    let before = lqo::ml::metrics::q_error(est.estimate(q, q.all_tables()), truth);
    est.observe(q, q.all_tables(), truth);
    let after = lqo::ml::metrics::q_error(est.estimate(q, q.all_tables()), truth);
    assert!(after <= before);
    assert!((after - 1.0).abs() < 1e-9);
}
