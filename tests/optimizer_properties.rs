//! Property-based tests over randomly generated databases and workloads:
//! invariants that must hold for *every* query and plan.

use std::sync::Arc;

use proptest::prelude::*;

use lqo::engine::datagen::stats_like;
use lqo::engine::exec::workunits::CostParams;
use lqo::engine::optimizer::{dp_optimize, greedy_optimize};
use lqo::engine::query::{parse_query, JoinGraph};
use lqo::engine::stats::table_stats::CatalogStats;
use lqo::engine::{Executor, HintSet, JoinAlgo, PhysNode, TraditionalCardSource, TrueCardOracle};
use lqo_bench_suite::{generate_workload, WorkloadConfig};

fn setup(
    seed: u64,
) -> (
    Arc<lqo::engine::Catalog>,
    Arc<TrueCardOracle>,
    TraditionalCardSource,
    Vec<lqo::engine::SpjQuery>,
) {
    let catalog = Arc::new(stats_like(60, seed % 5).unwrap());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card = TraditionalCardSource::new(catalog.clone(), stats);
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 3,
            min_tables: 2,
            max_tables: 4,
            seed,
            ..Default::default()
        },
    );
    (catalog, oracle, card, queries)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, .. ProptestConfig::default()
    })]

    /// Every valid plan for a query — any join order, any operators —
    /// returns the same count, and it equals the oracle's.
    #[test]
    fn plan_invariance_of_results(seed in 0u64..500) {
        let (catalog, oracle, card, queries) = setup(seed);
        let executor = Executor::with_defaults(&catalog);
        for q in &queries {
            let truth = oracle.true_card_full(q).unwrap();
            let graph = JoinGraph::new(q);
            for hints in [
                HintSet::default(),
                HintSet { left_deep_only: true, ..HintSet::default() },
                HintSet { allow_hash: false, ..HintSet::default() },
            ] {
                let Ok(choice) = dp_optimize(q, &graph, &catalog, &card, &CostParams::default(), &hints) else { continue };
                let count = executor.execute(q, &choice.plan).unwrap().count;
                prop_assert_eq!(count, truth);
            }
        }
    }

    /// DP cost never exceeds greedy cost under identical cardinalities.
    #[test]
    fn dp_dominates_greedy(seed in 0u64..500) {
        let (catalog, _oracle, card, queries) = setup(seed);
        for q in &queries {
            let graph = JoinGraph::new(q);
            let dp = dp_optimize(q, &graph, &catalog, &card, &CostParams::default(), &HintSet::default());
            let gr = greedy_optimize(q, &graph, &catalog, &card, &CostParams::default(), &HintSet::default());
            if let (Ok(dp), Ok(gr)) = (dp, gr) {
                prop_assert!(dp.cost <= gr.cost + 1e-6,
                    "dp {} > greedy {} on {}", dp.cost, gr.cost, q);
            }
        }
    }

    /// Display → parse round-trips every generated query.
    #[test]
    fn sql_roundtrip(seed in 0u64..500) {
        let (_, _, _, queries) = setup(seed);
        for q in &queries {
            let reparsed = parse_query(&q.to_string()).unwrap();
            prop_assert_eq!(&reparsed, q);
        }
    }

    /// Oracle subset cardinalities are monotone under predicate removal:
    /// dropping all predicates never shrinks the count.
    #[test]
    fn unfiltered_card_is_upper_bound(seed in 0u64..500) {
        let (_, oracle, _, queries) = setup(seed);
        for q in &queries {
            let filtered = oracle.true_card_full(q).unwrap();
            let mut bare = q.clone();
            bare.predicates.clear();
            let unfiltered = oracle.true_card_full(&bare).unwrap();
            prop_assert!(unfiltered >= filtered);
        }
    }

    /// Work accounting is additive and positive: executing a join plan
    /// costs at least as much as scanning its inputs.
    #[test]
    fn work_units_are_sane(seed in 0u64..500) {
        let (catalog, _, card, queries) = setup(seed);
        let executor = Executor::with_defaults(&catalog);
        for q in &queries {
            let graph = JoinGraph::new(q);
            let Ok(choice) = dp_optimize(q, &graph, &catalog, &card, &CostParams::default(), &HintSet::default()) else { continue };
            let r = executor.execute(q, &choice.plan).unwrap();
            prop_assert!(r.work > 0.0);
            // Scan-only lower bound: every base table is read once.
            let scan_work: f64 = q.tables.iter()
                .map(|t| catalog.table(&t.table).unwrap().nrows() as f64)
                .sum();
            prop_assert!(r.work >= scan_work);
            // Intermediates: one entry per plan node.
            let mut nodes = 0;
            choice.plan.visit_bottom_up(&mut |_| nodes += 1);
            prop_assert_eq!(r.intermediates.len(), nodes);
        }
    }
}

#[test]
fn join_algorithms_agree_on_every_generated_query() {
    let (catalog, oracle, _, queries) = setup(7);
    let executor = Executor::with_defaults(&catalog);
    for q in &queries {
        if q.num_tables() != 2 || q.joins.is_empty() {
            continue;
        }
        let truth = oracle.true_card_full(q).unwrap();
        for algo in JoinAlgo::ALL {
            let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            assert_eq!(executor.execute(q, &plan).unwrap().count, truth);
        }
    }
}
