//! Umbrella crate re-exporting the learned-qo framework for workspace examples/tests.
pub use learned_qo as framework;
pub use lqo_bench_suite as bench_suite;
pub use lqo_card as card;
pub use lqo_cost as cost;
pub use lqo_engine as engine;
pub use lqo_join as joinorder;
pub use lqo_ml as ml;
pub use lqo_pilot as pilot;
