//! Derive macros for the vendored `serde` stand-in.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; the type definition is parsed directly from the
//! `proc_macro::TokenStream` and the impls are emitted as formatted source
//! strings. Supports the shapes this workspace derives on: plain structs
//! (named, tuple/newtype, unit) and enums (unit, tuple, and struct
//! variants) without generic parameters, encoded the way upstream
//! serde_json encodes them (externally-tagged enums, transparent
//! newtypes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_type(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type `{name}`");
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        k => panic!("cannot derive for `{k}`"),
    };
    (name, shape)
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next(); // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, tracking angle-bracket depth so
/// commas inside `HashMap<String, f64>` do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("expected field name, found {tt:?}");
        };
        fields.push(field.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type_until_comma(&mut iter);
    }
    fields
}

fn skip_type_until_comma(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut iter);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, found {tt:?}");
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = VariantShape::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = VariantShape::Named(parse_named_fields(g.stream()));
                iter.next();
                s
            }
            _ => VariantShape::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        skip_type_until_comma(&mut iter);
        variants.push((name.to_string(), shape));
    }
    variants
}

// ---------------------------------------------------------------- codegen

const V: &str = "::serde::json::Value";

fn ser_named(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_json_value(&{access}{f}))"))
        .collect();
    format!("{V}::Object(vec![{}])", entries.join(", "))
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => ser_named(fields, "self."),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("{V}::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => format!("{V}::Null"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, vshape)| match vshape {
                    VariantShape::Unit => format!(
                        "{name}::{vname} => {V}::String({vname:?}.to_string()),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("{V}::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => {V}::Object(vec![({vname:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner = ser_named(fields, "*");
                        format!(
                            "{name}::{vname} {{ {binds} }} => {V}::Object(vec![({vname:?}.to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> {V} {{ {body} }}\n\
         }}"
    )
}

fn de_named(ty_path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json_value({src}.iter().find(|(k, _)| k == {f:?}).map(|(_, v)| v)?)?"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let build = de_named(name, fields, "__fields");
            format!(
                "if let {V}::Object(__fields) = __v {{\n\
                     return ::core::option::Option::Some({build});\n\
                 }}\n\
                 ::core::option::Option::None"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::core::option::Option::Some({name}(::serde::Deserialize::from_json_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__xs[{i}])?"))
                .collect();
            format!(
                "if let {V}::Array(__xs) = __v {{\n\
                     if __xs.len() == {n} {{\n\
                         return ::core::option::Option::Some({name}({}));\n\
                     }}\n\
                 }}\n\
                 ::core::option::Option::None",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::core::option::Option::Some({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => unit_arms.push(format!(
                        "{vname:?} => return ::core::option::Option::Some({name}::{vname}),"
                    )),
                    VariantShape::Tuple(1) => tagged_arms.push(format!(
                        "{vname:?} => return ::core::option::Option::Some({name}::{vname}(::serde::Deserialize::from_json_value(__inner)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&__xs[{i}])?")
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => {{\n\
                                 if let {V}::Array(__xs) = __inner {{\n\
                                     if __xs.len() == {n} {{\n\
                                         return ::core::option::Option::Some({name}::{vname}({}));\n\
                                     }}\n\
                                 }}\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let build = de_named(&format!("{name}::{vname}"), fields, "__fields");
                        tagged_arms.push(format!(
                            "{vname:?} => {{\n\
                                 if let {V}::Object(__fields) = __inner {{\n\
                                     return ::core::option::Option::Some({build});\n\
                                 }}\n\
                             }}"
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let {V}::String(__s) = __v {{\n\
                         match __s.as_str() {{ {} _ => {{}} }}\n\
                     }}",
                    unit_arms.join("\n")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let {V}::Object(__fields) = __v {{\n\
                         if __fields.len() == 1 {{\n\
                             let (__tag, __inner) = &__fields[0];\n\
                             match __tag.as_str() {{ {} _ => {{}} }}\n\
                         }}\n\
                     }}",
                    tagged_arms.join("\n")
                )
            };
            format!("{unit_match}\n{tagged_match}\n::core::option::Option::None")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables, clippy::question_mark)]\n\
             fn from_json_value(__v: &{V}) -> ::core::option::Option<Self> {{ {body} }}\n\
         }}"
    )
}
