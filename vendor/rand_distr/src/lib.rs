//! Offline vendored stand-in for the `rand_distr` crate: the
//! [`Distribution`] trait plus the two distributions the workspace's data
//! generators use — [`Normal`] (Box–Muller) and [`Zipf`] (rejection
//! sampling, matching `rand_distr::Zipf`'s 1-based support).

use rand::{RngCore, Standard};

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Gaussian distribution with given mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(ParamError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one fresh pair per sample keeps the type stateless.
        let u1: f64 = <f64 as Standard>::draw(rng).max(f64::MIN_POSITIVE);
        let u2: f64 = <f64 as Standard>::draw(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * r * theta.cos()
    }
}

/// Zipf distribution over `{1, 2, ..., n}` with exponent `s`, matching the
/// support convention of `rand_distr::Zipf`.
///
/// Samples by inverse CDF over a precomputed cumulative mass table —
/// O(n) once at construction, O(log n) per sample, exactly distributed.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative masses; `cdf[k-1]` = P(X <= k), `cdf[n-1]` = 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Construct over `{1..=n}` with exponent `s >= 0`.
    pub fn new(n: u64, s: f64) -> Result<Zipf, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = <f64 as Standard>::draw(rng);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn zipf_support_and_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Zipf::new(100, 1.1).unwrap();
        let mut counts = [0usize; 101];
        for _ in 0..20_000 {
            let k = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&k), "k = {k}");
            counts[k as usize] += 1;
        }
        // Head heavier than tail, markedly.
        assert!(
            counts[1] > 10 * counts[50].max(1),
            "counts1={} counts50={}",
            counts[1],
            counts[50]
        );
    }

    #[test]
    fn zipf_zero_skew_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Zipf::new(10, 0.0).unwrap();
        let mut counts = [0usize; 11];
        for _ in 0..20_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts[1..] {
            assert!((1_400..2_600).contains(&c), "counts = {counts:?}");
        }
    }
}
