//! Offline vendored stand-in for `parking_lot`: [`Mutex`] and [`RwLock`]
//! with parking_lot's non-poisoning API (`lock()` returns the guard
//! directly), implemented over `std::sync`. A poisoned std lock simply
//! yields its inner guard — parking_lot has no poisoning, so neither does
//! this facade.

use std::sync;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
