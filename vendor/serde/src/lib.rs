//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization substrate with the same *spelling* as serde at
//! every call site it uses: `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}`, and
//! `serde_json::to_string_pretty(&value)`.
//!
//! Instead of serde's visitor architecture, [`Serialize`] maps a value
//! directly to an owned JSON tree ([`json::Value`]) and [`Deserialize`]
//! maps back. The derive macros (re-exported from `serde_derive`) generate
//! both impls for plain structs and enums, using serde's externally-tagged
//! enum encoding so the output looks like what upstream serde_json would
//! produce.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::Value;

/// A value that can be converted to a JSON tree.
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// A value that can be reconstructed from a JSON tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value; `None` on shape mismatch.
    fn from_json_value(v: &Value) -> Option<Self>;
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Option<$t> {
                match v {
                    Value::Int(i) => Some(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 => Some(*f as $t),
                    _ => None,
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Option<$t> {
                match v {
                    Value::Float(f) => Some(*f as $t),
                    Value::Int(i) => Some(*i as $t),
                    _ => None,
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Option<bool> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Option<String> {
        match v {
            Value::String(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Option<Vec<T>> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_json_value).collect(),
            _ => None,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Option<Option<T>> {
        match v {
            Value::Null => Some(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Option<(A, B)> {
        match v {
            Value::Array(xs) if xs.len() == 2 => {
                Some((A::from_json_value(&xs[0])?, B::from_json_value(&xs[1])?))
            }
            _ => None,
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Option<Value> {
        Some(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        // Matches serde's default {secs, nanos} encoding for Duration.
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_json_value(v: &Value) -> Option<std::time::Duration> {
        match v {
            Value::Object(fields) => {
                let get = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .and_then(|(_, v)| u64::from_json_value(v))
                };
                Some(std::time::Duration::new(get("secs")?, get("nanos")? as u32))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42i64.to_json_value(), Value::Int(42));
        assert_eq!(i64::from_json_value(&Value::Int(42)), Some(42));
        assert_eq!(Option::<i64>::from_json_value(&Value::Null), Some(None));
        assert_eq!(
            Vec::<u32>::from_json_value(&vec![1u32, 2, 3].to_json_value()),
            Some(vec![1, 2, 3])
        );
    }

    #[test]
    fn duration_round_trip() {
        let d = std::time::Duration::new(3, 500);
        assert_eq!(
            std::time::Duration::from_json_value(&d.to_json_value()),
            Some(d)
        );
    }
}
