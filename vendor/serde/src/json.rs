//! An owned JSON tree with compact and pretty writers — the interchange
//! type behind the vendored `Serialize`/`Deserialize` traits and the
//! `serde_json` facade.

use std::fmt;

/// An owned JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, like serde_json's
/// `preserve_order` feature) so derived struct output lists fields in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (kept exact, not as f64).
    Int(i64),
    /// Floating number; non-finite values print as `null` like serde_json.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value re-parses as float.
                    let s = f.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(xs) => {
                if xs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    x.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y\n".into())),
        ]);
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(Value::Float(2.0).to_compact(), "2.0");
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(2.5).to_compact(), "2.5");
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
