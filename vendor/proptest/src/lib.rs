//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] and [`prop_compose!`] macros,
//! `prop_assert!`/`prop_assert_eq!`, [`ProptestConfig`] with a `cases`
//! count, range strategies over integers, tuple strategies,
//! `prop::collection::vec`, and `prop::bool::ANY`.
//!
//! Differences from upstream: generation is deterministic per test
//! function (seeded from the case index), and failing cases are *not*
//! shrunk — the assertion failure reports the generated values' effects
//! directly. That trades debuggability for zero dependencies, which is
//! what an offline build needs.

pub mod strategy;
pub mod test_runner;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented,
    /// so this is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below((self.size.hi - self.size.lo + 1) as u64) as usize + self.size.lo;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Seed from the test name so distinct tests explore distinct
            // streams, deterministically across runs.
            let __seed = $crate::test_runner::fnv1a(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::from_seed(__seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let ($($pat,)*) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*);
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Define a named strategy function composed from other strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::test_runner::TestRng| {
                let ($($pat,)*) =
                    ($($crate::strategy::Strategy::generate(&($strat), __rng),)*);
                $body
            })
        }
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};

    /// The `prop` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_vec()(v in prop::collection::vec(0..10i64, 1..=5)) -> Vec<i64> {
            v
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 0i64..100, y in 5usize..=9, b in prop::bool::ANY) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((5..=9).contains(&y));
            let _ = b;
        }

        #[test]
        fn vecs_sized(v in small_vec(), t in (0usize..3, 0usize..4)) {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
            prop_assert!(t.0 < 3 && t.1 < 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0..1000i64, 3..=3);
        let a = s.generate(&mut TestRng::from_seed(1));
        let b = s.generate(&mut TestRng::from_seed(1));
        let c = s.generate(&mut TestRng::from_seed(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
