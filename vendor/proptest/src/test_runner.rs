//! The deterministic generator behind the vendored proptest: a SplitMix64
//! stream plus helpers for bias-free bounded sampling.

/// Deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo < n && lo < n.wrapping_neg() % n {
                continue;
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::from_seed(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fnv_distinguishes() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }
}
