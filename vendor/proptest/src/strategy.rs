//! The [`Strategy`] trait and the built-in strategies: integer ranges,
//! tuples, and closure-backed composition.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A constant-value strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Closure-backed strategy — what `prop_compose!` expands to.
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
    /// Wrap a generation closure.
    pub fn new(f: F) -> FnStrategy<F> {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}
