//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen_range`, `gen`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Everything is deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their full domain via `gen()`.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform sample can be drawn from (`rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can be drawn over. The single blanket
/// `SampleRange` impl below goes through this trait so that type
/// inference can unify `Range<{integer}>` with the expected output type
/// (mirroring upstream rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Rejection-free (modulo-bias-free) sampling of `[0, n)` via Lemire's method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's widening-multiply method with rejection of the biased region.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo < n && lo < n.wrapping_neg() % n {
            continue;
        }
        return (m >> 64) as u64;
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain 64-bit range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <f64 as Standard>::draw(rng) as $t;
                lo + u * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <f64 as Standard>::draw(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample from the type's full `Standard` domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the workspace's `StdRng`.
    ///
    /// Not cryptographic (neither is the upstream `StdRng` contract the
    /// workspace relies on); chosen for speed and reproducibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Shuffle and choose over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..7i64);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn uniformity_coarse() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
