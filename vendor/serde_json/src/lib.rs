//! Offline vendored stand-in for `serde_json`: serialization entry points
//! over the vendored `serde`'s [`Value`] tree. Only the surface this
//! workspace uses (`to_string`, `to_string_pretty`, `to_value`) plus a
//! minimal parser for completeness.

pub use serde::json::Value;

use serde::Serialize;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Render compactly.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_compact())
}

/// Render with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_pretty())
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a": 1, "b": [true, null, -2.5], "s": "x\"\n"}"#;
        let v = from_str(src).unwrap();
        let back = from_str(&v.to_compact()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Object(vec![
            ("x".into(), Value::Float(1.5)),
            ("y".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
        ]);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }
}
