//! Offline vendored stand-in for `criterion`.
//!
//! Supports the subset of the criterion API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `bench_function` + `finish`), [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's adaptive sampling, each benchmark runs a fixed
//! small budget (1 warmup + `CRITERION_STUB_ITERS` timed iterations,
//! default 20) and prints the mean wall time per iteration. When the
//! binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) each closure runs exactly once, so
//! test runs stay fast.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    iters: u64,
    /// Total time spent in timed iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it once for warmup and `iters` times measured.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        let iters = if test_mode {
            1
        } else {
            std::env::var("CRITERION_STUB_ITERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(20)
        };
        Criterion { iters }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, self.iters, b.elapsed);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks; ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn report(id: &str, iters: u64, elapsed: Duration) {
    let per_iter = if iters > 0 {
        elapsed.as_secs_f64() / iters as f64
    } else {
        0.0
    };
    println!(
        "bench {id:<40} {:>12.3} us/iter ({iters} iters)",
        per_iter * 1e6
    );
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { iters: 3 };
        let mut calls = 0u32;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        // 1 warmup + 3 timed iterations.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion { iters: 1 };
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
