//! The unified learned-optimizer framework: exploration + risk selection.

use std::sync::Arc;

use lqo_engine::exec::workunits::CostParams;
use lqo_engine::optimizer::CardSource;
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{Catalog, Optimizer, PhysNode, Result, SpjQuery, TraditionalCardSource};
use lqo_obs::ObsContext;

/// Shared context for plan exploration: the database, its statistics, the
/// native cardinality source and cost constants.
#[derive(Clone)]
pub struct OptContext {
    /// The database.
    pub catalog: Arc<Catalog>,
    /// Collected statistics.
    pub stats: Arc<CatalogStats>,
    /// The native (traditional) estimator steered by explorers.
    pub card: Arc<dyn CardSource>,
    /// Cost constants.
    pub params: CostParams,
    /// Observability context; disabled by default. Risk models report
    /// guard-relevant events (e.g. native-cost failures) through it.
    pub obs: ObsContext,
}

impl OptContext {
    /// Build with freshly collected statistics and the traditional
    /// estimator.
    pub fn new(catalog: Arc<Catalog>) -> OptContext {
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let card: Arc<dyn CardSource> =
            Arc::new(TraditionalCardSource::new(catalog.clone(), stats.clone()));
        OptContext {
            catalog,
            stats,
            card,
            params: CostParams::default(),
            obs: ObsContext::disabled(),
        }
    }

    /// Attach an observability context (threaded into risk models and the
    /// optimizers built from this context).
    pub fn with_obs(mut self, obs: ObsContext) -> OptContext {
        self.obs = obs;
        self
    }

    /// Memoize this context's cardinality source through a shared plan &
    /// inference cache: estimates are looked up under canonical sub-query
    /// keys across queries, explorers, and clones of this context.
    /// Observationally transparent — cached estimates are bit-identical
    /// to fresh ones, so exploration and risk training are unchanged.
    pub fn with_cache(mut self, cache: Arc<lqo_cache::LqoCache>) -> OptContext {
        cache.attach_obs(&self.obs);
        self.card = Arc::new(lqo_cache::MemoCardSource::new(self.card, cache));
        self
    }

    /// A native optimizer over this context.
    pub fn optimizer(&self) -> Optimizer<'_> {
        Optimizer::new(&self.catalog, self.params.clone()).with_obs(self.obs.clone())
    }
}

/// A candidate plan with the label of the exploration knob that produced
/// it (hint-set name, scaling factor, …) — useful in reports.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The physical plan.
    pub plan: PhysNode,
    /// Which exploration knob produced it.
    pub label: String,
}

/// A plan exploration strategy: generates the candidate set `P_Q`.
pub trait PlanExplorer: Send + Sync {
    /// Strategy name.
    fn name(&self) -> &'static str;
    /// Generate (deduplicated) candidate plans for a query.
    fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>>;
}

/// One observed execution, the unit of feedback all risk models train on.
#[derive(Clone)]
pub struct ExecutionSample {
    /// The query.
    pub query: Arc<SpjQuery>,
    /// The executed plan.
    pub plan: PhysNode,
    /// Measured work units.
    pub work: f64,
}

/// A learned risk model: predicts plan goodness and selects from a
/// candidate set.
pub trait RiskModel: Send {
    /// Model name.
    fn name(&self) -> &'static str;

    /// Predicted badness (≈ latency) of one plan; lower is better.
    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64;

    /// Retrain/refine from accumulated execution feedback.
    fn train(&mut self, samples: &[ExecutionSample]);

    /// Pick the index of the plan to execute. The default takes the
    /// minimum score; pairwise comparators and variance filters override.
    /// NaN scores sort last (`total_cmp`), so a misbehaving model can
    /// never panic the selection or win it with garbage.
    fn select(&self, query: &SpjQuery, candidates: &[CandidatePlan]) -> usize {
        let scores: Vec<f64> = candidates
            .iter()
            .map(|c| self.score(query, &c.plan))
            .collect();
        (0..candidates.len())
            .min_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap_or(0)
    }
}

/// Common interface of every end-to-end learned optimizer.
pub trait LearnedOptimizer: Send {
    /// System name ("Bao", "Lero", …).
    fn name(&self) -> &str;

    /// Produce the plan to execute for a query.
    fn plan(&mut self, query: &SpjQuery) -> Result<PhysNode>;

    /// Feed back one observed execution.
    fn observe(&mut self, query: &SpjQuery, plan: &PhysNode, work: f64);

    /// Retrain internal models from everything observed so far.
    fn retrain(&mut self);
}

/// The survey's framework instantiated: one explorer + one risk model.
pub struct ExploreSelectOptimizer {
    name: String,
    ctx: OptContext,
    explorer: Box<dyn PlanExplorer>,
    risk: Box<dyn RiskModel>,
    history: Vec<ExecutionSample>,
    /// Executions accumulated since the last retrain.
    fresh: usize,
    /// Retrain after this many new observations (0 = only explicit).
    pub retrain_every: usize,
}

impl ExploreSelectOptimizer {
    /// Assemble a system.
    pub fn new(
        name: impl Into<String>,
        ctx: OptContext,
        explorer: Box<dyn PlanExplorer>,
        risk: Box<dyn RiskModel>,
    ) -> ExploreSelectOptimizer {
        ExploreSelectOptimizer {
            name: name.into(),
            ctx,
            explorer,
            risk,
            history: Vec::new(),
            fresh: 0,
            retrain_every: 16,
        }
    }

    /// The exploration strategy (for reports).
    pub fn explorer_name(&self) -> &'static str {
        self.explorer.name()
    }

    /// The risk model (for reports).
    pub fn risk_name(&self) -> &'static str {
        self.risk.name()
    }

    /// Number of executions observed.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Candidate plans for a query (exposed for Eraser and tests).
    pub fn candidates(&self, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
        self.explorer.explore(&self.ctx, query)
    }

    /// Risk-model score of one plan (exposed for Eraser).
    pub fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        self.risk.score(query, plan)
    }

    /// The optimization context.
    pub fn context(&self) -> &OptContext {
        &self.ctx
    }
}

impl LearnedOptimizer for ExploreSelectOptimizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan(&mut self, query: &SpjQuery) -> Result<PhysNode> {
        let candidates = self.explorer.explore(&self.ctx, query)?;
        if candidates.is_empty() {
            return Err(lqo_engine::EngineError::NoPlanFound(
                "explorer produced no candidates".into(),
            ));
        }
        let idx = self.risk.select(query, &candidates);
        Ok(candidates[idx].plan.clone())
    }

    fn observe(&mut self, query: &SpjQuery, plan: &PhysNode, work: f64) {
        self.history.push(ExecutionSample {
            query: Arc::new(query.clone()),
            plan: plan.clone(),
            work,
        });
        self.fresh += 1;
        if self.retrain_every > 0 && self.fresh >= self.retrain_every {
            self.retrain();
        }
    }

    fn retrain(&mut self) {
        if !self.history.is_empty() {
            self.risk.train(&self.history);
        }
        self.fresh = 0;
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use lqo_engine::datagen::imdb_like;
    use lqo_engine::query::parse_query;

    /// Small IMDB-like context plus a 6-query workload.
    pub fn fixture() -> (OptContext, Vec<SpjQuery>) {
        let catalog = Arc::new(imdb_like(150, 11).unwrap());
        let ctx = OptContext::new(catalog);
        let queries = vec![
            parse_query(
                "SELECT COUNT(*) FROM title t, cast_info ci \
                 WHERE t.id = ci.movie_id AND t.production_year > 1990",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_companies mc, company c \
                 WHERE t.id = mc.movie_id AND mc.company_id = c.id AND c.country_code < 8",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, cast_info ci, person p \
                 WHERE t.id = ci.movie_id AND ci.person_id = p.id AND p.gender = 1 \
                 AND t.votes > 20",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword kw \
                 WHERE t.id = mk.movie_id AND mk.keyword_id = kw.id AND kw.category = 2",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM person p, cast_info ci \
                 WHERE p.id = ci.person_id AND ci.role_id < 6 AND p.birth_year > 1960",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, kind k, movie_companies mc \
                 WHERE t.kind_id = k.id AND t.id = mc.movie_id AND t.production_year < 2000",
            )
            .unwrap(),
        ];
        (ctx, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::fixture;
    use super::*;

    struct OnePlan;
    impl PlanExplorer for OnePlan {
        fn name(&self) -> &'static str {
            "one"
        }
        fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
            let choice = ctx.optimizer().optimize_default(query, ctx.card.as_ref())?;
            Ok(vec![CandidatePlan {
                plan: choice.plan,
                label: "native".into(),
            }])
        }
    }

    struct ZeroRisk;
    impl RiskModel for ZeroRisk {
        fn name(&self) -> &'static str {
            "zero"
        }
        fn score(&self, _q: &SpjQuery, _p: &PhysNode) -> f64 {
            0.0
        }
        fn train(&mut self, _s: &[ExecutionSample]) {}
    }

    #[test]
    fn explore_select_runs_end_to_end() {
        let (ctx, queries) = fixture();
        let mut opt =
            ExploreSelectOptimizer::new("test", ctx.clone(), Box::new(OnePlan), Box::new(ZeroRisk));
        let plan = opt.plan(&queries[0]).unwrap();
        assert_eq!(plan.tables(), queries[0].all_tables());
        opt.observe(&queries[0], &plan, 123.0);
        assert_eq!(opt.history_len(), 1);
        assert_eq!(opt.explorer_name(), "one");
        assert_eq!(opt.risk_name(), "zero");
    }
}
