//! Learned risk models for plan selection.

use lqo_cost::PlanFeaturizer;
use lqo_engine::optimizer::plan_cost;
use lqo_engine::{PhysNode, SpjQuery};
use lqo_ml::mlp::{Mlp, MlpConfig};
use lqo_ml::scaler::log_label;
use lqo_ml::treeconv::{FeatTree, TreeConvConfig, TreeConvNet};

use crate::framework::{CandidatePlan, ExecutionSample, OptContext, RiskModel};

/// Native analytical cost of a plan (the cold-start fallback of every
/// learned risk model — exactly how Bao defaults to the native optimizer
/// until its model has seen enough executions).
///
/// A `plan_cost` failure is *surfaced*, not swallowed: the error lands on
/// the current query trace as a guard event and in the
/// `lqo.guard.native_cost_errors` counter before the plan is scored ∞
/// (so it still loses every comparison, but now visibly).
pub(crate) fn native_cost(ctx: &OptContext, query: &SpjQuery, plan: &PhysNode) -> f64 {
    match plan_cost(plan, query, &ctx.catalog, ctx.card.as_ref(), &ctx.params) {
        Ok(cost) => cost,
        Err(e) => {
            ctx.obs.count("lqo.guard.native_cost_errors", 1);
            let detail = e.to_string();
            ctx.obs.with_query(|t| {
                t.push_guard(lqo_obs::trace::GuardEvent {
                    component: "risk:native-cost".to_string(),
                    fault: detail.clone(),
                    action: "score:infinity".to_string(),
                });
            });
            f64::INFINITY
        }
    }
}

/// Minimum observations before a learned model overrides the native cost.
const MIN_SAMPLES: usize = 8;

/// Whether a training set carries enough signal to trust a pointwise
/// model over the native cost. A history saturated with duplicates — the
/// same native plan re-executed every epoch, which is exactly what an
/// untrained selector produces — has no ranking signal: a net fit on it
/// predicts near-constants and then picks arbitrarily among candidates.
/// Require [`MIN_SAMPLES`] *distinct* (query, plan) observations, not
/// just raw count. (The pairwise comparator gets this for free: identical
/// plans form no training pairs.)
fn has_training_diversity(samples: &[ExecutionSample]) -> bool {
    let mut distinct = std::collections::HashSet::new();
    for s in samples {
        distinct.insert((s.query.to_string(), s.plan.fingerprint()));
        if distinct.len() >= MIN_SAMPLES {
            return true;
        }
    }
    false
}

/// Pointwise tree-convolution latency prediction — Bao's and Neo's value
/// model \[37, 38\].
pub struct PointwiseTcnnRisk {
    ctx: OptContext,
    feat: PlanFeaturizer,
    net: TreeConvNet,
    trained: bool,
    /// Epochs per retrain.
    pub epochs: usize,
}

impl PointwiseTcnnRisk {
    /// Untrained model over a context.
    pub fn new(ctx: OptContext) -> PointwiseTcnnRisk {
        let feat = PlanFeaturizer::new(ctx.catalog.clone());
        let net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 2e-3,
            channels: vec![24, 12],
            head_hidden: vec![24],
            ..TreeConvConfig::new(feat.node_dim())
        });
        PointwiseTcnnRisk {
            ctx,
            feat,
            net,
            trained: false,
            epochs: 60,
        }
    }
}

impl RiskModel for PointwiseTcnnRisk {
    fn name(&self) -> &'static str {
        "TCNN (pointwise)"
    }

    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        if !self.trained {
            return native_cost(self.ctx(), query, plan);
        }
        let tree = self.feat.tree(query, plan);
        log_label::decode(self.net.predict(&tree) * 25.0)
    }

    fn train(&mut self, samples: &[ExecutionSample]) {
        if !has_training_diversity(samples) {
            return;
        }
        let trees: Vec<FeatTree> = samples
            .iter()
            .map(|s| self.feat.tree(&s.query, &s.plan))
            .collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|s| log_label::encode(s.work) / 25.0)
            .collect();
        let refs: Vec<&FeatTree> = trees.iter().collect();
        for _ in 0..self.epochs {
            for (ct, cy) in refs.chunks(16).zip(ys.chunks(16)) {
                self.net.train_batch(ct, cy);
            }
        }
        self.trained = true;
    }
}

impl PointwiseTcnnRisk {
    fn ctx(&self) -> &OptContext {
        &self.ctx
    }
}

/// Pairwise plan comparator — Lero's learning-to-rank model \[79\]. Trains
/// on pairs of executed plans *of the same query*; the scalar score it
/// produces is a ranking utility (selection still minimizes it, which for
/// a transitive scalar comparator coincides with Lero's most-wins rule).
pub struct PairwiseTcnnRisk {
    ctx: OptContext,
    feat: PlanFeaturizer,
    net: TreeConvNet,
    trained: bool,
    /// Epochs per retrain.
    pub epochs: usize,
}

impl PairwiseTcnnRisk {
    /// Untrained comparator over a context.
    pub fn new(ctx: OptContext) -> PairwiseTcnnRisk {
        let feat = PlanFeaturizer::new(ctx.catalog.clone());
        let net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 2e-3,
            channels: vec![24, 12],
            head_hidden: vec![24],
            seed: 29,
            ..TreeConvConfig::new(feat.node_dim())
        });
        PairwiseTcnnRisk {
            ctx,
            feat,
            net,
            trained: false,
            epochs: 80,
        }
    }
}

impl RiskModel for PairwiseTcnnRisk {
    fn name(&self) -> &'static str {
        "pairwise comparator"
    }

    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        if !self.trained {
            return native_cost(&self.ctx, query, plan);
        }
        // Higher net output = ranked better; negate so lower = better.
        -self.net.predict(&self.feat.tree(query, plan))
    }

    fn train(&mut self, samples: &[ExecutionSample]) {
        // Build within-query pairs labeled by measured work.
        let mut pairs_idx: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..samples.len() {
            for j in i + 1..samples.len() {
                if samples[i].query != samples[j].query {
                    continue;
                }
                let (wi, wj) = (samples[i].work, samples[j].work);
                if (wi - wj).abs() / wi.max(wj).max(1.0) < 0.05 {
                    continue; // ties teach nothing
                }
                // +1 when i is the better (cheaper) plan.
                pairs_idx.push((i, j, if wi < wj { 1.0 } else { -1.0 }));
            }
        }
        if pairs_idx.len() < MIN_SAMPLES {
            return;
        }
        let trees: Vec<FeatTree> = samples
            .iter()
            .map(|s| self.feat.tree(&s.query, &s.plan))
            .collect();
        for _ in 0..self.epochs {
            for chunk in pairs_idx.chunks(16) {
                let batch: Vec<(&FeatTree, &FeatTree, f64)> = chunk
                    .iter()
                    .map(|&(i, j, y)| (&trees[i], &trees[j], y))
                    .collect();
                self.net.train_pairwise_batch(&batch);
            }
        }
        self.trained = true;
    }
}

/// Multi-head ensemble with variance filtering — HyperQO's regression
/// defence \[72\]: candidates whose ensemble members disagree strongly are
/// discarded before the mean-score minimum is taken.
pub struct EnsembleRisk {
    ctx: OptContext,
    feat: PlanFeaturizer,
    heads: Vec<Mlp>,
    trained: bool,
    /// Drop candidates whose prediction variance exceeds this multiple of
    /// the candidate-set median variance.
    pub variance_cutoff: f64,
    /// Epochs per retrain.
    pub epochs: usize,
}

impl EnsembleRisk {
    /// Untrained 4-head ensemble.
    pub fn new(ctx: OptContext) -> EnsembleRisk {
        let feat = PlanFeaturizer::new(ctx.catalog.clone());
        let heads = (0..4)
            .map(|k| {
                Mlp::new(MlpConfig {
                    learning_rate: 3e-3,
                    seed: 300 + k,
                    ..MlpConfig::new(vec![feat.flat_dim(), 32, 1])
                })
            })
            .collect();
        EnsembleRisk {
            ctx,
            feat,
            heads,
            trained: false,
            variance_cutoff: 2.0,
            epochs: 80,
        }
    }

    fn predict_stats(&self, query: &SpjQuery, plan: &PhysNode) -> (f64, f64) {
        let x = self.feat.flat(query, plan);
        let preds: Vec<f64> = self.heads.iter().map(|h| h.predict_scalar(&x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (mean, var)
    }
}

impl RiskModel for EnsembleRisk {
    fn name(&self) -> &'static str {
        "ensemble + variance filter"
    }

    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        if !self.trained {
            return native_cost(&self.ctx, query, plan);
        }
        log_label::decode(self.predict_stats(query, plan).0 * 25.0)
    }

    fn train(&mut self, samples: &[ExecutionSample]) {
        if !has_training_diversity(samples) {
            return;
        }
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| self.feat.flat(&s.query, &s.plan))
            .collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|s| log_label::encode(s.work) / 25.0)
            .collect();
        for (k, head) in self.heads.iter_mut().enumerate() {
            // Each head sees a different bootstrap-ish slice.
            let idx: Vec<usize> = (0..xs.len()).filter(|i| (i + k) % 5 != 0).collect();
            let hx: Vec<Vec<f64>> = idx.iter().map(|&i| xs[i].clone()).collect();
            let hy: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
            head.fit_regression(&hx, &hy, self.epochs, 16, 400 + k as u64);
        }
        self.trained = true;
    }

    fn select(&self, query: &SpjQuery, candidates: &[CandidatePlan]) -> usize {
        if !self.trained || candidates.len() <= 1 {
            let scores: Vec<f64> = candidates
                .iter()
                .map(|c| self.score(query, &c.plan))
                .collect();
            return (0..candidates.len())
                .min_by(|&a, &b| scores[a].total_cmp(&scores[b]))
                .unwrap_or(0);
        }
        let stats: Vec<(f64, f64)> = candidates
            .iter()
            .map(|c| self.predict_stats(query, &c.plan))
            .collect();
        let mut vars: Vec<f64> = stats.iter().map(|s| s.1).collect();
        vars.sort_by(f64::total_cmp);
        let median = vars[vars.len() / 2];
        let cutoff = (median * self.variance_cutoff).max(1e-12);
        let filtered: Vec<usize> = (0..candidates.len())
            .filter(|&i| stats[i].1 <= cutoff)
            .collect();
        let pool = if filtered.is_empty() {
            (0..candidates.len()).collect::<Vec<_>>()
        } else {
            filtered
        };
        pool.into_iter()
            .min_by(|&a, &b| stats[a].0.total_cmp(&stats[b].0))
            .unwrap_or(0)
    }
}

/// LEON-style calibrated comparator \[4\]: a convex blend of the native
/// cost (in log space) and a learned pairwise ranking utility, so the
/// model only overrides the cost model where it has learned to.
pub struct CalibratedPairwiseRisk {
    inner: PairwiseTcnnRisk,
    /// Weight on the native cost (1 = pure native, 0 = pure learned).
    pub alpha: f64,
}

impl CalibratedPairwiseRisk {
    /// Default blend.
    pub fn new(ctx: OptContext) -> CalibratedPairwiseRisk {
        CalibratedPairwiseRisk {
            inner: PairwiseTcnnRisk::new(ctx),
            alpha: 0.5,
        }
    }
}

impl RiskModel for CalibratedPairwiseRisk {
    fn name(&self) -> &'static str {
        "calibrated pairwise"
    }

    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let native = native_cost(&self.inner.ctx, query, plan).max(1.0).ln();
        if !self.inner.trained {
            return native;
        }
        let learned = -self.inner.net.predict(&self.inner.feat.tree(query, plan));
        self.alpha * native + (1.0 - self.alpha) * learned
    }

    fn train(&mut self, samples: &[ExecutionSample]) {
        self.inner.train(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorers::BaoExplorer;
    use crate::framework::test_support::fixture;
    use crate::framework::PlanExplorer;
    use lqo_engine::Executor;
    use std::sync::Arc;

    fn collect_samples(ctx: &OptContext, queries: &[SpjQuery]) -> Vec<ExecutionSample> {
        let explorer = BaoExplorer::standard();
        let executor = Executor::with_defaults(&ctx.catalog);
        let mut out = Vec::new();
        for q in queries {
            for c in explorer.explore(ctx, q).unwrap() {
                if let Ok(r) = executor.execute(q, &c.plan) {
                    out.push(ExecutionSample {
                        query: Arc::new(q.clone()),
                        plan: c.plan,
                        work: r.work,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn pointwise_ranks_after_training() {
        let (ctx, queries) = fixture();
        let samples = collect_samples(&ctx, &queries);
        let mut risk = PointwiseTcnnRisk::new(ctx);
        risk.train(&samples);
        let scores: Vec<f64> = samples
            .iter()
            .map(|s| risk.score(&s.query, &s.plan).ln())
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.work.ln()).collect();
        let rho = lqo_ml::metrics::spearman(&scores, &truth);
        assert!(rho > 0.6, "pointwise rank correlation {rho}");
    }

    #[test]
    fn pairwise_orders_within_query() {
        let (ctx, queries) = fixture();
        let samples = collect_samples(&ctx, &queries);
        let mut risk = PairwiseTcnnRisk::new(ctx);
        risk.train(&samples);
        // Within each query, the cheapest sampled plan should not be
        // scored worst.
        let mut wins = 0;
        let mut total = 0;
        for q in &queries {
            let of_q: Vec<&ExecutionSample> =
                samples.iter().filter(|s| s.query.as_ref() == q).collect();
            if of_q.len() < 2 {
                continue;
            }
            let best = of_q
                .iter()
                .min_by(|a, b| a.work.total_cmp(&b.work))
                .unwrap();
            let worst = of_q
                .iter()
                .max_by(|a, b| a.work.total_cmp(&b.work))
                .unwrap();
            if best.work == worst.work {
                continue;
            }
            total += 1;
            if risk.score(q, &best.plan) < risk.score(q, &worst.plan) {
                wins += 1;
            }
        }
        assert!(total > 0);
        assert!(
            wins * 2 >= total,
            "pairwise model wrong on {} of {total} best/worst pairs",
            total - wins
        );
    }

    #[test]
    fn untrained_models_fall_back_to_native_cost() {
        let (ctx, queries) = fixture();
        let q = &queries[0];
        let plan = ctx
            .optimizer()
            .optimize_default(q, ctx.card.as_ref())
            .unwrap()
            .plan;
        let point = PointwiseTcnnRisk::new(ctx.clone());
        let native = native_cost(&ctx, q, &plan);
        assert_eq!(point.score(q, &plan), native);
        let ens = EnsembleRisk::new(ctx.clone());
        assert_eq!(ens.score(q, &plan), native);
    }

    #[test]
    fn ensemble_variance_filter_selects_reasonably() {
        let (ctx, queries) = fixture();
        let samples = collect_samples(&ctx, &queries);
        let mut risk = EnsembleRisk::new(ctx.clone());
        risk.train(&samples);
        let explorer = BaoExplorer::standard();
        let cands = explorer.explore(&ctx, &queries[1]).unwrap();
        let idx = risk.select(&queries[1], &cands);
        assert!(idx < cands.len());
    }

    #[test]
    fn calibrated_blend_interpolates() {
        let (ctx, queries) = fixture();
        let q = &queries[0];
        let plan = ctx
            .optimizer()
            .optimize_default(q, ctx.card.as_ref())
            .unwrap()
            .plan;
        let mut leon = CalibratedPairwiseRisk::new(ctx.clone());
        leon.alpha = 1.0;
        let samples = collect_samples(&ctx, &queries[..2]);
        leon.train(&samples);
        // alpha = 1 → pure (log) native cost even after training.
        let expected = native_cost(&ctx, q, &plan).max(1.0).ln();
        assert!((leon.score(q, &plan) - expected).abs() < 1e-9);
    }
}
