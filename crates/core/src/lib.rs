//! # learned-qo
//!
//! End-to-end learned query optimizers (paper §2.2), organized around the
//! survey's unified two-step framework: a *plan exploration strategy*
//! generates a candidate set `P_Q`, then a learned *risk model* picks the
//! plan to execute.
//!
//! * Exploration strategies ([`explorers`]): Bao-style hint-set steering
//!   \[37\], Lero-style cardinality scaling \[79\], HyperQO-style leading
//!   hints \[72\], and their union;
//! * Risk models ([`risk`]): pointwise tree-convolution latency
//!   prediction (Bao/Neo), pairwise comparators (Lero/LEON), ensembles
//!   with variance filtering (HyperQO);
//! * Scratch explorers ([`mod@neo`]): Neo's best-first and Balsa's beam
//!   search over the plan space guided by a learned value network
//!   \[38, 69\];
//! * Assembled systems ([`systems`]): `bao()`, `lero()`, `hyper_qo()`,
//!   `leon()`, `neo()`, `balsa()`;
//! * Regression elimination ([`eraser`]): Eraser's two-stage
//!   coarse-filter + plan-clustering guard \[62\], pluggable on top of any
//!   learned optimizer;
//! * A training/evaluation loop ([`harness`]) used by experiments E4/E5.

#![warn(missing_docs)]

pub mod eraser;
pub mod explorers;
pub mod framework;
pub mod harness;
pub mod neo;
pub mod risk;
pub mod systems;

pub use eraser::{Eraser, GuardedOptimizer};
pub use explorers::discover_arms;
pub use framework::{
    CandidatePlan, ExecutionSample, ExploreSelectOptimizer, LearnedOptimizer, OptContext,
    PlanExplorer, RiskModel,
};
pub use harness::{NativeBaseline, TrainingLoop};
pub use systems::{balsa, bao, hyper_qo, leon, lero, neo};
