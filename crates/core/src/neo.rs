//! Scratch-exploring learned optimizers: Neo \[38\] and Balsa \[69\].
//!
//! Both search the (left-deep) plan space guided by a tree-convolution
//! *value network* that predicts the final latency reachable from a
//! partial plan; they differ in search strategy (best-first vs beam) and
//! bootstrap (Neo starts from the native expert's plans, Balsa from
//! random plans — "without expert demonstrations"). The restriction of
//! the search to left-deep prefixes is recorded in DESIGN.md.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lqo_cost::PlanFeaturizer;
use lqo_engine::query::JoinGraph;
use lqo_engine::{JoinTree, PhysNode, Result, SpjQuery, TableSet};
use lqo_join::JoinEnv;
use lqo_ml::scaler::log_label;
use lqo_ml::treeconv::{FeatTree, TreeConvConfig, TreeConvNet};

use crate::framework::{ExecutionSample, LearnedOptimizer, OptContext};

/// How the value-guided search explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Neo: global best-first with an expansion budget.
    BestFirst {
        /// Maximum node expansions per query.
        budget: usize,
    },
    /// Balsa: beam search of the given width.
    Beam {
        /// Beam width.
        width: usize,
    },
}

/// How the optimizer behaves before its first training round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bootstrap {
    /// Use the native optimizer's plan (Neo's expert demonstrations).
    Expert,
    /// Use a random valid plan (Balsa learns from scratch).
    Random,
}

/// A value-network-guided plan search optimizer.
pub struct ValueSearchOptimizer {
    name: String,
    ctx: OptContext,
    env: JoinEnv,
    feat: PlanFeaturizer,
    net: TreeConvNet,
    strategy: SearchStrategy,
    bootstrap: Bootstrap,
    trained: bool,
    history: Vec<ExecutionSample>,
    fresh: usize,
    /// Retrain after this many new observations.
    pub retrain_every: usize,
    /// Training epochs per retrain.
    pub epochs: usize,
    rng: StdRng,
}

struct Frontier {
    value: f64,
    order: Vec<usize>,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on negated value → min-value first.
        other.value.total_cmp(&self.value)
    }
}

impl ValueSearchOptimizer {
    /// Build a searcher.
    pub fn new(
        name: impl Into<String>,
        ctx: OptContext,
        strategy: SearchStrategy,
        bootstrap: Bootstrap,
        seed: u64,
    ) -> ValueSearchOptimizer {
        let feat = PlanFeaturizer::new(ctx.catalog.clone());
        let net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 2e-3,
            channels: vec![24, 12],
            head_hidden: vec![24],
            seed: seed ^ 0xFE,
            ..TreeConvConfig::new(feat.node_dim())
        });
        let env = JoinEnv::new(ctx.catalog.clone(), ctx.card.clone());
        ValueSearchOptimizer {
            name: name.into(),
            ctx,
            env,
            feat,
            net,
            strategy,
            bootstrap,
            trained: false,
            history: Vec::new(),
            fresh: 0,
            retrain_every: 12,
            epochs: 60,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Value-network prediction of the final latency reachable from a
    /// left-deep prefix (lower is better).
    fn value(&self, query: &SpjQuery, order: &[usize]) -> f64 {
        let tree = JoinTree::left_deep(order).expect("non-empty prefix");
        let plan = self.env.assign_operators(query, &tree);
        self.net.predict(&self.feat.tree(query, &plan))
    }

    fn random_order(&mut self, query: &SpjQuery, graph: &JoinGraph) -> Vec<usize> {
        let n = query.num_tables();
        let mut joined = TableSet::EMPTY;
        let mut order = Vec::with_capacity(n);
        while joined.len() < n {
            let mut cands = self.env.candidates(query, graph, joined);
            cands.shuffle(&mut self.rng);
            let pick = cands[0];
            order.push(pick);
            joined = joined.insert(pick);
        }
        order
    }

    fn search(&self, query: &SpjQuery, graph: &JoinGraph) -> Vec<usize> {
        let n = query.num_tables();
        match self.strategy {
            SearchStrategy::BestFirst { budget } => {
                let mut heap = BinaryHeap::new();
                for t in 0..n {
                    heap.push(Frontier {
                        value: self.value(query, &[t]),
                        order: vec![t],
                    });
                }
                let mut best_terminal: Option<Frontier> = None;
                let mut expansions = 0;
                while let Some(node) = heap.pop() {
                    if node.order.len() == n {
                        best_terminal = Some(node);
                        break; // best-first: first terminal popped is best
                    }
                    expansions += 1;
                    if expansions > budget {
                        break;
                    }
                    let joined = TableSet::from_iter(node.order.iter().copied());
                    for next in self.env.candidates(query, graph, joined) {
                        let mut order = node.order.clone();
                        order.push(next);
                        heap.push(Frontier {
                            value: self.value(query, &order),
                            order,
                        });
                    }
                }
                match best_terminal {
                    Some(t) => t.order,
                    None => {
                        // Budget exhausted: complete the most promising
                        // frontier node greedily by value.
                        let mut order = heap.pop().map(|f| f.order).unwrap_or_else(|| vec![0]);
                        self.complete_greedy(query, graph, &mut order);
                        order
                    }
                }
            }
            SearchStrategy::Beam { width } => {
                let mut beam: Vec<Vec<usize>> = (0..n).map(|t| vec![t]).collect();
                beam.sort_by(|a, b| self.value(query, a).total_cmp(&self.value(query, b)));
                beam.truncate(width);
                for _ in 1..n {
                    let mut next: Vec<Vec<usize>> = Vec::new();
                    for prefix in &beam {
                        let joined = TableSet::from_iter(prefix.iter().copied());
                        for cand in self.env.candidates(query, graph, joined) {
                            let mut order = prefix.clone();
                            order.push(cand);
                            next.push(order);
                        }
                    }
                    next.sort_by(|a, b| self.value(query, a).total_cmp(&self.value(query, b)));
                    next.truncate(width);
                    beam = next;
                }
                beam.into_iter().next().unwrap_or_else(|| vec![0])
            }
        }
    }

    fn complete_greedy(&self, query: &SpjQuery, graph: &JoinGraph, order: &mut Vec<usize>) {
        let n = query.num_tables();
        let mut joined = TableSet::from_iter(order.iter().copied());
        while order.len() < n {
            let next = self
                .env
                .candidates(query, graph, joined)
                .into_iter()
                .min_by(|&a, &b| {
                    let mut oa = order.clone();
                    oa.push(a);
                    let mut ob = order.clone();
                    ob.push(b);
                    self.value(query, &oa).total_cmp(&self.value(query, &ob))
                })
                .expect("candidates available");
            order.push(next);
            joined = joined.insert(next);
        }
    }
}

impl LearnedOptimizer for ValueSearchOptimizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan(&mut self, query: &SpjQuery) -> Result<PhysNode> {
        let graph = JoinGraph::new(query);
        if !self.trained {
            return match self.bootstrap {
                Bootstrap::Expert => Ok(self
                    .ctx
                    .optimizer()
                    .optimize_default(query, self.ctx.card.as_ref())?
                    .plan),
                Bootstrap::Random => {
                    let order = self.random_order(query, &graph);
                    let tree = JoinTree::left_deep(&order).expect("non-empty order");
                    Ok(self.env.assign_operators(query, &tree))
                }
            };
        }
        let order = self.search(query, &graph);
        let tree = JoinTree::left_deep(&order).expect("non-empty order");
        Ok(self.env.assign_operators(query, &tree))
    }

    fn observe(&mut self, query: &SpjQuery, plan: &PhysNode, work: f64) {
        self.history.push(ExecutionSample {
            query: Arc::new(query.clone()),
            plan: plan.clone(),
            work,
        });
        self.fresh += 1;
        if self.fresh >= self.retrain_every {
            self.retrain();
        }
    }

    fn retrain(&mut self) {
        self.fresh = 0;
        if self.history.len() < 6 {
            return;
        }
        // Neo's trick: every left-deep prefix of an executed plan is a
        // training point labeled with the full plan's latency.
        let mut trees: Vec<FeatTree> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.history {
            let label = log_label::encode(s.work) / 25.0;
            let jt = s.plan.join_tree();
            if jt.is_left_deep() {
                let order = jt.leaf_order();
                for k in 1..=order.len() {
                    let prefix = JoinTree::left_deep(&order[..k]).unwrap();
                    let partial = self.env.assign_operators(&s.query, &prefix);
                    trees.push(self.feat.tree(&s.query, &partial));
                    ys.push(label);
                }
            } else {
                trees.push(self.feat.tree(&s.query, &s.plan));
                ys.push(label);
            }
        }
        let refs: Vec<&FeatTree> = trees.iter().collect();
        for _ in 0..self.epochs {
            for (ct, cy) in refs.chunks(16).zip(ys.chunks(16)) {
                self.net.train_batch(ct, cy);
            }
        }
        self.trained = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::test_support::fixture;
    use lqo_engine::Executor;

    fn run_epochs(
        opt: &mut ValueSearchOptimizer,
        ctx: &OptContext,
        queries: &[SpjQuery],
        epochs: usize,
    ) {
        let executor = Executor::with_defaults(&ctx.catalog);
        for _ in 0..epochs {
            for q in queries {
                let plan = opt.plan(q).unwrap();
                if let Ok(r) = executor.execute(q, &plan) {
                    opt.observe(q, &plan, r.work);
                }
            }
            opt.retrain();
        }
    }

    #[test]
    fn neo_bootstraps_from_expert_and_learns() {
        let (ctx, queries) = fixture();
        let mut neo = ValueSearchOptimizer::new(
            "Neo",
            ctx.clone(),
            SearchStrategy::BestFirst { budget: 64 },
            Bootstrap::Expert,
            1,
        );
        // Untrained: identical to the native plan.
        let native = ctx
            .optimizer()
            .optimize_default(&queries[0], ctx.card.as_ref())
            .unwrap()
            .plan;
        assert_eq!(neo.plan(&queries[0]).unwrap(), native);

        run_epochs(&mut neo, &ctx, &queries, 2);
        // Trained: still produces valid executable plans.
        let executor = Executor::with_defaults(&ctx.catalog);
        for q in &queries {
            let plan = neo.plan(q).unwrap();
            assert_eq!(plan.tables(), q.all_tables());
            assert!(executor.execute(q, &plan).is_ok());
        }
    }

    #[test]
    fn balsa_bootstraps_randomly() {
        let (ctx, queries) = fixture();
        let mut balsa = ValueSearchOptimizer::new(
            "Balsa",
            ctx.clone(),
            SearchStrategy::Beam { width: 4 },
            Bootstrap::Random,
            2,
        );
        // Untrained: random but valid.
        let plan = balsa.plan(&queries[2]).unwrap();
        assert_eq!(plan.tables(), queries[2].all_tables());
        run_epochs(&mut balsa, &ctx, &queries, 2);
        let plan = balsa.plan(&queries[2]).unwrap();
        assert_eq!(plan.tables(), queries[2].all_tables());
    }

    #[test]
    fn trained_search_does_not_collapse() {
        let (ctx, queries) = fixture();
        let mut neo = ValueSearchOptimizer::new(
            "Neo",
            ctx.clone(),
            SearchStrategy::BestFirst { budget: 32 },
            Bootstrap::Expert,
            3,
        );
        run_epochs(&mut neo, &ctx, &queries, 3);
        // Plan quality after training: within 20x of native total work.
        let executor = Executor::with_defaults(&ctx.catalog);
        let mut learned_work = 0.0;
        let mut native_work = 0.0;
        for q in &queries {
            let lp = neo.plan(q).unwrap();
            learned_work += executor.execute(q, &lp).unwrap().work;
            let np = ctx
                .optimizer()
                .optimize_default(q, ctx.card.as_ref())
                .unwrap()
                .plan;
            native_work += executor.execute(q, &np).unwrap().work;
        }
        assert!(
            learned_work < native_work * 20.0,
            "learned {learned_work} vs native {native_work}"
        );
    }
}
