//! Plan exploration strategies steering the native optimizer.

use std::collections::HashSet;
use std::sync::Arc;

use lqo_engine::optimizer::{CardSource, ScaledCardSource};
use lqo_engine::{HintSet, Result, SpjQuery};

use crate::framework::{CandidatePlan, OptContext, PlanExplorer};

/// Bao-style exploration \[37\]: one candidate per hint-set arm (operator
/// toggles, left-deep restriction), all optimized under the native
/// cardinalities.
pub struct BaoExplorer {
    arms: Vec<HintSet>,
}

impl BaoExplorer {
    /// The standard 8-arm family.
    pub fn standard() -> BaoExplorer {
        BaoExplorer {
            arms: HintSet::standard_arms(),
        }
    }

    /// Custom arms (AutoSteer-style discovered hint sets plug in here).
    pub fn with_arms(arms: Vec<HintSet>) -> BaoExplorer {
        BaoExplorer { arms }
    }

    /// Number of arms.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }
}

impl PlanExplorer for BaoExplorer {
    fn name(&self) -> &'static str {
        "hint-sets"
    }

    fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
        let optimizer = ctx.optimizer();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for arm in &self.arms {
            let Ok(choice) = optimizer.optimize(query, ctx.card.as_ref(), arm) else {
                continue;
            };
            if seen.insert(choice.plan.fingerprint()) {
                out.push(CandidatePlan {
                    plan: choice.plan,
                    label: arm.label(),
                });
            }
        }
        Ok(out)
    }
}

/// Lero-style exploration \[79\]: re-optimize under cardinalities scaled by
/// factors spanning under- to over-estimation; different factors surface
/// systematically different plans.
pub struct LeroExplorer {
    factors: Vec<f64>,
}

impl LeroExplorer {
    /// The paper's factor ladder.
    pub fn standard() -> LeroExplorer {
        LeroExplorer {
            factors: vec![0.1, 0.5, 1.0, 2.0, 10.0],
        }
    }

    /// Custom factors.
    pub fn with_factors(factors: Vec<f64>) -> LeroExplorer {
        LeroExplorer { factors }
    }
}

impl PlanExplorer for LeroExplorer {
    fn name(&self) -> &'static str {
        "cardinality-scaling"
    }

    fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
        let optimizer = ctx.optimizer();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &f in &self.factors {
            let scaled: Arc<dyn CardSource> = Arc::new(ScaledCardSource::new(ctx.card.clone(), f));
            let Ok(choice) = optimizer.optimize(query, scaled.as_ref(), &HintSet::default()) else {
                continue;
            };
            if seen.insert(choice.plan.fingerprint()) {
                out.push(CandidatePlan {
                    plan: choice.plan,
                    label: format!("scale={f}"),
                });
            }
        }
        Ok(out)
    }
}

/// HyperQO-style exploration \[72\]: leading hints force different join
/// prefixes (single tables and connected pairs), plus the unconstrained
/// native plan.
pub struct LeadingHintExplorer {
    /// Cap on the number of leading-pair candidates.
    pub max_pairs: usize,
}

impl LeadingHintExplorer {
    /// Default budget.
    pub fn standard() -> LeadingHintExplorer {
        LeadingHintExplorer { max_pairs: 6 }
    }
}

impl PlanExplorer for LeadingHintExplorer {
    fn name(&self) -> &'static str {
        "leading-hints"
    }

    fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
        let optimizer = ctx.optimizer();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |hints: &HintSet, label: String| {
            if let Ok(choice) = optimizer.optimize(query, ctx.card.as_ref(), hints) {
                if seen.insert(choice.plan.fingerprint()) {
                    out.push(CandidatePlan {
                        plan: choice.plan,
                        label,
                    });
                }
            }
        };
        push(&HintSet::default(), "native".into());
        let n = query.num_tables();
        for t in 0..n {
            push(&HintSet::with_leading(vec![t]), format!("leading=[{t}]"));
        }
        let graph = lqo_engine::query::JoinGraph::new(query);
        let mut pairs = 0;
        'outer: for a in 0..n {
            for b in graph.neighbors(a).iter() {
                if pairs >= self.max_pairs {
                    break 'outer;
                }
                push(
                    &HintSet::with_leading(vec![a, b]),
                    format!("leading=[{a},{b}]"),
                );
                pairs += 1;
            }
        }
        Ok(out)
    }
}

/// AutoSteer-style automated hint-set discovery \[1\]: probe which single
/// operator toggles actually change plans on a sample workload, then
/// greedily merge effective toggles into composite arms — minimizing the
/// arm count a Bao deployment has to explore.
pub fn discover_arms(ctx: &OptContext, probe: &[SpjQuery], max_arms: usize) -> Vec<HintSet> {
    let optimizer = ctx.optimizer();
    let default_fps: Vec<Option<String>> = probe
        .iter()
        .map(|q| {
            optimizer
                .optimize(q, ctx.card.as_ref(), &HintSet::default())
                .ok()
                .map(|c| c.plan.fingerprint())
        })
        .collect();
    // How many probe plans an arm changes relative to the default.
    let effectiveness = |arm: &HintSet| -> usize {
        probe
            .iter()
            .zip(&default_fps)
            .filter(|(q, dfp)| {
                let Some(dfp) = dfp else { return false };
                optimizer
                    .optimize(q, ctx.card.as_ref(), arm)
                    .map(|c| &c.plan.fingerprint() != dfp)
                    .unwrap_or(false)
            })
            .count()
    };

    let singles = [
        HintSet {
            allow_hash: false,
            ..HintSet::default()
        },
        HintSet {
            allow_nl: false,
            ..HintSet::default()
        },
        HintSet {
            allow_merge: false,
            ..HintSet::default()
        },
        HintSet {
            left_deep_only: true,
            ..HintSet::default()
        },
    ];
    let effective: Vec<HintSet> = singles
        .into_iter()
        .filter(|arm| effectiveness(arm) > 0)
        .collect();

    let mut arms = vec![HintSet::default()];
    arms.extend(effective.iter().cloned());
    // Greedy pairwise merge of effective toggles.
    let merge = |a: &HintSet, b: &HintSet| HintSet {
        allow_hash: a.allow_hash && b.allow_hash,
        allow_nl: a.allow_nl && b.allow_nl,
        allow_merge: a.allow_merge && b.allow_merge,
        left_deep_only: a.left_deep_only || b.left_deep_only,
        ..HintSet::default()
    };
    'outer: for i in 0..effective.len() {
        for j in i + 1..effective.len() {
            if arms.len() >= max_arms {
                break 'outer;
            }
            let candidate = merge(&effective[i], &effective[j]);
            if candidate.num_allowed_algos() == 0 || arms.contains(&candidate) {
                continue;
            }
            if effectiveness(&candidate) > 0 {
                arms.push(candidate);
            }
        }
    }
    arms.truncate(max_arms.max(1));
    arms
}

/// Union of several explorers (LEON's wider DP-based candidate pool).
pub struct UnionExplorer {
    parts: Vec<Box<dyn PlanExplorer>>,
}

impl UnionExplorer {
    /// Combine explorers.
    pub fn new(parts: Vec<Box<dyn PlanExplorer>>) -> UnionExplorer {
        UnionExplorer { parts }
    }
}

impl PlanExplorer for UnionExplorer {
    fn name(&self) -> &'static str {
        "union"
    }

    fn explore(&self, ctx: &OptContext, query: &SpjQuery) -> Result<Vec<CandidatePlan>> {
        let mut out: Vec<CandidatePlan> = Vec::new();
        let mut seen = HashSet::new();
        for p in &self.parts {
            for c in p.explore(ctx, query)? {
                if seen.insert(c.plan.fingerprint()) {
                    out.push(c);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::test_support::fixture;

    #[test]
    fn bao_generates_multiple_distinct_candidates() {
        let (ctx, queries) = fixture();
        let explorer = BaoExplorer::standard();
        assert_eq!(explorer.num_arms(), 8);
        let cands = explorer.explore(&ctx, &queries[2]).unwrap();
        assert!(cands.len() >= 2, "got {} candidates", cands.len());
        // All candidates are valid full plans.
        for c in &cands {
            assert_eq!(c.plan.tables(), queries[2].all_tables());
        }
        // Fingerprints are unique.
        let fps: HashSet<String> = cands.iter().map(|c| c.plan.fingerprint()).collect();
        assert_eq!(fps.len(), cands.len());
    }

    #[test]
    fn lero_scaling_changes_plans() {
        let (ctx, queries) = fixture();
        let explorer = LeroExplorer::standard();
        let cands = explorer.explore(&ctx, &queries[2]).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.iter().any(|c| c.label.contains("scale")));
    }

    #[test]
    fn leading_hints_cover_prefixes() {
        let (ctx, queries) = fixture();
        let explorer = LeadingHintExplorer::standard();
        let cands = explorer.explore(&ctx, &queries[1]).unwrap();
        // At least the native plan plus some forced prefixes.
        assert!(cands.len() >= 2);
        assert!(cands.iter().any(|c| c.label == "native"));
        assert!(cands.iter().any(|c| c.label.starts_with("leading")));
    }

    #[test]
    fn discovered_arms_start_with_default_and_change_plans() {
        let (ctx, queries) = fixture();
        let arms = discover_arms(&ctx, &queries, 6);
        assert!(!arms.is_empty());
        assert!(arms.len() <= 6);
        assert_eq!(arms[0], HintSet::default());
        // Every non-default arm changes at least one probe plan.
        let optimizer = ctx.optimizer();
        for arm in &arms[1..] {
            let changes = queries.iter().any(|q| {
                let d = optimizer
                    .optimize(q, ctx.card.as_ref(), &HintSet::default())
                    .unwrap()
                    .plan
                    .fingerprint();
                optimizer
                    .optimize(q, ctx.card.as_ref(), arm)
                    .map(|c| c.plan.fingerprint() != d)
                    .unwrap_or(false)
            });
            assert!(changes, "useless arm {arm:?}");
        }
        // Discovered arms plug straight into Bao.
        let bao = BaoExplorer::with_arms(arms);
        let cands = bao.explore(&ctx, &queries[2]).unwrap();
        assert!(!cands.is_empty());
    }

    #[test]
    fn union_dedups_across_parts() {
        let (ctx, queries) = fixture();
        let union = UnionExplorer::new(vec![
            Box::new(BaoExplorer::standard()),
            Box::new(BaoExplorer::standard()),
        ]);
        let solo = BaoExplorer::standard().explore(&ctx, &queries[0]).unwrap();
        let merged = union.explore(&ctx, &queries[0]).unwrap();
        assert_eq!(solo.len(), merged.len());
    }
}
