//! Eraser \[62\]: performance-regression elimination as a plugin on top of
//! any learned optimizer. Two stages, as in the paper:
//!
//! 1. a **coarse filter** removes candidate plans containing structural
//!    feature values never seen in any executed plan (unseen
//!    (join-signature, operator) pairs are exactly where learned models
//!    extrapolate);
//! 2. a **plan-cluster** stage groups plans by their feature vectors and
//!    tracks the risk model's historical prediction quality per cluster;
//!    plans from unreliable clusters are dropped. If nothing survives,
//!    the native plan runs — regressions are bounded by construction.

use std::collections::HashSet;

use lqo_cost::PlanFeaturizer;
use lqo_engine::{PhysNode, SpjQuery};
use lqo_ml::kmeans::KMeans;

use crate::framework::{CandidatePlan, ExecutionSample, OptContext};

/// Structural signature of one join node: operator + the sorted table
/// names it joins. Unseen signatures mark extrapolation territory.
fn join_signatures(query: &SpjQuery, plan: &PhysNode) -> Vec<String> {
    let mut out = Vec::new();
    plan.visit_bottom_up(&mut |n| {
        if let PhysNode::Join { algo, .. } = n {
            let mut tables: Vec<&str> = n
                .tables()
                .iter()
                .map(|p| query.tables[p].table.as_str())
                .collect();
            tables.sort();
            out.push(format!("{algo}:{}", tables.join(",")));
        }
    });
    out
}

/// The fitted Eraser guard.
pub struct Eraser {
    feat: PlanFeaturizer,
    seen: HashSet<String>,
    clusters: KMeans,
    /// Mean |log predicted − log actual| per cluster.
    cluster_error: Vec<f64>,
    /// Clusters with error above this are unreliable.
    pub error_threshold: f64,
    /// Enable stage 1 (unseen-structure coarse filter). Ablation knob.
    pub use_coarse_filter: bool,
    /// Enable stage 2 (plan-cluster reliability filter). Ablation knob.
    pub use_cluster_filter: bool,
}

impl Eraser {
    /// Fit from execution history and the risk model's predictions at
    /// execution time (`predicted[i]` corresponds to `samples[i]`).
    pub fn fit(
        ctx: &OptContext,
        samples: &[ExecutionSample],
        predicted: &[f64],
        k: usize,
    ) -> Eraser {
        assert_eq!(samples.len(), predicted.len());
        assert!(!samples.is_empty(), "Eraser needs execution history");
        let feat = PlanFeaturizer::new(ctx.catalog.clone());
        let mut seen = HashSet::new();
        for s in samples {
            for sig in join_signatures(&s.query, &s.plan) {
                seen.insert(sig);
            }
        }
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| feat.flat(&s.query, &s.plan))
            .collect();
        let clusters = KMeans::fit(&xs, k, 30, 0xE4A5E4);
        let mut err_sum = vec![0.0; clusters.k()];
        let mut err_cnt = vec![0usize; clusters.k()];
        for (i, s) in samples.iter().enumerate() {
            let c = clusters.assignments[i];
            let e = (predicted[i].max(1.0).ln() - s.work.max(1.0).ln()).abs();
            err_sum[c] += e;
            err_cnt[c] += 1;
        }
        let cluster_error: Vec<f64> = err_sum
            .iter()
            .zip(&err_cnt)
            .map(|(&s, &n)| if n == 0 { f64::INFINITY } else { s / n as f64 })
            .collect();
        // Default threshold: a 3.5x average log error marks a
        // cluster unreliable.
        Eraser {
            feat,
            seen,
            clusters,
            cluster_error,
            error_threshold: 3.5f64.ln(),
            use_coarse_filter: true,
            use_cluster_filter: true,
        }
    }

    /// True when the plan contains a join signature never executed.
    pub fn is_risky(&self, query: &SpjQuery, plan: &PhysNode) -> bool {
        join_signatures(query, plan)
            .iter()
            .any(|sig| !self.seen.contains(sig))
    }

    /// Historical prediction error of the plan's cluster.
    pub fn cluster_reliability(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let c = self.clusters.assign(&self.feat.flat(query, plan));
        self.cluster_error[c]
    }

    /// Apply both stages: among candidates, keep plans that are neither
    /// structurally risky nor from unreliable clusters; return the
    /// surviving plan with the best (lowest) score, or the native plan
    /// when nothing survives.
    pub fn guard(
        &self,
        query: &SpjQuery,
        candidates: &[CandidatePlan],
        scores: &[f64],
        native: &PhysNode,
    ) -> PhysNode {
        assert_eq!(candidates.len(), scores.len());
        let survivors: Vec<usize> = (0..candidates.len())
            .filter(|&i| {
                !self.is_risky(query, &candidates[i].plan)
                    && self.cluster_reliability(query, &candidates[i].plan) <= self.error_threshold
            })
            .collect();
        match survivors
            .into_iter()
            .min_by(|&a, &b| scores[a].total_cmp(&scores[b]))
        {
            Some(i) => candidates[i].plan.clone(),
            None => native.clone(),
        }
    }
}

/// A learned optimizer wrapped with Eraser: candidates and risk scores
/// come from the inner system; Eraser vetoes risky selections and falls
/// back to the native plan. Refits its filter at every retrain from the
/// inner system's execution history.
pub struct GuardedOptimizer {
    inner: crate::framework::ExploreSelectOptimizer,
    ctx: OptContext,
    eraser: Option<Eraser>,
    /// `(sample, score the model gave the executed plan)` records.
    records: Vec<(ExecutionSample, f64)>,
    /// Plan clusters for the second stage.
    pub clusters: usize,
    /// Stage 1 toggle forwarded to every refitted [`Eraser`].
    pub use_coarse_filter: bool,
    /// Stage 2 toggle forwarded to every refitted [`Eraser`].
    pub use_cluster_filter: bool,
}

impl GuardedOptimizer {
    /// Wrap a system.
    pub fn new(inner: crate::framework::ExploreSelectOptimizer) -> GuardedOptimizer {
        let ctx = inner.context().clone();
        GuardedOptimizer {
            inner,
            ctx,
            eraser: None,
            records: Vec::new(),
            clusters: 6,
            use_coarse_filter: true,
            use_cluster_filter: true,
        }
    }

    /// Ablation constructor: enable only the chosen Eraser stages.
    pub fn with_stages(
        inner: crate::framework::ExploreSelectOptimizer,
        coarse: bool,
        cluster: bool,
    ) -> GuardedOptimizer {
        GuardedOptimizer {
            use_coarse_filter: coarse,
            use_cluster_filter: cluster,
            ..GuardedOptimizer::new(inner)
        }
    }

    /// True once the guard is active.
    pub fn is_guarding(&self) -> bool {
        self.eraser.is_some()
    }
}

impl crate::framework::LearnedOptimizer for GuardedOptimizer {
    fn name(&self) -> &str {
        "Eraser-guarded"
    }

    fn plan(&mut self, query: &SpjQuery) -> lqo_engine::Result<PhysNode> {
        let candidates = self.inner.candidates(query)?;
        if candidates.is_empty() {
            return Err(lqo_engine::EngineError::NoPlanFound("no candidates".into()));
        }
        let scores: Vec<f64> = candidates
            .iter()
            .map(|c| self.inner.score(query, &c.plan))
            .collect();
        match &self.eraser {
            Some(eraser) => {
                let native = self
                    .ctx
                    .optimizer()
                    .optimize_default(query, self.ctx.card.as_ref())?
                    .plan;
                Ok(eraser.guard(query, &candidates, &scores, &native))
            }
            None => {
                // Ungated warm-up: behave like the inner system.
                let idx = scores
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Ok(candidates[idx].plan.clone())
            }
        }
    }

    fn observe(&mut self, query: &SpjQuery, plan: &PhysNode, work: f64) {
        let predicted = self.inner.score(query, plan);
        self.records.push((
            ExecutionSample {
                query: std::sync::Arc::new(query.clone()),
                plan: plan.clone(),
                work,
            },
            predicted,
        ));
        self.inner.observe(query, plan, work);
    }

    fn retrain(&mut self) {
        self.inner.retrain();
        if self.records.len() >= 8 {
            let samples: Vec<ExecutionSample> =
                self.records.iter().map(|(s, _)| s.clone()).collect();
            let predicted: Vec<f64> = self.records.iter().map(|(_, p)| *p).collect();
            let mut eraser = Eraser::fit(&self.ctx, &samples, &predicted, self.clusters);
            eraser.use_coarse_filter = self.use_coarse_filter;
            eraser.use_cluster_filter = self.use_cluster_filter;
            self.eraser = Some(eraser);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorers::BaoExplorer;
    use crate::framework::test_support::fixture;
    use crate::framework::PlanExplorer;
    use lqo_engine::{Executor, JoinAlgo};
    use std::sync::Arc;

    fn history(ctx: &OptContext, queries: &[SpjQuery]) -> (Vec<ExecutionSample>, Vec<f64>) {
        let explorer = BaoExplorer::standard();
        let executor = Executor::with_defaults(&ctx.catalog);
        let mut samples = Vec::new();
        let mut predicted = Vec::new();
        for q in queries {
            for c in explorer.explore(ctx, q).unwrap() {
                if let Ok(r) = executor.execute(q, &c.plan) {
                    // Pretend the risk model predicted within 1.2x.
                    predicted.push(r.work * 1.2);
                    samples.push(ExecutionSample {
                        query: Arc::new(q.clone()),
                        plan: c.plan,
                        work: r.work,
                    });
                }
            }
        }
        (samples, predicted)
    }

    #[test]
    fn executed_plans_are_not_risky() {
        let (ctx, queries) = fixture();
        let (samples, predicted) = history(&ctx, &queries);
        let eraser = Eraser::fit(&ctx, &samples, &predicted, 4);
        for s in &samples {
            assert!(!eraser.is_risky(&s.query, &s.plan));
        }
    }

    #[test]
    fn unseen_structure_is_risky() {
        let (ctx, queries) = fixture();
        // Train only on query 0's plans; query 3 joins different tables.
        let (samples, predicted) = history(&ctx, &queries[..1]);
        let eraser = Eraser::fit(&ctx, &samples, &predicted, 2);
        let q3 = &queries[3];
        let plan = ctx
            .optimizer()
            .optimize_default(q3, ctx.card.as_ref())
            .unwrap()
            .plan;
        assert!(eraser.is_risky(q3, &plan));
    }

    #[test]
    fn guard_falls_back_to_native_when_all_risky() {
        let (ctx, queries) = fixture();
        let (samples, predicted) = history(&ctx, &queries[..1]);
        let eraser = Eraser::fit(&ctx, &samples, &predicted, 2);
        let q3 = &queries[3];
        let native = ctx
            .optimizer()
            .optimize_default(q3, ctx.card.as_ref())
            .unwrap()
            .plan;
        let cands = vec![CandidatePlan {
            plan: PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(0), {
                PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(1), PhysNode::scan(2))
            }),
            label: "risky".into(),
        }];
        let chosen = eraser.guard(q3, &cands, &[1.0], &native);
        assert_eq!(chosen, native);
    }

    #[test]
    fn guard_keeps_good_candidates() {
        let (ctx, queries) = fixture();
        let (samples, predicted) = history(&ctx, &queries);
        let eraser = Eraser::fit(&ctx, &samples, &predicted, 4);
        let q = &queries[1];
        let explorer = BaoExplorer::standard();
        let cands = explorer.explore(&ctx, q).unwrap();
        let scores: Vec<f64> = (0..cands.len()).map(|i| i as f64).collect();
        let native = ctx
            .optimizer()
            .optimize_default(q, ctx.card.as_ref())
            .unwrap()
            .plan;
        let chosen = eraser.guard(q, &cands, &scores, &native);
        // The first (lowest-score) non-risky candidate should win.
        assert_eq!(chosen, cands[0].plan);
    }

    #[test]
    fn guarded_optimizer_warms_up_then_guards() {
        use crate::framework::LearnedOptimizer;
        let (ctx, queries) = fixture();
        let mut guarded = GuardedOptimizer::new(crate::systems::bao(ctx.clone()));
        assert!(!guarded.is_guarding());
        let executor = Executor::with_defaults(&ctx.catalog);
        for _ in 0..2 {
            for q in &queries {
                let plan = guarded.plan(q).unwrap();
                if let Ok(r) = executor.execute(q, &plan) {
                    guarded.observe(q, &plan, r.work);
                }
            }
            guarded.retrain();
        }
        assert!(guarded.is_guarding());
        // Guarded plans remain valid and executable.
        for q in &queries {
            let plan = guarded.plan(q).unwrap();
            assert_eq!(plan.tables(), q.all_tables());
            assert!(executor.execute(q, &plan).is_ok());
        }
    }

    #[test]
    fn cluster_reliability_reflects_good_predictions() {
        let (ctx, queries) = fixture();
        let (samples, predicted) = history(&ctx, &queries);
        let eraser = Eraser::fit(&ctx, &samples, &predicted, 4);
        // Predictions were within 1.2x, so every cluster is reliable.
        for s in &samples {
            assert!(eraser.cluster_reliability(&s.query, &s.plan) <= eraser.error_threshold);
        }
    }
}
