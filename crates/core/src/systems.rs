//! Assembled end-to-end systems: each constructor instantiates the paper's
//! unified framework with the exploration strategy and risk model of one
//! published system.

use crate::explorers::{BaoExplorer, LeadingHintExplorer, LeroExplorer, UnionExplorer};
use crate::framework::{ExploreSelectOptimizer, OptContext};
use crate::neo::{Bootstrap, SearchStrategy, ValueSearchOptimizer};
use crate::risk::{CalibratedPairwiseRisk, EnsembleRisk, PairwiseTcnnRisk, PointwiseTcnnRisk};

/// Bao \[37\]: hint-set steering + pointwise TCNN reward model.
pub fn bao(ctx: OptContext) -> ExploreSelectOptimizer {
    let risk = PointwiseTcnnRisk::new(ctx.clone());
    ExploreSelectOptimizer::new(
        "Bao",
        ctx,
        Box::new(BaoExplorer::standard()),
        Box::new(risk),
    )
}

/// Lero \[79\]: cardinality-scaling exploration + pairwise comparator.
pub fn lero(ctx: OptContext) -> ExploreSelectOptimizer {
    let risk = PairwiseTcnnRisk::new(ctx.clone());
    ExploreSelectOptimizer::new(
        "Lero",
        ctx,
        Box::new(LeroExplorer::standard()),
        Box::new(risk),
    )
}

/// HyperQO \[72\]: leading-hint exploration + multi-head ensemble with
/// variance filtering.
pub fn hyper_qo(ctx: OptContext) -> ExploreSelectOptimizer {
    let risk = EnsembleRisk::new(ctx.clone());
    ExploreSelectOptimizer::new(
        "HyperQO",
        ctx,
        Box::new(LeadingHintExplorer::standard()),
        Box::new(risk),
    )
}

/// LEON \[4\]: a wide DP-derived candidate pool + cost-calibrated pairwise
/// comparison.
pub fn leon(ctx: OptContext) -> ExploreSelectOptimizer {
    let risk = CalibratedPairwiseRisk::new(ctx.clone());
    let explorer = UnionExplorer::new(vec![
        Box::new(BaoExplorer::standard()),
        Box::new(LeroExplorer::with_factors(vec![0.5, 2.0])),
    ]);
    ExploreSelectOptimizer::new("LEON", ctx, Box::new(explorer), Box::new(risk))
}

/// Neo \[38\]: best-first value search bootstrapped from the native expert.
pub fn neo(ctx: OptContext) -> ValueSearchOptimizer {
    ValueSearchOptimizer::new(
        "Neo",
        ctx,
        SearchStrategy::BestFirst { budget: 128 },
        Bootstrap::Expert,
        0xEE01,
    )
}

/// Balsa \[69\]: beam value search learned from scratch (random bootstrap).
pub fn balsa(ctx: OptContext) -> ValueSearchOptimizer {
    ValueSearchOptimizer::new(
        "Balsa",
        ctx,
        SearchStrategy::Beam { width: 8 },
        Bootstrap::Random,
        0xBA15A,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::test_support::fixture;
    use crate::framework::LearnedOptimizer;

    #[test]
    fn all_systems_produce_valid_plans_untrained() {
        let (ctx, queries) = fixture();
        let mut systems: Vec<Box<dyn LearnedOptimizer>> = vec![
            Box::new(bao(ctx.clone())),
            Box::new(lero(ctx.clone())),
            Box::new(hyper_qo(ctx.clone())),
            Box::new(leon(ctx.clone())),
            Box::new(neo(ctx.clone())),
            Box::new(balsa(ctx.clone())),
        ];
        for sys in &mut systems {
            for q in &queries {
                let plan = sys.plan(q).unwrap();
                assert_eq!(plan.tables(), q.all_tables(), "{}", sys.name());
            }
        }
    }

    #[test]
    fn system_names_match_the_paper() {
        let (ctx, _) = fixture();
        assert_eq!(bao(ctx.clone()).name(), "Bao");
        assert_eq!(lero(ctx.clone()).name(), "Lero");
        assert_eq!(hyper_qo(ctx.clone()).name(), "HyperQO");
        assert_eq!(leon(ctx.clone()).name(), "LEON");
        assert_eq!(LearnedOptimizer::name(&neo(ctx.clone())), "Neo");
        assert_eq!(LearnedOptimizer::name(&balsa(ctx)), "Balsa");
    }
}
