//! Training/evaluation loop shared by experiments E4 and E5: run a
//! learned optimizer over a workload for several epochs, executing its
//! plans with a timeout budget, feeding back measured work, and comparing
//! against the native baseline per epoch.

use std::sync::Arc;

use lqo_engine::{EngineError, ExecConfig, ExecMode, Executor, PhysNode, Result, SpjQuery};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::trace::QueryOutcome;
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;
use lqo_watch::ModelHealthMonitor;
use serde::Serialize;

use crate::framework::{LearnedOptimizer, OptContext};

/// The native cost-based optimizer behind the [`LearnedOptimizer`]
/// interface, as the no-learning baseline.
pub struct NativeBaseline {
    ctx: OptContext,
}

impl NativeBaseline {
    /// Wrap a context.
    pub fn new(ctx: OptContext) -> NativeBaseline {
        NativeBaseline { ctx }
    }
}

impl LearnedOptimizer for NativeBaseline {
    fn name(&self) -> &str {
        "Native"
    }
    fn plan(&mut self, query: &SpjQuery) -> Result<PhysNode> {
        Ok(self
            .ctx
            .optimizer()
            .optimize_default(query, self.ctx.card.as_ref())?
            .plan)
    }
    fn observe(&mut self, _q: &SpjQuery, _p: &PhysNode, _w: f64) {}
    fn retrain(&mut self) {}
}

/// Per-epoch statistics of one optimizer over the workload.
#[derive(Debug, Clone, Serialize)]
pub struct EpochStats {
    /// Total work units over the workload.
    pub total_work: f64,
    /// Per-query work units (workload order).
    pub per_query: Vec<f64>,
    /// Queries slower than the native baseline by > 10%.
    pub regressions: usize,
    /// Worst per-query slowdown vs native (1.0 = never slower).
    pub max_regression: f64,
    /// Queries that hit the timeout budget.
    pub timeouts: usize,
}

/// The training loop.
pub struct TrainingLoop {
    ctx: OptContext,
    /// Timeout budget as a multiple of the native plan's work.
    pub timeout_factor: f64,
    native_work: Vec<f64>,
    native_plans: Vec<PhysNode>,
    queries: Vec<SpjQuery>,
    obs: ObsContext,
    prof: ProfContext,
    flight: FlightContext,
    watch: Option<Arc<ModelHealthMonitor>>,
    exec_mode: ExecMode,
}

impl TrainingLoop {
    /// Prepare the loop: executes the native plan of every query once to
    /// establish the baseline works. The plans are kept — they are the
    /// fallback when a learned optimizer panics or errors mid-epoch.
    pub fn new(ctx: OptContext, queries: Vec<SpjQuery>) -> Result<TrainingLoop> {
        let executor = Executor::with_defaults(&ctx.catalog);
        let mut native_work = Vec::with_capacity(queries.len());
        let mut native_plans = Vec::with_capacity(queries.len());
        for q in &queries {
            let plan = ctx.optimizer().optimize_default(q, ctx.card.as_ref())?.plan;
            native_work.push(executor.execute(q, &plan)?.work);
            native_plans.push(plan);
        }
        Ok(TrainingLoop {
            ctx,
            timeout_factor: 20.0,
            native_work,
            native_plans,
            queries,
            obs: ObsContext::disabled(),
            prof: ProfContext::disabled(),
            flight: FlightContext::disabled(),
            watch: None,
            exec_mode: ExecMode::Serial,
        })
    }

    /// Execute epochs in the given mode (serial by default). The
    /// parallel and batched executors are verified byte-identical to
    /// serial by the differential harness, so work-unit feedback — the
    /// training signal — is exactly the same in every mode; only
    /// wall-clock time changes.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> TrainingLoop {
        self.exec_mode = mode;
        self
    }

    /// Attach an observability context: every executed query in every
    /// epoch becomes one trace, attributed to the optimizer under
    /// training, and epoch metrics land in the registry.
    pub fn with_obs(mut self, obs: ObsContext) -> TrainingLoop {
        self.obs = obs;
        self
    }

    /// Attach a profiling context: every executed query in every epoch
    /// becomes one query profile (plan/execute phase timings down to
    /// per-operator attribution plus work-unit charges), so learned-
    /// optimizer planning overhead is separable from execution cost
    /// across training epochs.
    pub fn with_prof(mut self, prof: ProfContext) -> TrainingLoop {
        self.prof = prof;
        self
    }

    /// Attach a flight recorder: every executed query in every epoch
    /// becomes one flight-query window, contained planning failures are
    /// published as guard events, and any severity trigger snapshots an
    /// incident bundle finalized with the query's trace and profile.
    pub fn with_flight(mut self, flight: FlightContext) -> TrainingLoop {
        self.flight = flight;
        self
    }

    /// Attach a model-health monitor: every finished trace is ingested
    /// together with its query's native-baseline work, so the monitor
    /// sees estimate accuracy, calibration, SLO latencies, and per-query
    /// regressions with ranked blame. Requires an enabled obs context.
    pub fn with_watch(mut self, watch: Arc<ModelHealthMonitor>) -> TrainingLoop {
        self.watch = Some(watch);
        self
    }

    /// Memoize cardinality lookups across epochs through a shared cache.
    /// Transparent to training: cached estimates are bit-identical, so
    /// every epoch plans exactly as it would uncached — repeated epochs
    /// over the same workload just stop re-running the estimator.
    pub fn with_cache(mut self, cache: Arc<lqo_cache::LqoCache>) -> TrainingLoop {
        self.ctx = self.ctx.with_cache(cache);
        self
    }

    /// Native baseline work per query.
    pub fn native_work(&self) -> &[f64] {
        &self.native_work
    }

    /// The workload.
    pub fn queries(&self) -> &[SpjQuery] {
        &self.queries
    }

    /// Run one epoch: plan, execute (with timeout), observe; returns the
    /// epoch's statistics. `learn` controls whether feedback flows (off
    /// for pure evaluation epochs).
    pub fn run_epoch(&self, opt: &mut dyn LearnedOptimizer, learn: bool) -> EpochStats {
        let mut per_query = Vec::with_capacity(self.queries.len());
        let mut regressions = 0;
        let mut max_regression = 1.0f64;
        let mut timeouts = 0;
        for (i, q) in self.queries.iter().enumerate() {
            let budget = self.native_work[i] * self.timeout_factor;
            let executor = Executor::new(
                &self.ctx.catalog,
                ExecConfig {
                    max_work: Some(budget),
                    mode: self.exec_mode,
                    ..Default::default()
                },
            )
            .with_obs(self.obs.clone())
            .with_prof(self.prof.clone())
            .with_flight(self.flight.clone());
            if self.obs.is_enabled() {
                self.obs.begin_query(&q.to_string());
                let name = opt.name().to_string();
                self.obs.with_query(|t| t.driver = Some(name));
            }
            if self.prof.is_enabled() {
                self.prof.begin_query(&q.to_string());
            }
            if self.flight.is_enabled() {
                self.flight.begin_query(&q.to_string());
            }
            // A learned optimizer that panics or errors while planning
            // must not take the epoch down with it: contain the failure,
            // note it on the trace, and run the stored native plan.
            let planned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _prof_plan = self.prof.phase("plan");
                self.obs.phase("plan", || opt.plan(q))
            }));
            let (plan, fell_back) = match planned {
                Ok(Ok(plan)) => (plan, false),
                Ok(Err(e)) => {
                    self.record_plan_fallback(e.to_string());
                    (self.native_plans[i].clone(), true)
                }
                Err(_) => {
                    self.record_plan_fallback("panic".to_string());
                    (self.native_plans[i].clone(), true)
                }
            };
            let work = match self.obs.phase("execute", || executor.execute(q, &plan)) {
                Ok(r) => {
                    // No feedback on fallback: the native plan was not the
                    // optimizer's choice, so it must not train on it.
                    if learn && !fell_back {
                        opt.observe(q, &plan, r.work);
                    }
                    if self.obs.is_enabled() {
                        let outcome = QueryOutcome {
                            count: r.count,
                            work: r.work,
                            wall_ns: r.wall.as_nanos() as u64,
                        };
                        self.obs.with_query(|t| t.outcome = Some(outcome));
                    }
                    r.work
                }
                Err(EngineError::WorkLimitExceeded { .. }) => {
                    timeouts += 1;
                    if learn && !fell_back {
                        // Timeout feedback: the budget itself, as Bao
                        // and Balsa do with their timeout handling.
                        opt.observe(q, &plan, budget);
                    }
                    budget
                }
                Err(_) => budget,
            };
            self.obs.with_query(|t| t.join_estimates());
            let trace = self.obs.end_query();
            if let (Some(watch), Some(trace)) = (&self.watch, &trace) {
                watch.ingest_trace(trace, Some(self.native_work[i]));
            }
            let profile = self.prof.end_query();
            if self.flight.is_enabled() {
                let folded = profile.as_ref().map(|p| p.profile.to_folded());
                self.flight.end_query(trace.as_ref(), folded);
            }
            let ratio = work / self.native_work[i];
            if ratio > 1.1 {
                regressions += 1;
            }
            max_regression = max_regression.max(ratio);
            per_query.push(work);
        }
        if learn {
            opt.retrain();
        }
        let stats = EpochStats {
            total_work: per_query.iter().sum(),
            per_query,
            regressions,
            max_regression,
            timeouts,
        };
        if self.obs.is_enabled() {
            self.obs.count("lqo.train.epochs", 1);
            self.obs.count("lqo.train.timeouts", stats.timeouts as u64);
            self.obs
                .count("lqo.train.regressions", stats.regressions as u64);
            self.obs.observe("lqo.train.epoch_work", stats.total_work);
        }
        stats
    }

    /// Note a contained planning failure: metric + trace guard event.
    fn record_plan_fallback(&self, fault: String) {
        self.obs.count("lqo.guard.fallbacks", 1);
        self.obs.count("lqo.guard.train_plan_failures", 1);
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Train,
                FlightEvent::Guard {
                    component: "train:optimizer".to_string(),
                    fault: fault.clone(),
                    action: "fallback:native-plan".to_string(),
                },
            );
        }
        self.obs.with_query(|t| {
            t.push_guard(lqo_obs::trace::GuardEvent {
                component: "train:optimizer".to_string(),
                fault,
                action: "fallback:native-plan".to_string(),
            });
        });
    }

    /// Run `epochs` learning epochs, returning per-epoch statistics.
    pub fn run(&self, opt: &mut dyn LearnedOptimizer, epochs: usize) -> Vec<EpochStats> {
        (0..epochs).map(|_| self.run_epoch(opt, true)).collect()
    }

    /// Total native work (the baseline every epoch is compared to).
    pub fn native_total(&self) -> f64 {
        self.native_work.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::test_support::fixture;
    use crate::systems::bao;

    #[test]
    fn native_baseline_matches_loop_baseline() {
        let (ctx, queries) = fixture();
        let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
        let mut native = NativeBaseline::new(ctx);
        let stats = training.run_epoch(&mut native, false);
        assert_eq!(stats.regressions, 0);
        assert!((stats.total_work - training.native_total()).abs() < 1e-9);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn panicking_optimizer_falls_back_to_native_plans() {
        struct Hostile {
            calls: usize,
        }
        impl LearnedOptimizer for Hostile {
            fn name(&self) -> &str {
                "hostile"
            }
            fn plan(&mut self, _q: &SpjQuery) -> Result<PhysNode> {
                self.calls += 1;
                if self.calls.is_multiple_of(2) {
                    panic!("injected optimizer panic");
                }
                Err(EngineError::NoPlanFound("injected planning error".into()))
            }
            fn observe(&mut self, _q: &SpjQuery, _p: &PhysNode, _w: f64) {
                panic!("fallback executions must not be fed back");
            }
            fn retrain(&mut self) {}
        }
        let (ctx, queries) = fixture();
        let n = queries.len();
        let obs = ObsContext::enabled();
        let training = TrainingLoop::new(ctx, queries)
            .unwrap()
            .with_obs(obs.clone());
        let mut hostile = Hostile { calls: 0 };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let stats = training.run_epoch(&mut hostile, true);
        std::panic::set_hook(prev);
        // Every query fell back to its native plan: work matches native
        // exactly and nothing regressed or timed out.
        assert_eq!(stats.regressions, 0);
        assert_eq!(stats.timeouts, 0);
        assert!((stats.total_work - training.native_total()).abs() < 1e-9);
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.guard.fallbacks"), Some(n as u64));
        assert_eq!(
            snap.counter("lqo.guard.train_plan_failures"),
            Some(n as u64)
        );
    }

    #[test]
    fn watch_monitor_ingests_training_traces() {
        use lqo_watch::WatchConfig;

        let (ctx, queries) = fixture();
        let obs = ObsContext::enabled();
        // The planner records card lookups through the context's obs, so
        // the traces carry estimate/truth pairs for the monitor.
        let ctx = ctx.with_obs(obs.clone());
        let watch = Arc::new(ModelHealthMonitor::new(WatchConfig::default()));
        let training = TrainingLoop::new(ctx.clone(), queries)
            .unwrap()
            .with_obs(obs)
            .with_watch(watch.clone());
        let mut native = NativeBaseline::new(ctx);
        training.run_epoch(&mut native, false);
        let report = watch.report();
        // Operator estimate/truth pairs flowed into per-component sketches
        // and the SLO tracker saw every query's latencies.
        assert!(!report.components.is_empty());
        let total_obs: u64 = report.components.iter().map(|c| c.observations).sum();
        assert!(total_obs > 0);
        assert_eq!(report.slo.exec.count, training.queries().len() as u64);
        // The native baseline run cannot regress against itself.
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn parallel_epoch_matches_serial_epoch_bit_for_bit() {
        let (ctx, queries) = fixture();
        let serial = TrainingLoop::new(ctx.clone(), queries.clone()).unwrap();
        let parallel = TrainingLoop::new(ctx.clone(), queries)
            .unwrap()
            .with_exec_mode(ExecMode::Parallel { threads: 4 });
        let s = serial.run_epoch(&mut NativeBaseline::new(ctx.clone()), false);
        let p = parallel.run_epoch(&mut NativeBaseline::new(ctx), false);
        assert_eq!(s.per_query.len(), p.per_query.len());
        for (a, b) in s.per_query.iter().zip(&p.per_query) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "per-query work must be bit-identical"
            );
        }
        assert_eq!(s.timeouts, p.timeouts);
    }

    #[test]
    fn batched_epoch_matches_serial_epoch_bit_for_bit() {
        let (ctx, queries) = fixture();
        let serial = TrainingLoop::new(ctx.clone(), queries.clone()).unwrap();
        let s = serial.run_epoch(&mut NativeBaseline::new(ctx.clone()), false);
        let modes = [
            ExecMode::Batched { batch_size: 64 },
            ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 64,
            },
        ];
        for mode in modes {
            let batched = TrainingLoop::new(ctx.clone(), serial.queries().to_vec())
                .unwrap()
                .with_exec_mode(mode);
            let b = batched.run_epoch(&mut NativeBaseline::new(ctx.clone()), false);
            assert_eq!(s.per_query.len(), b.per_query.len(), "{mode}");
            for (a, x) in s.per_query.iter().zip(&b.per_query) {
                assert_eq!(
                    a.to_bits(),
                    x.to_bits(),
                    "per-query work must be bit-identical under {mode}"
                );
            }
            assert_eq!(s.timeouts, b.timeouts, "{mode}");
        }
    }

    #[test]
    fn profiler_separates_planning_from_execution() {
        let (ctx, queries) = fixture();
        let n = queries.len();
        let prof = ProfContext::enabled();
        let training = TrainingLoop::new(ctx.clone(), queries)
            .unwrap()
            .with_prof(prof.clone());
        let mut native = NativeBaseline::new(ctx);
        training.run_epoch(&mut native, false);
        // One profile per executed query; planning and execution are
        // separate top-level phases, and all work-unit charges sit under
        // the execution subtree.
        assert_eq!(prof.take_finished().len(), n);
        let total = prof.total();
        assert_eq!(total.frames["plan"].calls, n as u64);
        assert_eq!(total.frames["execute"].calls, n as u64);
        let plan_units: f64 = total
            .frames
            .iter()
            .filter(|(p, _)| p.starts_with("plan"))
            .map(|(_, s)| s.units)
            .sum();
        let exec_units: f64 = total
            .frames
            .iter()
            .filter(|(p, _)| p.starts_with("execute"))
            .map(|(_, s)| s.units)
            .sum();
        assert_eq!(plan_units, 0.0, "native planning charges no work units");
        assert!(exec_units > 0.0, "execution charges its work meter");
    }

    #[test]
    fn bao_improves_or_holds_over_epochs() {
        let (ctx, queries) = fixture();
        let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
        let mut opt = bao(ctx);
        let stats = training.run(&mut opt, 3);
        assert_eq!(stats.len(), 3);
        // After training, total work should be at worst mildly above
        // native (Bao's candidate set always contains the native plan).
        let last = stats.last().unwrap();
        assert!(
            last.total_work <= training.native_total() * 3.0,
            "bao total {} vs native {}",
            last.total_work,
            training.native_total()
        );
    }
}
