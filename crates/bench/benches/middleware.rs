//! Middleware overhead: direct execution vs the PilotScope console with
//! and without drivers — the latency column of experiment E8.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use learned_qo::framework::OptContext;
use lqo_bench::fixture;
use lqo_card::estimator::FitContext;
use lqo_card::traditional::SamplingEstimator;
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{Executor, Optimizer, TraditionalCardSource};
use lqo_pilot::{CardDriver, EngineInteractor, PilotConsole};

fn bench_middleware(c: &mut Criterion) {
    let (catalog, queries) = fixture(150);
    let q = queries
        .iter()
        .find(|q| q.num_tables() == 2)
        .cloned()
        .unwrap_or_else(|| queries[0].clone());
    let sql = q.to_string();

    // Direct: optimizer + executor.
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card = TraditionalCardSource::new(catalog.clone(), stats.clone());
    c.bench_function("middleware/direct", |b| {
        let optimizer = Optimizer::with_defaults(&catalog);
        let executor = Executor::with_defaults(&catalog);
        b.iter(|| {
            let plan = optimizer.optimize_default(&q, &card).unwrap().plan;
            executor.execute(&q, &plan).unwrap().count
        })
    });

    // Console, no driver (pure middleware: parse + session + push/pull).
    c.bench_function("middleware/console_plain", |b| {
        let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
        let mut console = PilotConsole::new(interactor);
        b.iter(|| console.execute_sql(&sql).unwrap().count)
    });

    // Console with the cardinality driver (batch injection per query).
    c.bench_function("middleware/console_card_driver", |b| {
        let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
        let mut console = PilotConsole::new(interactor);
        let ctx = OptContext::new(catalog.clone());
        let fit = FitContext {
            catalog: ctx.catalog.clone(),
            stats: ctx.stats.clone(),
        };
        let est = Arc::new(SamplingEstimator::fit(&fit));
        console
            .register_driver(Box::new(CardDriver::new(est)))
            .unwrap();
        console.start_driver(Some("learned-cardinality")).unwrap();
        b.iter(|| console.execute_sql(&sql).unwrap().count)
    });
}

criterion_group!(benches, bench_middleware);
criterion_main!(benches);
