//! Planning time: exhaustive DP vs greedy across join sizes, learned
//! optimizer candidate generation, and join-order search methods — the
//! plan-ms columns of experiments E4 and E6.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use learned_qo::explorers::{BaoExplorer, LeroExplorer};
use learned_qo::framework::{OptContext, PlanExplorer};
use lqo_bench::fixture;
use lqo_bench_suite::{generate_workload, WorkloadConfig};
use lqo_engine::optimizer::CardSource;
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{HintSet, Optimizer, TraditionalCardSource};
use lqo_join::{EddyRl, JoinEnv, JoinOrderSearch, SkinnerMcts};

fn bench_planning(c: &mut Criterion) {
    let (catalog, _) = fixture(200);
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let optimizer = Optimizer::with_defaults(&catalog);

    let mut group = c.benchmark_group("planning/dp_by_join_size");
    for n in [3usize, 5, 7] {
        let queries = generate_workload(
            &catalog,
            &WorkloadConfig {
                num_queries: 3,
                min_tables: n,
                max_tables: n,
                seed: n as u64,
                ..Default::default()
            },
        );
        if queries.is_empty() {
            continue;
        }
        let q = queries[0].clone();
        group.bench_function(format!("dp/{n}_tables"), |b| {
            b.iter(|| {
                optimizer
                    .optimize(&q, card.as_ref(), &HintSet::default())
                    .unwrap()
                    .cost
            })
        });
        group.bench_function(format!("greedy/{n}_tables"), |b| {
            b.iter(|| {
                optimizer
                    .greedy(&q, card.as_ref(), &HintSet::default())
                    .unwrap()
                    .cost
            })
        });
    }
    group.finish();

    // Learned-optimizer candidate generation (the exploration half of the
    // unified framework).
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 3,
            min_tables: 4,
            max_tables: 4,
            seed: 77,
            ..Default::default()
        },
    );
    let q = queries[0].clone();
    c.bench_function("planning/bao_candidates", |b| {
        let explorer = BaoExplorer::standard();
        b.iter(|| explorer.explore(&ctx, &q).unwrap().len())
    });
    c.bench_function("planning/lero_candidates", |b| {
        let explorer = LeroExplorer::standard();
        b.iter(|| explorer.explore(&ctx, &q).unwrap().len())
    });

    // Online join-order search per query.
    let env = JoinEnv::new(catalog.clone(), card);
    c.bench_function("planning/eddy_rl", |b| {
        let mut eddy = EddyRl::new(30);
        b.iter(|| eddy.find_plan(&env, &q).unwrap().num_joins())
    });
    c.bench_function("planning/skinner_mcts", |b| {
        let mut skinner = SkinnerMcts::new(100);
        b.iter(|| skinner.find_plan(&env, &q).unwrap().num_joins())
    });
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
