//! Executor throughput: scans and the three join operators on the
//! STATS-like schema (substrate sanity for every experiment's work
//! numbers).

use criterion::{criterion_group, criterion_main, Criterion};

use lqo_bench::fixture;
use lqo_engine::query::parse_query;
use lqo_engine::{Executor, JoinAlgo, PhysNode};

fn bench_executor(c: &mut Criterion) {
    let (catalog, _) = fixture(300);
    let executor = Executor::with_defaults(&catalog);

    let scan_q = parse_query("SELECT COUNT(*) FROM comments c WHERE c.score > 5").unwrap();
    c.bench_function("executor/filtered_scan", |b| {
        b.iter(|| executor.execute(&scan_q, &PhysNode::scan(0)).unwrap().count)
    });

    let join_q = parse_query(
        "SELECT COUNT(*) FROM users u, posts p \
         WHERE u.id = p.owner_user_id AND u.reputation > 100",
    )
    .unwrap();
    let mut group = c.benchmark_group("executor/join");
    for algo in JoinAlgo::ALL {
        let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
        group.bench_function(format!("{algo}"), |b| {
            b.iter(|| executor.execute(&join_q, &plan).unwrap().count)
        });
    }
    group.finish();

    let three_q = parse_query(
        "SELECT COUNT(*) FROM users u, posts p, comments c \
         WHERE u.id = p.owner_user_id AND p.id = c.post_id AND p.score > 2",
    )
    .unwrap();
    let plan = PhysNode::join(
        JoinAlgo::Hash,
        PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1)),
        PhysNode::scan(2),
    );
    c.bench_function("executor/three_way_hash", |b| {
        b.iter(|| executor.execute(&three_q, &plan).unwrap().count)
    });
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
