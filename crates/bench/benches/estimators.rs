//! Estimator inference latency — the "est-µs" column of experiments
//! T1/E1/E2, isolated per method family.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use lqo_bench::fixture;
use lqo_card::estimator::{label_workload, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::TrueCardOracle;

fn bench_estimators(c: &mut Criterion) {
    let (catalog, queries) = fixture(200);
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog));
    let train = label_workload(&oracle, &queries[..8], 3).unwrap();

    let kinds = [
        EstimatorKind::Histogram,
        EstimatorKind::Sampling,
        EstimatorKind::GbdtQd,
        EstimatorKind::Mscn,
        EstimatorKind::Kde,
        EstimatorKind::Naru,
        EstimatorKind::BayesNet,
        EstimatorKind::DeepDb,
        EstimatorKind::FactorJoin,
    ];
    let eval_q = &queries[8];
    let mut group = c.benchmark_group("estimator/inference");
    for kind in kinds {
        let est = build_estimator(kind, &ctx, &oracle, &train);
        group.bench_function(est.name(), |b| {
            b.iter(|| est.estimate(eval_q, eval_q.all_tables()))
        });
    }
    group.finish();

    // Fit time of one cheap and one expensive family (training-cost axis).
    c.bench_function("estimator/fit/FactorJoin", |b| {
        b.iter(|| build_estimator(EstimatorKind::FactorJoin, &ctx, &oracle, &train))
    });
    c.bench_function("estimator/fit/BayesNet", |b| {
        b.iter(|| build_estimator(EstimatorKind::BayesNet, &ctx, &oracle, &train))
    });
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
