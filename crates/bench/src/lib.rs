//! # lqo-bench
//!
//! Criterion microbenches mirroring the latency-sensitive columns of the
//! experiments (see DESIGN.md §4): executor operator throughput,
//! estimator inference latency, optimizer planning time, and middleware
//! overhead. Shared fixtures live here; the benches are under `benches/`.

#![warn(missing_docs)]

use std::sync::Arc;

use lqo_bench_suite::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::stats_like;
use lqo_engine::{Catalog, SpjQuery};

/// A standard medium fixture shared by all benches.
pub fn fixture(scale: usize) -> (Arc<Catalog>, Vec<SpjQuery>) {
    let catalog = Arc::new(stats_like(scale, 0xBE).unwrap());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 12,
            min_tables: 2,
            max_tables: 5,
            seed: 0xBE,
            ..Default::default()
        },
    );
    (catalog, queries)
}
