//! Concurrent-query cost modelling (paper §2.1.2, "Cost Models for
//! Concurrent Queries").
//!
//! The engine executes queries one at a time, so concurrency is
//! *simulated*: [`ConcurrencySimulator`] defines the ground-truth latency
//! of a query inside a batch as its solo work inflated by contention with
//! overlapping queries (shared tables contend for buffers). The
//! GPredictor-style model \[78\] then learns that interaction from features
//! of the batch — without ever seeing the simulator's formula. The
//! substitution is recorded in DESIGN.md.

use lqo_engine::{SpjQuery, TableSet};
use lqo_ml::gbdt::{Gbdt, GbdtConfig};

use crate::model::PlanSample;

/// One query inside a concurrent batch.
#[derive(Clone)]
pub struct BatchMember {
    /// Solo work units of the chosen plan.
    pub solo_work: f64,
    /// Catalog-table footprint (by table-name hash-set, order-free).
    pub tables: Vec<String>,
}

impl BatchMember {
    /// Build from a plan sample.
    pub fn from_sample(sample: &PlanSample) -> BatchMember {
        BatchMember {
            solo_work: sample.work,
            tables: footprint(&sample.query, sample.plan.tables()),
        }
    }
}

fn footprint(query: &SpjQuery, set: TableSet) -> Vec<String> {
    let mut t: Vec<String> = set
        .iter()
        .map(|pos| query.tables[pos].table.clone())
        .collect();
    t.sort();
    t.dedup();
    t
}

fn overlap(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let shared = a.iter().filter(|t| b.contains(t)).count();
    shared as f64 / a.len() as f64
}

/// Ground-truth concurrent latency: solo work inflated by
/// contention-weighted work of the co-runners.
pub struct ConcurrencySimulator {
    /// Contention coefficient.
    pub alpha: f64,
}

impl Default for ConcurrencySimulator {
    fn default() -> Self {
        ConcurrencySimulator { alpha: 0.4 }
    }
}

impl ConcurrencySimulator {
    /// Latency of `member` when run together with `others`.
    pub fn latency(&self, member: &BatchMember, others: &[&BatchMember]) -> f64 {
        let mut contention = 0.0;
        for o in others {
            let ov = overlap(&member.tables, &o.tables);
            // Bigger co-runners touching the same tables hurt more.
            contention += ov * (o.solo_work / (member.solo_work + o.solo_work + 1.0));
        }
        member.solo_work * (1.0 + self.alpha * contention)
    }
}

/// Features of one member within a batch.
fn features(member: &BatchMember, others: &[&BatchMember]) -> Vec<f64> {
    let mut sum_ov = 0.0;
    let mut max_ov = 0.0f64;
    let mut weighted = 0.0;
    for o in others {
        let ov = overlap(&member.tables, &o.tables);
        sum_ov += ov;
        max_ov = max_ov.max(ov);
        weighted += ov * (o.solo_work + 1.0).ln();
    }
    vec![
        (member.solo_work + 1.0).ln() / 25.0,
        others.len() as f64 / 8.0,
        sum_ov / 8.0,
        max_ov,
        weighted / 100.0,
    ]
}

/// GPredictor-style learned concurrent-latency model: graph-structured
/// interaction features + a boosted-tree regressor.
pub struct GPredictorLite {
    model: Gbdt,
}

impl GPredictorLite {
    /// Fit on simulated batches drawn from the samples: every rotation of
    /// a sliding window forms one training batch.
    pub fn fit(
        samples: &[PlanSample],
        sim: &ConcurrencySimulator,
        window: usize,
    ) -> GPredictorLite {
        let members: Vec<BatchMember> = samples.iter().map(BatchMember::from_sample).collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let w = window.max(2);
        for start in 0..members.len() {
            let batch: Vec<&BatchMember> = (0..w)
                .map(|k| &members[(start + k) % members.len()])
                .collect();
            for i in 0..batch.len() {
                let others: Vec<&BatchMember> = batch
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, m)| *m)
                    .collect();
                xs.push(features(batch[i], &others));
                ys.push(sim.latency(batch[i], &others).ln());
            }
        }
        GPredictorLite {
            model: Gbdt::fit(&xs, &ys, &GbdtConfig::default()),
        }
    }

    /// Predicted concurrent latency of `member` among `others`.
    pub fn predict(&self, member: &BatchMember, others: &[&BatchMember]) -> f64 {
        self.model.predict(&features(member, others)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;

    #[test]
    fn contention_inflates_latency() {
        let sim = ConcurrencySimulator::default();
        let a = BatchMember {
            solo_work: 1000.0,
            tables: vec!["t".into(), "u".into()],
        };
        let b = BatchMember {
            solo_work: 2000.0,
            tables: vec!["t".into()],
        };
        let disjoint = BatchMember {
            solo_work: 2000.0,
            tables: vec!["z".into()],
        };
        let solo = sim.latency(&a, &[]);
        assert_eq!(solo, 1000.0);
        assert!(sim.latency(&a, &[&b]) > solo);
        assert_eq!(sim.latency(&a, &[&disjoint]), solo);
    }

    #[test]
    fn gpredictor_learns_interaction() {
        let (_, _, samples) = fixture();
        let sim = ConcurrencySimulator::default();
        let model = GPredictorLite::fit(&samples, &sim, 4);
        // Evaluate on fresh rotations.
        let members: Vec<BatchMember> = samples.iter().map(BatchMember::from_sample).collect();
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for i in 0..members.len() {
            let others: Vec<&BatchMember> = members
                .iter()
                .enumerate()
                .filter(|(j, _)| *j % 5 == (i + 1) % 5 && *j != i)
                .map(|(_, m)| m)
                .take(3)
                .collect();
            pred.push(model.predict(&members[i], &others).ln());
            truth.push(sim.latency(&members[i], &others).ln());
        }
        let rho = lqo_ml::metrics::spearman(&pred, &truth);
        assert!(rho > 0.8, "gpredictor rank correlation {rho}");
    }
}
