//! The cost-model trait, training samples and the execution harvester.

use std::sync::Arc;

use lqo_engine::optimizer::CardSource;
use lqo_engine::{Catalog, ExecConfig, Executor, HintSet, Optimizer, PhysNode, Result, SpjQuery};

/// A model predicting execution cost (work units) of a physical plan.
pub trait CostModel: Send + Sync {
    /// Short method name.
    fn name(&self) -> &'static str;
    /// Predicted work units of executing `plan` for `query`.
    fn predict(&self, query: &SpjQuery, plan: &PhysNode) -> f64;
    /// Scalar parameter count.
    fn model_size(&self) -> usize {
        0
    }
}

/// One training point: a plan that was actually executed.
#[derive(Clone)]
pub struct PlanSample {
    /// The query the plan answers.
    pub query: Arc<SpjQuery>,
    /// The executed physical plan.
    pub plan: PhysNode,
    /// Measured work units (the engine's deterministic latency).
    pub work: f64,
}

/// Execute each query under every hint-set variant and collect the
/// resulting `(plan, measured work)` samples — the way a deployed system
/// harvests cost-model training data from its own traffic.
pub fn harvest_samples(
    catalog: &Arc<Catalog>,
    queries: &[SpjQuery],
    variants: &[HintSet],
    card: &dyn CardSource,
) -> Result<Vec<PlanSample>> {
    let optimizer = Optimizer::with_defaults(catalog);
    let executor = Executor::new(
        catalog,
        ExecConfig {
            max_work: Some(5e9),
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    for q in queries {
        let qa = Arc::new(q.clone());
        let mut seen = std::collections::HashSet::new();
        for hints in variants {
            let Ok(choice) = optimizer.optimize(q, card, hints) else {
                continue;
            };
            if !seen.insert(choice.plan.fingerprint()) {
                continue;
            }
            let Ok(result) = executor.execute(q, &choice.plan) else {
                continue; // plan blew the work budget; skip as a timeout
            };
            out.push(PlanSample {
                query: qa.clone(),
                plan: choice.plan,
                work: result.work,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use lqo_engine::datagen::imdb_like;
    use lqo_engine::query::parse_query;
    use lqo_engine::stats::table_stats::CatalogStats;
    use lqo_engine::TraditionalCardSource;

    /// Small IMDB-like fixture with harvested plan samples.
    pub fn fixture() -> (Arc<Catalog>, Vec<SpjQuery>, Vec<PlanSample>) {
        let catalog = Arc::new(imdb_like(150, 3).unwrap());
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let card = TraditionalCardSource::new(catalog.clone(), stats);
        let queries = vec![
            parse_query(
                "SELECT COUNT(*) FROM title t, cast_info ci \
                 WHERE t.id = ci.movie_id AND t.production_year > 1990",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_companies mc, company c \
                 WHERE t.id = mc.movie_id AND mc.company_id = c.id AND c.country_code < 5",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_keyword mk \
                 WHERE t.id = mk.movie_id AND t.votes > 100",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM person p, cast_info ci \
                 WHERE p.id = ci.person_id AND p.gender = 0 AND ci.role_id < 4",
            )
            .unwrap(),
        ];
        let samples =
            harvest_samples(&catalog, &queries, &HintSet::standard_arms(), &card).unwrap();
        (catalog, queries, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::fixture;

    #[test]
    fn harvest_produces_diverse_executed_plans() {
        let (_, queries, samples) = fixture();
        assert!(
            samples.len() >= 2 * queries.len(),
            "expected multiple plan variants per query, got {}",
            samples.len()
        );
        assert!(samples.iter().all(|s| s.work > 0.0));
        // At least two distinct works per query (hint sets changed plans).
        let q0: Vec<f64> = samples
            .iter()
            .filter(|s| s.query.as_ref() == &queries[0])
            .map(|s| s.work)
            .collect();
        assert!(q0.len() >= 2);
        assert!(q0.iter().any(|&w| (w - q0[0]).abs() > 1e-9));
    }
}
