//! Tree-convolution cost model \[39\]: a TCNN over featurized plan trees
//! regressing measured work units in log space.

use std::sync::Arc;

use lqo_engine::{Catalog, PhysNode, SpjQuery};
use lqo_ml::scaler::log_label;
use lqo_ml::treeconv::{FeatTree, TreeConvConfig, TreeConvNet};

use crate::featurize::PlanFeaturizer;
use crate::model::{CostModel, PlanSample};

/// A fitted tree-convolution cost model.
pub struct TcnnCostModel {
    feat: PlanFeaturizer,
    net: TreeConvNet,
}

impl TcnnCostModel {
    /// Fit on harvested plan samples.
    pub fn fit(catalog: Arc<Catalog>, samples: &[PlanSample], epochs: usize) -> TcnnCostModel {
        let feat = PlanFeaturizer::new(catalog);
        let mut net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 2e-3,
            channels: vec![32, 16],
            head_hidden: vec![32],
            ..TreeConvConfig::new(feat.node_dim())
        });
        let trees: Vec<FeatTree> = samples
            .iter()
            .map(|s| feat.tree(&s.query, &s.plan))
            .collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|s| log_label::encode(s.work) / 25.0)
            .collect();
        let refs: Vec<&FeatTree> = trees.iter().collect();
        for _ in 0..epochs {
            for (chunk_t, chunk_y) in refs.chunks(16).zip(ys.chunks(16)) {
                net.train_batch(chunk_t, chunk_y);
            }
        }
        TcnnCostModel { feat, net }
    }
}

impl CostModel for TcnnCostModel {
    fn name(&self) -> &'static str {
        "TCNN"
    }
    fn predict(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let tree = self.feat.tree(query, plan);
        log_label::decode(self.net.predict(&tree) * 25.0).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.net.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;
    use lqo_ml::metrics::spearman;

    #[test]
    fn tcnn_learns_plan_cost_ranking() {
        let (catalog, _, samples) = fixture();
        let model = TcnnCostModel::fit(catalog, &samples, 150);
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| model.predict(&s.query, &s.plan).ln())
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.work.ln()).collect();
        let rho = spearman(&pred, &truth);
        assert!(rho > 0.8, "tcnn rank correlation {rho}");
        assert!(model.model_size() > 1000);
    }
}
