//! Plan featurization: physical plans as featurized trees (for tree
//! convolution / TreeRNN) and as flat vectors (for the auto-encoder).

use std::sync::Arc;

use lqo_engine::optimizer::CardSource;
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{Catalog, JoinAlgo, PhysNode, SpjQuery, TraditionalCardSource};
use lqo_ml::treeconv::FeatTree;

/// Featurizes plans against a fixed catalog. Node features are
/// `[scan, hash, nl, merge | table one-hot | log-est-rows | #preds]`,
/// with estimated rows supplied by the engine's traditional estimator —
/// matching the original TCNN cost model, which consumes optimizer
/// estimates rather than true cardinalities.
pub struct PlanFeaturizer {
    catalog: Arc<Catalog>,
    card: TraditionalCardSource,
    num_tables: usize,
}

impl PlanFeaturizer {
    /// Build over a catalog (statistics are collected internally).
    pub fn new(catalog: Arc<Catalog>) -> PlanFeaturizer {
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let num_tables = catalog.tables().len();
        PlanFeaturizer {
            card: TraditionalCardSource::new(catalog.clone(), stats),
            catalog,
            num_tables,
        }
    }

    /// Per-node feature dimension.
    pub fn node_dim(&self) -> usize {
        4 + self.num_tables + 2
    }

    fn node_features(&self, query: &SpjQuery, node: &PhysNode) -> Vec<f64> {
        let mut f = vec![0.0; self.node_dim()];
        match node {
            PhysNode::Scan { pos } => {
                f[0] = 1.0;
                if let Some(ti) = self
                    .catalog
                    .tables()
                    .iter()
                    .position(|t| t.name() == query.tables[*pos].table)
                {
                    f[4 + ti] = 1.0;
                }
                f[4 + self.num_tables + 1] = query.predicates_on(*pos).len() as f64 / 4.0;
            }
            PhysNode::Join { algo, .. } => {
                f[1 + algo.index()] = 1.0;
            }
        }
        let est = self.card.cardinality(query, node.tables());
        f[4 + self.num_tables] = (est + 1.0).ln() / 25.0;
        f
    }

    /// Convert a plan to a featurized tree (children-first node order).
    pub fn tree(&self, query: &SpjQuery, plan: &PhysNode) -> FeatTree {
        let mut tree = FeatTree::new();
        self.build(query, plan, &mut tree);
        tree
    }

    fn build(&self, query: &SpjQuery, node: &PhysNode, tree: &mut FeatTree) -> usize {
        match node {
            PhysNode::Scan { .. } => tree.leaf(self.node_features(query, node)),
            PhysNode::Join { left, right, .. } => {
                let l = self.build(query, left, tree);
                let r = self.build(query, right, tree);
                tree.internal(self.node_features(query, node), l, r)
            }
        }
    }

    /// Flat plan vector for the auto-encoder: operator counts, per-table
    /// usage, depth, and log-estimated output sizes of the root and the
    /// largest intermediate.
    pub fn flat(&self, query: &SpjQuery, plan: &PhysNode) -> Vec<f64> {
        let mut counts = [0.0f64; 4];
        let mut tables = vec![0.0; self.num_tables];
        let mut max_est: f64 = 0.0;
        plan.visit_bottom_up(&mut |n| {
            match n {
                PhysNode::Scan { pos } => {
                    counts[0] += 1.0;
                    if let Some(ti) = self
                        .catalog
                        .tables()
                        .iter()
                        .position(|t| t.name() == query.tables[*pos].table)
                    {
                        tables[ti] += 1.0;
                    }
                }
                PhysNode::Join { algo, .. } => match algo {
                    JoinAlgo::Hash => counts[1] += 1.0,
                    JoinAlgo::NestedLoop => counts[2] += 1.0,
                    JoinAlgo::Merge => counts[3] += 1.0,
                },
            }
            max_est = max_est.max(self.card.cardinality(query, n.tables()));
        });
        let root_est = self.card.cardinality(query, plan.tables());
        let mut out = counts.to_vec();
        out.extend(tables);
        out.push(plan.join_tree().height() as f64 / 8.0);
        out.push((root_est + 1.0).ln() / 25.0);
        out.push((max_est + 1.0).ln() / 25.0);
        out
    }

    /// Dimension of [`PlanFeaturizer::flat`].
    pub fn flat_dim(&self) -> usize {
        4 + self.num_tables + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;

    #[test]
    fn tree_shape_matches_plan() {
        let (catalog, _, samples) = fixture();
        let f = PlanFeaturizer::new(catalog);
        for s in &samples {
            let tree = f.tree(&s.query, &s.plan);
            assert_eq!(tree.len(), 2 * s.query.num_tables() - 1);
            assert!(tree.nodes.iter().all(|n| n.feat.len() == f.node_dim()));
        }
    }

    #[test]
    fn flat_features_fixed_dim() {
        let (catalog, _, samples) = fixture();
        let f = PlanFeaturizer::new(catalog);
        for s in &samples {
            let x = f.flat(&s.query, &s.plan);
            assert_eq!(x.len(), f.flat_dim());
            assert!(x.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn different_algos_get_different_features() {
        let (catalog, queries, _) = fixture();
        let f = PlanFeaturizer::new(catalog);
        let q = &queries[0];
        let hash = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let merge = PhysNode::join(JoinAlgo::Merge, PhysNode::scan(0), PhysNode::scan(1));
        let th = f.tree(q, &hash);
        let tm = f.tree(q, &merge);
        assert_ne!(th.nodes.last().unwrap().feat, tm.nodes.last().unwrap().feat);
    }
}
