//! # lqo-cost
//!
//! Cost models (paper §2.1.2): the native analytical model and three
//! learned families —
//!
//! * [`TcnnCostModel`] — tree-convolution plan cost (Marcus &
//!   Papaemmanouil 2019, \[39\]);
//! * [`TreeRnnCostModel`] — recursive plan-embedding cost (Sun & Li 2019's
//!   Tree-LSTM estimator, with the gating simplified to a TreeRNN, \[51\]);
//! * [`SaturnEmbedder`] — plan auto-encoder embeddings reused for
//!   downstream cost prediction via nearest neighbours (Saturn, \[34\]);
//!
//! plus [`concurrent`]: a workload-interaction simulator and a
//! GPredictor-style concurrent-latency model \[78\].
//!
//! All learned models train on [`PlanSample`]s: `(query, plan, measured
//! work units)` triples harvested from real executions — including the
//! executor's runtime effects (hash spills, cache discounts) that the
//! native analytical model deliberately ignores, which is exactly the
//! signal a learned cost model can capture (experiment E7).

#![warn(missing_docs)]

pub mod concurrent;
pub mod featurize;
pub mod model;
pub mod native;
pub mod recursive;
pub mod saturn;
pub mod treeconv_cost;

pub use featurize::PlanFeaturizer;
pub use model::{harvest_samples, CostModel, PlanSample};
pub use native::NativeCostModel;
pub use recursive::TreeRnnCostModel;
pub use saturn::SaturnEmbedder;
pub use treeconv_cost::TcnnCostModel;
