//! Recursive plan-embedding cost model — the Tree-LSTM end-to-end cost
//! estimator of Sun & Li \[51\], with the LSTM cell simplified to a TreeRNN
//! (substitution recorded in DESIGN.md).

use std::sync::Arc;

use lqo_engine::{Catalog, PhysNode, SpjQuery};
use lqo_ml::scaler::log_label;
use lqo_ml::treeconv::FeatTree;
use lqo_ml::treernn::{TreeRnn, TreeRnnConfig};

use crate::featurize::PlanFeaturizer;
use crate::model::{CostModel, PlanSample};

/// A fitted recursive plan-embedding cost model.
pub struct TreeRnnCostModel {
    feat: PlanFeaturizer,
    net: TreeRnn,
}

impl TreeRnnCostModel {
    /// Fit on harvested plan samples.
    pub fn fit(catalog: Arc<Catalog>, samples: &[PlanSample], epochs: usize) -> TreeRnnCostModel {
        let feat = PlanFeaturizer::new(catalog);
        let mut net = TreeRnn::new(TreeRnnConfig {
            learning_rate: 3e-3,
            hidden: 24,
            ..TreeRnnConfig::new(feat.node_dim())
        });
        let trees: Vec<FeatTree> = samples
            .iter()
            .map(|s| feat.tree(&s.query, &s.plan))
            .collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|s| log_label::encode(s.work) / 25.0)
            .collect();
        let refs: Vec<&FeatTree> = trees.iter().collect();
        for _ in 0..epochs {
            for (chunk_t, chunk_y) in refs.chunks(16).zip(ys.chunks(16)) {
                net.train_batch(chunk_t, chunk_y);
            }
        }
        TreeRnnCostModel { feat, net }
    }

    /// Root embedding of a plan (downstream tasks: clustering, Eraser).
    pub fn embed(&self, query: &SpjQuery, plan: &PhysNode) -> Vec<f64> {
        self.net.embed(&self.feat.tree(query, plan))
    }
}

impl CostModel for TreeRnnCostModel {
    fn name(&self) -> &'static str {
        "TreeRNN"
    }
    fn predict(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let tree = self.feat.tree(query, plan);
        log_label::decode(self.net.predict(&tree) * 25.0).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.net.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;
    use lqo_ml::metrics::spearman;

    #[test]
    fn treernn_learns_plan_cost_ranking() {
        let (catalog, _, samples) = fixture();
        let model = TreeRnnCostModel::fit(catalog, &samples, 200);
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| model.predict(&s.query, &s.plan).ln())
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.work.ln()).collect();
        let rho = spearman(&pred, &truth);
        assert!(rho > 0.7, "treernn rank correlation {rho}");
    }

    #[test]
    fn embeddings_have_fixed_dim() {
        let (catalog, _, samples) = fixture();
        let model = TreeRnnCostModel::fit(catalog, &samples[..4], 10);
        let e = model.embed(&samples[0].query, &samples[0].plan);
        assert_eq!(e.len(), 24);
    }
}
