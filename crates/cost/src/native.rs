//! The native analytical cost model behind the [`CostModel`] trait.

use std::sync::Arc;

use lqo_engine::exec::workunits::CostParams;
use lqo_engine::optimizer::{plan_cost, CardSource};
use lqo_engine::{Catalog, PhysNode, SpjQuery};

use crate::model::CostModel;

/// The engine's analytical formula under a pluggable cardinality source —
/// the baseline every learned cost model is compared to (E7). Its error
/// has two parts: cardinality estimation error and the runtime effects
/// (spills, caching) the formula does not model.
pub struct NativeCostModel {
    catalog: Arc<Catalog>,
    card: Arc<dyn CardSource>,
    params: CostParams,
}

impl NativeCostModel {
    /// Build with default cost parameters.
    pub fn new(catalog: Arc<Catalog>, card: Arc<dyn CardSource>) -> NativeCostModel {
        NativeCostModel {
            catalog,
            card,
            params: CostParams::default(),
        }
    }
}

impl CostModel for NativeCostModel {
    fn name(&self) -> &'static str {
        "Native"
    }
    fn predict(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        plan_cost(plan, query, &self.catalog, self.card.as_ref(), &self.params)
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;
    use lqo_engine::stats::table_stats::CatalogStats;
    use lqo_engine::TraditionalCardSource;

    #[test]
    fn native_costs_correlate_with_measured_work() {
        let (catalog, _, samples) = fixture();
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let card: Arc<dyn CardSource> =
            Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
        let model = NativeCostModel::new(catalog, card);
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| model.predict(&s.query, &s.plan).ln())
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.work.ln()).collect();
        let rho = lqo_ml::metrics::spearman(&pred, &truth);
        assert!(rho > 0.7, "native cost rank correlation {rho}");
    }
}
