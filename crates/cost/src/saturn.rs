//! Saturn-style plan auto-encoder \[34\]: an MLP auto-encoder compresses
//! flat plan features into a small embedding; downstream cost prediction
//! retrieves the nearest stored embeddings (the pseudo-label flavour of
//! the original).

use std::sync::Arc;

use lqo_engine::{Catalog, PhysNode, SpjQuery};
use lqo_ml::mlp::{Activation, Mlp, MlpConfig};

use crate::featurize::PlanFeaturizer;
use crate::model::{CostModel, PlanSample};

/// A fitted plan auto-encoder with a k-NN cost head.
pub struct SaturnEmbedder {
    feat: PlanFeaturizer,
    /// Encoder+decoder trained on reconstruction; the first
    /// `embed_dim` activations of the bottleneck form the embedding.
    autoencoder: Mlp,
    embed_dim: usize,
    /// Stored `(embedding, log-work)` memory for retrieval.
    memory: Vec<(Vec<f64>, f64)>,
}

impl SaturnEmbedder {
    /// Fit the auto-encoder on the samples' flat plan features and store
    /// their embeddings with measured work.
    pub fn fit(catalog: Arc<Catalog>, samples: &[PlanSample], epochs: usize) -> SaturnEmbedder {
        let feat = PlanFeaturizer::new(catalog);
        let dim = feat.flat_dim();
        let embed_dim = 8;
        let mut autoencoder = Mlp::new(MlpConfig {
            learning_rate: 3e-3,
            activation: Activation::Tanh,
            ..MlpConfig::new(vec![dim, 24, embed_dim, 24, dim])
        });
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| feat.flat(&s.query, &s.plan))
            .collect();
        for _ in 0..epochs {
            for chunk in xs.chunks(16) {
                let targets: Vec<Vec<f64>> = chunk.to_vec();
                autoencoder.train_batch(chunk, &targets);
            }
        }
        let mut this = SaturnEmbedder {
            feat,
            autoencoder,
            embed_dim,
            memory: Vec::new(),
        };
        this.memory = samples
            .iter()
            .zip(&xs)
            .map(|(s, x)| (this.embed_raw(x), s.work.ln()))
            .collect();
        this
    }

    fn embed_raw(&self, x: &[f64]) -> Vec<f64> {
        // The bottleneck code: the activation after the second hidden
        // layer of the `[dim, 24, embed_dim, 24, dim]` auto-encoder.
        self.autoencoder.hidden_activation(x, 2)
    }

    /// Compressed embedding of a plan.
    pub fn embed(&self, query: &SpjQuery, plan: &PhysNode) -> Vec<f64> {
        self.embed_raw(&self.feat.flat(query, plan))
    }

    /// Reconstruction error of a plan (novelty signal for downstream
    /// tasks such as regression filtering).
    pub fn reconstruction_error(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let x = self.feat.flat(query, plan);
        let r = self.autoencoder.predict(&x);
        x.iter()
            .zip(&r)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / x.len() as f64
    }

    /// Number of stored memory entries.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }
}

impl CostModel for SaturnEmbedder {
    fn name(&self) -> &'static str {
        "Saturn"
    }
    fn predict(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        let e = self.embed(query, plan);
        // Distance-weighted 3-NN over stored embeddings.
        let mut dists: Vec<(f64, f64)> = self
            .memory
            .iter()
            .map(|(m, y)| {
                let d: f64 = e
                    .iter()
                    .zip(m)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (d, *y)
            })
            .collect();
        // total_cmp: a NaN distance (degenerate embedding) sorts last
        // instead of panicking mid-query.
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = dists.len().min(3);
        if k == 0 {
            return 1.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (d, y) in dists.into_iter().take(k) {
            let w = 1.0 / (d + 1e-6);
            num += w * y;
            den += w;
        }
        (num / den).exp().max(1.0)
    }
    fn model_size(&self) -> usize {
        self.autoencoder.num_params() + self.memory.len() * self.embed_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::fixture;
    use lqo_ml::metrics::spearman;

    #[test]
    fn saturn_retrieval_ranks_plans() {
        let (catalog, _, samples) = fixture();
        let model = SaturnEmbedder::fit(catalog, &samples, 200);
        assert_eq!(model.memory_len(), samples.len());
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| model.predict(&s.query, &s.plan).ln())
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.work.ln()).collect();
        let rho = spearman(&pred, &truth);
        // Retrieval over its own memory should rank well.
        assert!(rho > 0.8, "saturn rank correlation {rho}");
    }

    #[test]
    fn reconstruction_error_is_finite() {
        let (catalog, _, samples) = fixture();
        let model = SaturnEmbedder::fit(catalog, &samples[..6], 50);
        for s in &samples {
            let e = model.reconstruction_error(&s.query, &s.plan);
            assert!(e.is_finite() && e >= 0.0);
        }
    }
}
