//! The differential harness: serial vs parallel vs batched, everything
//! compared.

use lqo_engine::exec::relation::Relation;
use lqo_engine::{
    Catalog, EngineError, ExecConfig, ExecMode, ExecResult, Executor, ParallelConfig, PhysNode,
    SpjQuery,
};

/// What to sweep when differencing one (query, plan) pair.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Worker-pool sizes to compare against serial. 1 exercises the
    /// serial-dispatch shortcut; the rest the real pool.
    pub thread_counts: Vec<usize>,
    /// Morsel sizes to sweep (each combined with each thread count). A
    /// deliberately tiny size maximizes scheduling nondeterminism — the
    /// hardest case for byte identity.
    pub morsel_rows: Vec<usize>,
    /// Columnar batch sizes to sweep. Each runs as an
    /// `ExecMode::Batched` cell, and each `(threads, batch)` combination
    /// as an `ExecMode::BatchedParallel` cell (morsel sizes cycled across
    /// those cells to keep the sweep bounded). Empty disables the batched
    /// legs.
    pub batch_sizes: Vec<usize>,
    /// Work budget applied identically to every mode (`None` = unlimited).
    pub max_work: Option<f64>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            thread_counts: thread_counts_from_env(),
            morsel_rows: vec![7, 1024, 32_768],
            batch_sizes: batch_sizes_from_env(),
            max_work: None,
        }
    }
}

/// Thread counts from `LQO_TEST_THREADS` (comma-separated, e.g. `"2,8"`),
/// defaulting to `[1, 2, 4, 8]`. The harness is about *correctness under
/// schedule permutation*, not speed, so counts beyond the machine's core
/// count are valid and useful — they still permute morsel schedules.
pub fn thread_counts_from_env() -> Vec<usize> {
    match std::env::var("LQO_TEST_THREADS") {
        Ok(s) => {
            let parsed: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                vec![1, 2, 4, 8]
            } else {
                parsed
            }
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Batch sizes from `LQO_TEST_BATCH_SIZES` (comma-separated, e.g.
/// `"1,64"`), defaulting to `[1, 7, 64, 1024]`: the degenerate
/// one-row batch, a size that never divides morsel or table sizes
/// (maximizing partial-batch boundaries), a small power of two, and the
/// production default.
pub fn batch_sizes_from_env() -> Vec<usize> {
    match std::env::var("LQO_TEST_BATCH_SIZES") {
        Ok(s) => {
            let parsed: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&b| b > 0)
                .collect();
            if parsed.is_empty() {
                vec![1, 7, 64, 1024]
            } else {
                parsed
            }
        }
        Err(_) => vec![1, 7, 64, 1024],
    }
}

/// Outcome of one differential check.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The serial reference result.
    pub serial: ExecResult,
    /// Order-sensitive digest of the serial output relation.
    pub digest: u64,
    /// Number of non-serial cells compared (parallel, batched, and
    /// batched-parallel).
    pub cells: usize,
}

fn result_fingerprint(r: &ExecResult) -> (u64, u64, Vec<(lqo_engine::TableSet, u64)>) {
    (r.count, r.work.to_bits(), r.intermediates.clone())
}

/// The non-serial cells a [`DiffConfig`] expands to: every
/// `(threads, morsel_rows)` parallel cell, every `batch` batched cell,
/// and every `(threads, batch)` batched-parallel cell (with morsel sizes
/// cycled across those so all three knobs vary without a full cubic
/// product).
fn sweep_cells(cfg: &DiffConfig) -> Vec<(String, ExecConfig)> {
    let mut cells = Vec::new();
    let base = ExecConfig {
        max_work: cfg.max_work,
        ..Default::default()
    };
    for &threads in &cfg.thread_counts {
        for &morsel_rows in &cfg.morsel_rows {
            cells.push((
                format!("parallel threads={threads} morsel_rows={morsel_rows}"),
                ExecConfig {
                    mode: ExecMode::Parallel { threads },
                    parallel: ParallelConfig {
                        morsel_rows,
                        ..Default::default()
                    },
                    ..base.clone()
                },
            ));
        }
    }
    for &batch_size in &cfg.batch_sizes {
        cells.push((
            format!("batched batch={batch_size}"),
            ExecConfig {
                mode: ExecMode::Batched { batch_size },
                ..base.clone()
            },
        ));
    }
    if !cfg.morsel_rows.is_empty() {
        for (ti, &threads) in cfg.thread_counts.iter().enumerate() {
            for (bi, &batch_size) in cfg.batch_sizes.iter().enumerate() {
                let morsel_rows = cfg.morsel_rows[(ti + bi) % cfg.morsel_rows.len()];
                cells.push((
                    format!(
                        "batched-parallel threads={threads} morsel_rows={morsel_rows} \
                         batch={batch_size}"
                    ),
                    ExecConfig {
                        mode: ExecMode::BatchedParallel {
                            threads,
                            batch_size,
                        },
                        parallel: ParallelConfig {
                            morsel_rows,
                            ..Default::default()
                        },
                        ..base.clone()
                    },
                ));
            }
        }
    }
    cells
}

/// Execute `plan` serially and under every parallel, batched, and
/// batched-parallel cell of `cfg`, requiring byte-identical output
/// everywhere: equal counts, bit-identical work, equal intermediates,
/// identical output relations (slots and row order), and — when the
/// serial run errors (e.g. a work budget trip) — the *same* error from
/// every cell.
///
/// Returns a human-readable description of the first divergence, so
/// property tests can surface the failing cell.
pub fn diff_plan(
    catalog: &Catalog,
    query: &SpjQuery,
    plan: &PhysNode,
    cfg: &DiffConfig,
) -> Result<DiffOutcome, String> {
    let serial_exec = Executor::new(
        catalog,
        ExecConfig {
            max_work: cfg.max_work,
            ..Default::default()
        },
    );
    let serial = serial_exec.execute_collect(query, plan);
    let mut cells = 0;
    for (cell, config) in sweep_cells(cfg) {
        cells += 1;
        let candidate = Executor::new(catalog, config).execute_collect(query, plan);
        match (&serial, &candidate) {
            (Ok((sr, srel)), Ok((pr, prel))) => {
                compare(sr, srel, pr, prel, &cell, query)?;
            }
            (Err(se), Err(pe)) => {
                if !same_error(se, pe) {
                    return Err(format!(
                        "error divergence at {cell} for `{query}`: serial {se}, candidate {pe}"
                    ));
                }
            }
            (Ok(_), Err(pe)) => {
                return Err(format!(
                    "candidate failed at {cell} for `{query}` where serial succeeded: {pe}"
                ));
            }
            (Err(se), Ok(_)) => {
                return Err(format!(
                    "candidate succeeded at {cell} for `{query}` where serial failed: {se}"
                ));
            }
        }
    }
    match serial {
        Ok((result, rel)) => Ok(DiffOutcome {
            digest: rel.digest(),
            serial: result,
            cells,
        }),
        Err(e) => Err(format!("serial execution failed for `{query}`: {e}")),
    }
}

fn same_error(a: &EngineError, b: &EngineError) -> bool {
    // Budget trips must agree exactly; other errors are plan-validation
    // failures that do not depend on the mode.
    a == b
}

fn compare(
    sr: &ExecResult,
    srel: &Relation,
    pr: &ExecResult,
    prel: &Relation,
    cell: &str,
    query: &SpjQuery,
) -> Result<(), String> {
    if result_fingerprint(sr) != result_fingerprint(pr) {
        return Err(format!(
            "result divergence at {cell} for `{query}`: \
             serial (count={}, work={:x?}, {} intermediates) vs \
             parallel (count={}, work={:x?}, {} intermediates)",
            sr.count,
            sr.work.to_bits(),
            sr.intermediates.len(),
            pr.count,
            pr.work.to_bits(),
            pr.intermediates.len(),
        ));
    }
    if srel.slots != prel.slots {
        return Err(format!(
            "slot-layout divergence at {cell} for `{query}`: {:?} vs {:?}",
            srel.slots, prel.slots
        ));
    }
    if srel.rows != prel.rows {
        let first = srel
            .rows
            .iter()
            .zip(&prel.rows)
            .position(|(a, b)| a != b)
            .map(|i| i.to_string())
            .unwrap_or_else(|| format!("length {} vs {}", srel.rows.len(), prel.rows.len()));
        return Err(format!(
            "row divergence at {cell} for `{query}`: first difference at flat index {first}"
        ));
    }
    Ok(())
}

/// Run [`diff_plan`] for every `(query, plan)` pair, panicking on the
/// first divergence with the offending query. Returns the number of
/// parallel cells compared in total.
pub fn diff_workload(catalog: &Catalog, pairs: &[(SpjQuery, PhysNode)], cfg: &DiffConfig) -> usize {
    let mut cells = 0;
    for (query, plan) in pairs {
        match diff_plan(catalog, query, plan, cfg) {
            Ok(outcome) => cells += outcome.cells,
            Err(msg) => panic!("differential harness: {msg}"),
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::query::parse_query;
    use lqo_engine::JoinAlgo;

    #[test]
    fn diff_accepts_equivalent_modes() {
        let catalog = stats_like(60, 7).unwrap();
        let q = parse_query(
            "SELECT COUNT(*) FROM users u, posts p \
             WHERE u.id = p.owner_user_id AND u.reputation > 20",
        )
        .unwrap();
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let out = diff_plan(
            &catalog,
            &q,
            &plan,
            &DiffConfig {
                thread_counts: vec![1, 2, 3],
                morsel_rows: vec![5, 64],
                batch_sizes: vec![1, 16],
                max_work: None,
            },
        )
        .unwrap();
        // 3x2 parallel + 2 batched + 3x2 batched-parallel.
        assert_eq!(out.cells, 14);
        assert!(out.serial.work > 0.0);
    }

    #[test]
    fn diff_detects_budget_agreement() {
        let catalog = stats_like(60, 7).unwrap();
        let q = parse_query("SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owner_user_id")
            .unwrap();
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        // Tiny budget: both modes must fail with the same error.
        let err = diff_plan(
            &catalog,
            &q,
            &plan,
            &DiffConfig {
                thread_counts: vec![2],
                morsel_rows: vec![8],
                batch_sizes: vec![4],
                max_work: Some(3.0),
            },
        )
        .unwrap_err();
        assert!(err.contains("serial execution failed"), "{err}");
    }

    #[test]
    fn thread_counts_default() {
        // Not set in the test environment unless the CI job sets it; both
        // shapes are acceptable, but the list must never be empty.
        assert!(!thread_counts_from_env().is_empty());
    }
}
