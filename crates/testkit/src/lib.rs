//! # lqo-testkit
//!
//! The differential correctness harness for the execution layer.
//!
//! Lehmann et al. ("Is Your Learned Query Optimizer Behaving As You
//! Expect?") show that LQO evaluations are routinely invalidated by
//! execution-layer noise; Balsa-style optimizers train directly on
//! executed latencies. A parallel executor that is merely "equal counts,
//! usually" would silently corrupt every learned-component feedback loop
//! in this repository. This crate therefore holds the engine to a much
//! stronger standard: **byte identity**. For every query, plan, thread
//! count, morsel size, and columnar batch size, the parallel and batched
//! executors must produce the same result rows in the same order, the
//! same intermediate cardinalities, and the *bit-identical* work-unit
//! account as the serial reference.
//!
//! Pieces:
//!
//! * [`differential`] — run a (query, plan) through serial, parallel,
//!   batched, and batched-parallel modes at multiple thread counts,
//!   morsel sizes, and batch sizes and compare everything
//!   ([`differential::diff_plan`]), plus workload sweeps.
//! * [`reopt_diff`] — the same standard for the checkpointed
//!   re-optimizing executor: byte identity when no checkpoint triggers,
//!   answer identity (normalized tuple multiset) after a sub-plan
//!   switch ([`reopt_diff::diff_reopt_plan`]).
//! * [`sqlgen`] — seeded random SPJ query and random physical-plan
//!   generators for property tests.
//! * [`golden`] — golden-file snapshots with a `BLESS=1` regeneration
//!   path.
//!
//! The integration tests under `tests/` are the test-archetype core:
//! differential sweeps over the bench workloads, proptest-driven random
//! SPJ properties, worker-fault chaos tests, and golden snapshots.

#![warn(missing_docs)]

pub mod differential;
pub mod golden;
pub mod reopt_diff;
pub mod sqlgen;

pub use differential::{
    batch_sizes_from_env, diff_plan, diff_workload, thread_counts_from_env, DiffConfig, DiffOutcome,
};
pub use golden::check_golden;
pub use reopt_diff::{diff_reopt_plan, diff_reopt_workload, ReoptDiffConfig, ReoptDiffOutcome};
pub use sqlgen::{random_plan, random_query, RandomQueryConfig};
