//! Differential harness for the checkpointed re-optimizing executor.
//!
//! The contract `lqo-reopt` must keep is two-tiered:
//!
//! * **Untriggered** (no checkpoint ever switched the plan): execution is
//!   **byte-identical** to the monolithic executor — equal counts,
//!   bit-identical work units, equal intermediates, identical output
//!   relations (slots and row order), and identical errors on budget
//!   trips. The step-driven path must be invisible.
//! * **Triggered, kept** (a checkpoint tripped but re-planning kept the
//!   original plan): rows, order, counts, and intermediates are still
//!   the original plan's; only the bounded re-planning work charge may
//!   (and must, upward) move the work account.
//! * **Switched** (one or more sub-plan switches): the plan changed, so
//!   plan-dependent observables (work, operator order, row order) may
//!   legitimately differ — but the *answer* may not. The harness then
//!   requires equal counts and equal [`Relation::normalize`]d canonical
//!   digests: the same tuple multiset, plan-invariantly ordered.
//!
//! Both tiers are swept across thread counts, because re-optimization
//! composes with morsel-driven parallel operator execution.

use std::sync::Arc;

use lqo_engine::exec::relation::Relation;
use lqo_engine::{
    CardSource, Catalog, EngineError, ExecConfig, ExecMode, ExecResult, Executor, PhysNode,
    SpjQuery,
};
use lqo_reopt::{ReoptConfig, ReoptExecutor};

use crate::differential::thread_counts_from_env;

/// What to sweep when differencing one (query, plan) pair under
/// checkpointed re-optimization.
#[derive(Debug, Clone)]
pub struct ReoptDiffConfig {
    /// Worker-pool sizes for the checkpointed executor's operator steps
    /// (serial is always included as its own cell).
    pub thread_counts: Vec<usize>,
    /// Work budget applied identically to the baseline and every reopt
    /// cell (`None` = unlimited).
    pub max_work: Option<f64>,
    /// The re-optimization policy under test.
    pub reopt: ReoptConfig,
}

impl Default for ReoptDiffConfig {
    fn default() -> ReoptDiffConfig {
        ReoptDiffConfig {
            thread_counts: thread_counts_from_env(),
            max_work: None,
            reopt: ReoptConfig::default(),
        }
    }
}

/// Outcome of one reopt differential check.
#[derive(Debug, Clone)]
pub struct ReoptDiffOutcome {
    /// The plain serial reference result.
    pub serial: ExecResult,
    /// Total confirmed triggers observed across all cells.
    pub triggers: u64,
    /// Total sub-plan switches observed across all cells.
    pub switches: u64,
    /// Number of reopt cells compared against the baseline.
    pub cells: usize,
}

fn fingerprint(r: &ExecResult) -> (u64, u64, Vec<(lqo_engine::TableSet, u64)>) {
    (r.count, r.work.to_bits(), r.intermediates.clone())
}

/// Execute `plan` with the plain serial executor (the reference), then
/// with the checkpointed executor in serial mode and at every thread
/// count in `cfg`, holding each cell to the tier its report earns:
/// byte identity when untriggered, answer identity after a switch.
///
/// `card` is the estimator the plan was (nominally) built on — poison it
/// to force triggers, pass the real one to prove invisibility.
pub fn diff_reopt_plan(
    catalog: &Catalog,
    query: &SpjQuery,
    plan: &PhysNode,
    card: &Arc<dyn CardSource>,
    cfg: &ReoptDiffConfig,
) -> Result<ReoptDiffOutcome, String> {
    let baseline = Executor::new(
        catalog,
        ExecConfig {
            max_work: cfg.max_work,
            ..Default::default()
        },
    )
    .execute_collect(query, plan);
    let mut cells = 0;
    let mut triggers = 0;
    let mut switches = 0;
    let modes: Vec<ExecMode> = std::iter::once(ExecMode::Serial)
        .chain(
            cfg.thread_counts
                .iter()
                .map(|&threads| ExecMode::Parallel { threads }),
        )
        .collect();
    for mode in modes {
        cells += 1;
        let cell = format!("mode={mode:?}");
        let reopt = ReoptExecutor::new(
            catalog,
            ExecConfig {
                max_work: cfg.max_work,
                mode,
                ..Default::default()
            },
            card.clone(),
            cfg.reopt.clone(),
        );
        let attempt = reopt.execute_collect(query, plan);
        match (&baseline, &attempt) {
            (Ok((br, brel)), Ok((rr, rrel, report))) => {
                triggers += report.triggers;
                switches += report.switches;
                if report.triggers == 0 {
                    // Tier 1: the checkpointed driver must be invisible.
                    if fingerprint(br) != fingerprint(rr) {
                        return Err(format!(
                            "untriggered result divergence at {cell} for `{query}`: \
                             baseline (count={}, work={:x?}) vs reopt (count={}, work={:x?})",
                            br.count,
                            br.work.to_bits(),
                            rr.count,
                            rr.work.to_bits(),
                        ));
                    }
                    if brel.slots != rrel.slots || brel.rows != rrel.rows {
                        return Err(format!(
                            "untriggered relation divergence at {cell} for `{query}`"
                        ));
                    }
                } else if report.switches == 0 {
                    // Tier 1.5: triggered but kept the original plan — the
                    // only legitimate delta is the bounded re-planning
                    // work charged to the meter. Rows, order, counts, and
                    // intermediates are still the original plan's.
                    if br.count != rr.count
                        || br.intermediates != rr.intermediates
                        || brel.slots != rrel.slots
                        || brel.rows != rrel.rows
                    {
                        return Err(format!("kept-plan divergence at {cell} for `{query}`"));
                    }
                    if rr.work < br.work {
                        return Err(format!(
                            "kept-plan work shrank at {cell} for `{query}`: \
                             baseline {} vs reopt {}",
                            br.work, rr.work
                        ));
                    }
                } else {
                    // Tier 2: the plan changed; the answer may not.
                    if br.count != rr.count {
                        return Err(format!(
                            "count divergence after switch at {cell} for `{query}`: \
                             baseline {} vs reopt {}",
                            br.count, rr.count
                        ));
                    }
                    if normalized_digest(brel) != normalized_digest(rrel) {
                        return Err(format!(
                            "tuple-multiset divergence after switch at {cell} for `{query}`"
                        ));
                    }
                }
            }
            (Err(be), Err(re)) => {
                if !same_error(be, re) {
                    return Err(format!(
                        "error divergence at {cell} for `{query}`: baseline {be}, reopt {re}"
                    ));
                }
            }
            (Ok(_), Err(re)) => {
                return Err(format!(
                    "reopt failed at {cell} for `{query}` where baseline succeeded: {re}"
                ));
            }
            (Err(be), Ok(_)) => {
                return Err(format!(
                    "reopt succeeded at {cell} for `{query}` where baseline failed: {be}"
                ));
            }
        }
    }
    match baseline {
        Ok((result, _)) => Ok(ReoptDiffOutcome {
            serial: result,
            triggers,
            switches,
            cells,
        }),
        Err(e) => Err(format!("baseline execution failed for `{query}`: {e}")),
    }
}

fn normalized_digest(rel: &Relation) -> u64 {
    rel.normalize().canonical_digest()
}

fn same_error(a: &EngineError, b: &EngineError) -> bool {
    a == b
}

/// Run [`diff_reopt_plan`] for every `(query, plan)` pair, panicking on
/// the first divergence. Returns `(cells, triggers)` totals so callers
/// can assert the sweep actually exercised (or avoided) triggers.
pub fn diff_reopt_workload(
    catalog: &Catalog,
    pairs: &[(SpjQuery, PhysNode)],
    card: &Arc<dyn CardSource>,
    cfg: &ReoptDiffConfig,
) -> (usize, u64) {
    let mut cells = 0;
    let mut triggers = 0;
    for (query, plan) in pairs {
        match diff_reopt_plan(catalog, query, plan, card, cfg) {
            Ok(outcome) => {
                cells += outcome.cells;
                triggers += outcome.triggers;
            }
            Err(msg) => panic!("reopt differential harness: {msg}"),
        }
    }
    (cells, triggers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::optimizer::InjectedCardSource;
    use lqo_engine::query::parse_query;
    use lqo_engine::{CatalogStats, JoinAlgo, TableSet, TraditionalCardSource};

    fn setup() -> (Catalog, SpjQuery, PhysNode, Arc<dyn CardSource>) {
        let catalog = stats_like(60, 7).unwrap();
        let q = parse_query(
            "SELECT COUNT(*) FROM users u, posts p \
             WHERE u.id = p.owner_user_id AND u.reputation > 20",
        )
        .unwrap();
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let catalog_arc = Arc::new(catalog.clone());
        let stats = Arc::new(CatalogStats::build_default(&catalog_arc));
        let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog_arc, stats));
        (catalog, q, plan, card)
    }

    #[test]
    fn accurate_estimates_stay_byte_identical() {
        let (catalog, q, plan, card) = setup();
        let out = diff_reopt_plan(&catalog, &q, &plan, &card, &ReoptDiffConfig::default()).unwrap();
        assert_eq!(out.switches, 0, "well-estimated pair must not trigger");
        assert!(out.cells >= 2);
    }

    #[test]
    fn poisoned_estimates_recover_to_the_same_answer() {
        let (catalog, q, plan, card) = setup();
        let poisoned = InjectedCardSource::new(card);
        poisoned.inject(&q, TableSet::singleton(0), 1.0);
        let poisoned: Arc<dyn CardSource> = Arc::new(poisoned);
        let out = diff_reopt_plan(
            &catalog,
            &q,
            &plan,
            &poisoned,
            &ReoptDiffConfig {
                reopt: ReoptConfig {
                    q_error_threshold: 4.0,
                    confirm_streak: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // The harness already enforced answer identity; the sweep must
        // also have actually triggered, or this test proves nothing.
        assert!(out.triggers > 0, "poisoned estimate never tripped");
    }
}
