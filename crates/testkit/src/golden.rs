//! Golden-file snapshot checking with a `BLESS=1` regeneration path.
//!
//! Golden files live in `crates/testkit/tests/golden/` and are committed
//! to the repository. A test renders its observation to a string and
//! calls [`check_golden`]; on mismatch the test fails with a diff hint
//! and the regeneration instructions. To re-bless after an intentional
//! change:
//!
//! ```text
//! BLESS=1 cargo test -p lqo-testkit --test golden
//! ```
//!
//! then review the resulting `tests/golden/*.txt` diff in version
//! control like any other code change.

use std::fs;
use std::path::PathBuf;

/// Absolute path of the golden file named `name` (e.g. `"workload.txt"`).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Compare `actual` against the committed golden file `name`.
///
/// With `BLESS=1` in the environment the file is (re)written instead and
/// the check passes. Otherwise a missing or differing file panics with
/// the first differing line and regeneration instructions.
pub fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create golden dir");
        }
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             `BLESS=1 cargo test -p lqo-testkit --test golden`",
            path.display()
        )
    });
    if expected != actual {
        let diff = first_diff(&expected, actual);
        panic!(
            "golden mismatch for {}:\n{diff}\n\
             If the change is intentional, re-bless with \
             `BLESS=1 cargo test -p lqo-testkit --test golden` and commit the diff.",
            path.display()
        );
    }
}

fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("  line {}:\n  - {e}\n  + {a}", i + 1);
        }
    }
    format!(
        "  line counts differ: expected {}, actual {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_path_is_inside_testkit() {
        let p = golden_path("x.txt");
        assert!(p.ends_with("tests/golden/x.txt"));
        assert!(p.to_string_lossy().contains("crates/testkit"));
    }

    #[test]
    fn first_diff_reports_line() {
        let d = first_diff("a\nb\n", "a\nc\n");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- b"), "{d}");
    }
}
