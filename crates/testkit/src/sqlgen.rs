//! Seeded random SPJ query and physical-plan generators.
//!
//! Property tests need two axes of randomness the bench workloads alone
//! do not give: arbitrary *plan shapes* (bushy trees, bad join orders,
//! deliberate cross products, every join algorithm) and arbitrary *morsel
//! schedules*. Queries come from the bench-suite generator (connected FK
//! joins, data-derived predicates); plans are random binary trees over
//! the query's tables with a random algorithm per join — any such tree is
//! a valid executable plan, which is exactly the space the differential
//! harness must hold byte-identical across execution modes.

use rand::rngs::StdRng;
use rand::Rng;

use lqo_bench_suite::workload::{generate_workload, WorkloadConfig};
use lqo_engine::{Catalog, JoinAlgo, PhysNode, SpjQuery};

/// Shape knobs for [`random_query`].
#[derive(Debug, Clone)]
pub struct RandomQueryConfig {
    /// Maximum joined tables (2..=this).
    pub max_tables: usize,
    /// Maximum filter predicates.
    pub max_predicates: usize,
}

impl Default for RandomQueryConfig {
    fn default() -> RandomQueryConfig {
        RandomQueryConfig {
            // Debug-build property tests run random (often terrible)
            // plans; keep the join count small so nested-loop worst cases
            // stay fast.
            max_tables: 3,
            max_predicates: 3,
        }
    }
}

/// Generate one random connected SPJ query over `catalog`, deterministic
/// in `rng`'s state.
pub fn random_query(catalog: &Catalog, rng: &mut StdRng, cfg: &RandomQueryConfig) -> SpjQuery {
    loop {
        let seed = rng.gen_range(0..u64::MAX);
        let mut queries = generate_workload(
            catalog,
            &WorkloadConfig {
                num_queries: 1,
                min_tables: 2,
                max_tables: cfg.max_tables.max(2),
                max_predicates: cfg.max_predicates.max(1),
                seed,
            },
        );
        if let Some(q) = queries.pop() {
            return q;
        }
    }
}

/// Build a uniformly random physical plan for `query`: a random binary
/// tree over its table positions with a random join algorithm at each
/// inner node (cross products forced to nested loop, as the executor
/// requires). Every plan this returns is executable; none is required to
/// be *good* — bad plans are the interesting differential cases.
pub fn random_plan(query: &SpjQuery, rng: &mut StdRng) -> PhysNode {
    let mut positions: Vec<usize> = (0..query.num_tables()).collect();
    shuffle(&mut positions, rng);
    build(query, &positions, rng)
}

fn build(query: &SpjQuery, positions: &[usize], rng: &mut StdRng) -> PhysNode {
    if positions.len() == 1 {
        return PhysNode::scan(positions[0]);
    }
    let split = rng.gen_range(1..positions.len());
    let left = build(query, &positions[..split], rng);
    let right = build(query, &positions[split..], rng);
    let conds = query.joins_between(left.tables(), right.tables());
    let algo = if conds.is_empty() {
        JoinAlgo::NestedLoop
    } else {
        JoinAlgo::ALL[rng.gen_range(0..JoinAlgo::ALL.len())]
    };
    PhysNode::join(algo, left, right)
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::Executor;
    use rand::SeedableRng;

    #[test]
    fn random_plans_are_executable() {
        let catalog = stats_like(50, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let ex = Executor::with_defaults(&catalog);
        for _ in 0..20 {
            let q = random_query(&catalog, &mut rng, &RandomQueryConfig::default());
            let plan = random_plan(&q, &mut rng);
            ex.execute(&q, &plan)
                .unwrap_or_else(|e| panic!("plan {plan:?} for `{q}` failed: {e}"));
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        let catalog = stats_like(50, 11).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = random_query(&catalog, &mut rng, &RandomQueryConfig::default());
            let p = random_plan(&q, &mut rng);
            (q, p.fingerprint())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }
}
