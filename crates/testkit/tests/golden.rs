//! Golden snapshot of a fixed 10-query workload: query text, the plan
//! the traditional optimizer picks, and the executed result (count,
//! bit-exact work, order-sensitive relation digest). Any change to the
//! generator, optimizer, cost model, or any execution mode shows up
//! here as a reviewable diff.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BLESS=1 cargo test -p lqo-testkit --test golden
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use lqo_bench_suite::workload::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::stats_like;
use lqo_engine::{
    CatalogStats, ExecConfig, ExecMode, Executor, Optimizer, ParallelConfig, TraditionalCardSource,
};
use lqo_testkit::check_golden;

#[test]
fn ten_query_workload_snapshot() {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 10,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed: 0x601D_E001,
        },
    );
    assert_eq!(queries.len(), 10, "fixed workload must yield 10 queries");
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card = TraditionalCardSource::new(catalog.clone(), stats);
    let optimizer = Optimizer::with_defaults(&catalog);
    let serial = Executor::with_defaults(&catalog);
    let parallel = Executor::new(
        &catalog,
        ExecConfig {
            mode: ExecMode::Parallel { threads: 4 },
            parallel: ParallelConfig {
                morsel_rows: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let batched = Executor::new(
        &catalog,
        ExecConfig {
            mode: ExecMode::Batched { batch_size: 64 },
            ..Default::default()
        },
    );
    let batched_parallel = Executor::new(
        &catalog,
        ExecConfig {
            mode: ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 64,
            },
            parallel: ParallelConfig {
                morsel_rows: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let mut out = String::from("# golden: stats_like(60, 7), 10 queries, seed 0x601DE001\n");
    for (i, q) in queries.iter().enumerate() {
        let plan = optimizer.optimize_default(q, &card).unwrap().plan;
        let (sr, srel) = serial.execute_collect(q, &plan).unwrap();
        // The snapshot is also a differential check: every other mode
        // must reproduce it before it is rendered — same committed
        // golden file, no mode-specific snapshots.
        for (mode, ex) in [
            ("parallel", &parallel),
            ("batched", &batched),
            ("batched-parallel", &batched_parallel),
        ] {
            let (pr, prel) = ex.execute_collect(q, &plan).unwrap();
            assert_eq!(sr.count, pr.count, "query {i} ({mode})");
            assert_eq!(sr.work.to_bits(), pr.work.to_bits(), "query {i} ({mode})");
            assert_eq!(srel.digest(), prel.digest(), "query {i} ({mode})");
        }
        writeln!(out, "\nquery {i}: {q}").unwrap();
        writeln!(out, "plan {i}: {}", plan.fingerprint()).unwrap();
        writeln!(
            out,
            "result {i}: count={} work_bits={:#018x} digest={:#018x}",
            sr.count,
            sr.work.to_bits(),
            srel.digest()
        )
        .unwrap();
    }
    check_golden("workload.txt", &out);
}
