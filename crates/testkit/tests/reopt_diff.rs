//! Reopt differential sweep: every bench-workload query runs under the
//! checkpointed re-optimizing executor — serially and at every
//! `LQO_TEST_THREADS` worker count — and is compared against the plain
//! serial executor.
//!
//! With the estimator the plans were built on, nothing may trigger and
//! the comparison is byte identity. With deliberately poisoned
//! estimates, checkpoints trip and the comparison is answer identity
//! (equal counts, equal normalized tuple-multiset digests).

use std::sync::Arc;

use lqo_bench_suite::workload::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::{imdb_like, stats_like};
use lqo_engine::optimizer::InjectedCardSource;
use lqo_engine::{
    CardSource, Catalog, CatalogStats, Optimizer, PhysNode, SpjQuery, TableSet,
    TraditionalCardSource,
};
use lqo_reopt::ReoptConfig;
use lqo_testkit::{diff_reopt_plan, diff_reopt_workload, ReoptDiffConfig};

fn optimizer_pairs(
    catalog: &Arc<Catalog>,
    num: usize,
    seed: u64,
) -> (Vec<(SpjQuery, PhysNode)>, Arc<dyn CardSource>) {
    let queries = generate_workload(
        catalog,
        &WorkloadConfig {
            num_queries: num,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed,
        },
    );
    assert!(!queries.is_empty(), "workload generation produced nothing");
    let stats = Arc::new(CatalogStats::build_default(catalog));
    let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let optimizer = Optimizer::with_defaults(catalog);
    let pairs = queries
        .into_iter()
        .map(|q| {
            let plan = optimizer.optimize_default(&q, card.as_ref()).unwrap().plan;
            (q, plan)
        })
        .collect();
    (pairs, card)
}

#[test]
fn stats_workload_is_reopt_invariant_when_estimates_hold() {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let (pairs, card) = optimizer_pairs(&catalog, 6, 0x5E0F_0001);
    // Default thresholds against the estimator that built the plans:
    // checkpointing must be invisible, byte for byte, in every cell.
    let (cells, triggers) =
        diff_reopt_workload(&catalog, &pairs, &card, &ReoptDiffConfig::default());
    assert!(cells >= pairs.len() * 2, "sweep compared too few cells");
    assert_eq!(triggers, 0, "accurate estimates must not trip checkpoints");
}

#[test]
fn imdb_workload_is_reopt_invariant_when_estimates_hold() {
    let catalog = Arc::new(imdb_like(40, 3).unwrap());
    let (pairs, card) = optimizer_pairs(&catalog, 5, 0x5E0F_0002);
    let (_, triggers) = diff_reopt_workload(&catalog, &pairs, &card, &ReoptDiffConfig::default());
    assert_eq!(triggers, 0, "accurate estimates must not trip checkpoints");
}

#[test]
fn poisoned_workload_recovers_to_identical_answers() {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let (pairs, card) = optimizer_pairs(&catalog, 5, 0x5E0F_0003);
    let cfg = ReoptDiffConfig {
        reopt: ReoptConfig {
            q_error_threshold: 4.0,
            confirm_streak: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut triggers = 0;
    for (query, plan) in &pairs {
        // Poison the session's belief about every base table: each scan
        // checkpoint then sees a huge q-error and the executor must
        // re-plan its way back to the same answer.
        let poisoned = InjectedCardSource::new(card.clone());
        for t in 0..query.num_tables() {
            poisoned.inject(query, TableSet::singleton(t), 1.0);
        }
        let poisoned: Arc<dyn CardSource> = Arc::new(poisoned);
        let out = diff_reopt_plan(&catalog, query, plan, &poisoned, &cfg)
            .unwrap_or_else(|msg| panic!("reopt differential harness: {msg}"));
        triggers += out.triggers;
    }
    assert!(triggers > 0, "poisoned workload never tripped a checkpoint");
}
