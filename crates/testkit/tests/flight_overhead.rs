//! Flight-recorder acceptance tests: the always-on overhead bound on the
//! golden workload (same interleaved-minimum methodology as the profiler
//! bound, DESIGN.md §13), and a golden-file snapshot of the Prometheus
//! text exposition of the metrics registry.

use std::sync::Arc;
use std::time::Instant;

use lqo_bench_suite::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{Catalog, CatalogStats, Executor, HintSet, Optimizer, TraditionalCardSource};
use lqo_flight::{FlightConfig, FlightContext};
use lqo_obs::prom::{parse_prometheus, render_prometheus};
use lqo_obs::ObsContext;
use lqo_testkit::check_golden;

/// The same workload shape as the profiler bound: 3–5 way joins at
/// realistic per-query cost, so the ratio reflects what a deployment
/// sees with the recorder left on in production.
fn workload_setup() -> (Arc<Catalog>, Arc<dyn CardSource>, Vec<lqo_engine::SpjQuery>) {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 8,
            min_tables: 3,
            max_tables: 5,
            max_predicates: 2,
            seed: 0x0BEA_D001,
        },
    );
    assert_eq!(queries.len(), 8);
    (catalog, card, queries)
}

/// Plan and execute the whole golden workload `reps` times with the
/// flight recorder attached (span edges per optimize and per execute,
/// plus the begin/end query edges — the recorder's steady-state cost).
fn run_workload(
    catalog: &Arc<Catalog>,
    card: &Arc<dyn CardSource>,
    queries: &[lqo_engine::SpjQuery],
    flight: &FlightContext,
    reps: usize,
) -> f64 {
    let optimizer = Optimizer::with_defaults(catalog).with_flight(flight.clone());
    let executor = Executor::with_defaults(catalog).with_flight(flight.clone());
    let hints = HintSet::default();
    let mut total_work = 0.0;
    for _ in 0..reps {
        for q in queries {
            flight.begin_query("golden");
            let choice = optimizer.optimize(q, card.as_ref(), &hints).unwrap();
            total_work += executor.execute(q, &choice.plan).unwrap().work;
            flight.end_query(None, None);
        }
    }
    total_work
}

/// The always-on flight recorder must cost < 2% wall clock on the
/// canonical workload. Methodology as in `prof_overhead.rs`: interleaved
/// trials, each arm summarized by its minimum over K trials, trial
/// length auto-sized so timer quantization is negligible.
#[test]
fn flight_recorder_overhead_is_bounded() {
    let (catalog, card, queries) = workload_setup();
    let off = FlightContext::disabled();
    // Obs stays disabled in both arms so the measured delta is the
    // recorder itself (ring publishes), not trace recording.
    let on = FlightContext::new(FlightConfig::default(), ObsContext::disabled());

    let t0 = Instant::now();
    run_workload(&catalog, &card, &queries, &off, 1);
    let per_rep = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.025 / per_rep).ceil() as usize).clamp(2, 200);
    const MIN_TRIALS: usize = 5;
    // Debug builds only exercise the functional checks; the <2% bound
    // is a statement about optimized code.
    let max_trials: usize = if cfg!(debug_assertions) {
        MIN_TRIALS
    } else {
        40
    };
    let mut trials = 0usize;
    let mut min_off = f64::INFINITY;
    let mut min_on = f64::INFINITY;
    let mut work_off = 0.0;
    let mut work_on = 0.0;
    while trials < max_trials {
        let t = Instant::now();
        work_off = run_workload(&catalog, &card, &queries, &off, reps);
        min_off = min_off.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        work_on = run_workload(&catalog, &card, &queries, &on, reps);
        min_on = min_on.min(t.elapsed().as_secs_f64());
        trials += 1;
        if trials >= MIN_TRIALS && min_on / min_off < 1.02 {
            break;
        }
    }
    // The recorder never perturbs the computation itself.
    assert_eq!(work_off.to_bits(), work_on.to_bits());
    let ratio = min_on / min_off;
    eprintln!(
        "flight overhead: {:+.2}% (off {min_off:.4}s, on {min_on:.4}s, \
         {reps} reps/trial, {trials} trials)",
        (ratio - 1.0) * 100.0
    );
    if !cfg!(debug_assertions) {
        assert!(
            ratio < 1.02,
            "flight recorder overhead {:.2}% exceeds the 2% bound \
             (off {min_off:.4}s vs on {min_on:.4}s, {reps} reps/trial, {trials} trials)",
            (ratio - 1.0) * 100.0
        );
    }
    // The cheap run still recorded the span stream.
    assert!(on.events_published() > 0);
    assert!(on
        .ring_snapshot()
        .iter()
        .any(|r| matches!(&r.event, lqo_flight::FlightEvent::Span { name, .. } if name == "plan.optimize")));
}

/// The Prometheus text exposition of the metrics registry is pinned by
/// a golden file, and every metric in the snapshot round-trips through
/// the parser.
#[test]
fn prometheus_export_matches_golden_and_round_trips() {
    // A deterministic registry: counters, gauges, and a histogram with
    // values spread across buckets (plus a name needing mangling).
    let obs = ObsContext::enabled();
    obs.count("lqo.flight.events", 142);
    obs.count("lqo.flight.bundles", 1);
    obs.count("lqo.guard.faults", 7);
    obs.gauge("lqo.cache.hit-rate", 0.75);
    for v in [0.5, 3.0, 3.5, 40.0, 900.0] {
        obs.observe("lqo.exec.work", v);
    }
    let snap = obs.metrics().expect("enabled").snapshot();
    let text = render_prometheus(&snap);
    check_golden("prom_metrics.txt", &text);

    let samples = parse_prometheus(&text).expect("exposition parses");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.le.is_none())
            .unwrap_or_else(|| panic!("missing sample {name}"))
    };
    // Every counter round-trips under its `_total` name…
    for (name, value) in &snap.counters {
        let s = find(&format!("{}_total", lqo_obs::prom::prom_name(name)));
        assert_eq!(s.value, *value as f64);
    }
    // …every gauge under its mangled name…
    for (name, value) in &snap.gauges {
        let s = find(&lqo_obs::prom::prom_name(name));
        assert_eq!(s.value, *value);
    }
    // …and every histogram exposes a consistent _count/_sum plus a +Inf
    // bucket equal to the count.
    for (name, h) in &snap.histograms {
        let p = lqo_obs::prom::prom_name(name);
        assert_eq!(find(&format!("{p}_count")).value, h.count() as f64);
        assert_eq!(find(&format!("{p}_sum")).value, h.sum());
        let inf = samples
            .iter()
            .find(|s| s.name == format!("{p}_bucket") && s.le.as_deref() == Some("+Inf"))
            .expect("mandatory +Inf bucket");
        assert_eq!(inf.value, h.count() as f64);
    }
}
