//! Differential sweep: every bench-workload query, optimizer-chosen
//! plan, executed serially, in parallel, batched, and batched-parallel
//! at every configured thread count, morsel size, and batch size,
//! compared byte for byte.
//!
//! Thread counts come from `LQO_TEST_THREADS` (default `1,2,4,8`) and
//! batch sizes from `LQO_TEST_BATCH_SIZES` (default `1,7,64,1024`); the
//! CI `parallel` job runs this suite at both 2 and 8 workers and the
//! `batch` job at two batch sizes.

use std::sync::Arc;

use lqo_bench_suite::workload::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::{imdb_like, stats_like, tpch_like};
use lqo_engine::{Catalog, CatalogStats, Optimizer, PhysNode, SpjQuery, TraditionalCardSource};
use lqo_testkit::{diff_workload, DiffConfig};

/// Generate `num` queries over `catalog` and pair each with the plan the
/// traditional optimizer picks for it — the plans the engine actually
/// runs in every experiment, which is exactly the population the
/// parallel executor must not perturb.
fn optimizer_pairs(catalog: &Arc<Catalog>, num: usize, seed: u64) -> Vec<(SpjQuery, PhysNode)> {
    let queries = generate_workload(
        catalog,
        &WorkloadConfig {
            num_queries: num,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed,
        },
    );
    assert!(!queries.is_empty(), "workload generation produced nothing");
    let stats = Arc::new(CatalogStats::build_default(catalog));
    let card = TraditionalCardSource::new(catalog.clone(), stats);
    let optimizer = Optimizer::with_defaults(catalog);
    queries
        .into_iter()
        .map(|q| {
            let plan = optimizer.optimize_default(&q, &card).unwrap().plan;
            (q, plan)
        })
        .collect()
}

fn sweep(catalog: Catalog, num: usize, seed: u64) {
    let catalog = Arc::new(catalog);
    let pairs = optimizer_pairs(&catalog, num, seed);
    let cells = diff_workload(&catalog, &pairs, &DiffConfig::default());
    assert!(cells >= pairs.len(), "sweep compared no parallel cells");
}

#[test]
fn stats_workload_is_mode_invariant() {
    sweep(stats_like(60, 7).unwrap(), 6, 0xD1FF_0001);
}

#[test]
fn imdb_workload_is_mode_invariant() {
    sweep(imdb_like(40, 3).unwrap(), 5, 0xD1FF_0002);
}

#[test]
fn tpch_workload_is_mode_invariant() {
    sweep(tpch_like(40, 5).unwrap(), 5, 0xD1FF_0003);
}

#[test]
fn budget_trips_agree_across_modes() {
    // A budget tight enough to trip mid-join: serial and every other
    // cell must fail with the *same* WorkLimitExceeded error.
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let pairs = optimizer_pairs(&catalog, 3, 0xD1FF_0004);
    for (query, plan) in &pairs {
        let out = lqo_testkit::diff_plan(
            &catalog,
            query,
            plan,
            &DiffConfig {
                max_work: Some(10.0),
                ..Default::default()
            },
        );
        // Either every mode succeeded under the budget (possible for a
        // trivial query) or diff_plan reports the uniform serial failure;
        // any *divergence* message is a harness failure.
        if let Err(msg) = out {
            assert!(
                msg.contains("serial execution failed"),
                "mode divergence under budget: {msg}"
            );
        }
    }
}
