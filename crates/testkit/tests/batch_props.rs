//! Property tests for the vectorized (batched) execution path: random
//! SPJ queries, random plan shapes, random batch sizes — batched must
//! equal serial byte for byte, the result must not depend on the batch
//! size, selection-vector boundaries must not leak rows, and composing
//! batching with worker faults must still degrade to a byte-identical
//! result.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lqo_engine::datagen::stats_like;
use lqo_engine::{Catalog, ExecConfig, ExecMode, Executor, JoinAlgo, ParallelConfig, PhysNode};
use lqo_testkit::{diff_plan, random_plan, random_query, DiffConfig, RandomQueryConfig};

fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| stats_like(50, 11).unwrap())
}

fn batched_exec(batch_size: usize) -> Executor<'static> {
    Executor::new(
        catalog(),
        ExecConfig {
            mode: ExecMode::Batched { batch_size },
            ..Default::default()
        },
    )
}

/// Run `f` with the panic hook silenced, so injected worker panics do
/// not spam the test log. Restored afterwards.
fn silenced<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The core property: for ANY query, ANY plan shape, ANY batch size
    /// (including the degenerate 1 and sizes far beyond any table),
    /// batched output is byte-identical to serial — same rows in the
    /// same order, bit-identical work. Also sweeps one batched-parallel
    /// cell so the morsel-pool composition is covered per case.
    #[test]
    fn batched_equals_serial_for_random_plans(
        seed in 0u64..u64::MAX,
        batch_size in 1usize..5000,
        threads in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(catalog(), &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let cfg = DiffConfig {
            thread_counts: vec![threads],
            morsel_rows: vec![64],
            batch_sizes: vec![batch_size],
            max_work: None,
        };
        diff_plan(catalog(), &q, &plan, &cfg)
            .unwrap_or_else(|msg| panic!("{msg} (plan {})", plan.fingerprint()));
    }

    /// Batch-size invariance: two *different* batch sizes over the same
    /// plan must agree with each other exactly, not just each with
    /// serial — the batch size is a performance knob, never a semantic
    /// one.
    #[test]
    fn result_is_invariant_under_batch_size(
        seed in 0u64..u64::MAX,
        a in 1usize..2048,
        b in 1usize..2048,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(catalog(), &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let (ra, rela) = batched_exec(a).execute_collect(&q, &plan).unwrap();
        let (rb, relb) = batched_exec(b).execute_collect(&q, &plan).unwrap();
        prop_assert_eq!(ra.count, rb.count);
        prop_assert_eq!(ra.work.to_bits(), rb.work.to_bits());
        prop_assert_eq!(rela.digest(), relb.digest());
    }

    /// Selection-vector boundary cases: batch sizes placed exactly at,
    /// one below, and one above a scanned table's row count, so the
    /// final batch is full, a single row, or the whole input. No row may
    /// be dropped or duplicated at any chunk boundary.
    #[test]
    fn selection_vector_boundaries_lose_nothing(
        seed in 0u64..u64::MAX,
        off in -1isize..=1,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(
            catalog(),
            &mut rng,
            &RandomQueryConfig { max_tables: 2, max_predicates: 3 },
        );
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let rows = catalog().table(&q.tables[0].table).unwrap().nrows();
        let batch = rows.saturating_add_signed(off).max(1);
        let cfg = DiffConfig {
            thread_counts: vec![],
            morsel_rows: vec![],
            batch_sizes: vec![batch],
            max_work: None,
        };
        diff_plan(catalog(), &q, &plan, &cfg).unwrap_or_else(|msg| panic!("{msg}"));
    }

    /// Composed chaos: a worker panics mid-morsel while the executor is
    /// in batched-parallel mode. The fallback re-runs on the
    /// single-threaded batched path, which must still be byte-identical
    /// to a clean serial run.
    #[test]
    fn batched_worker_panic_degrades_byte_identically(
        seed in 0u64..u64::MAX,
        panic_on in 0u64..64,
        batch_size in 1usize..2048,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(catalog(), &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let (serial, serial_rel) = Executor::with_defaults(catalog())
            .execute_collect(&q, &plan)
            .unwrap();
        let ex = Executor::new(
            catalog(),
            ExecConfig {
                mode: ExecMode::BatchedParallel { threads: 4, batch_size },
                parallel: ParallelConfig {
                    morsel_rows: 8,
                    panic_on_morsel: Some(panic_on),
                    fallback_serial: true,
                },
                ..Default::default()
            },
        );
        let (degraded, degraded_rel) = silenced(|| ex.execute_collect(&q, &plan)).unwrap();
        prop_assert_eq!(degraded.count, serial.count);
        prop_assert_eq!(degraded.work.to_bits(), serial.work.to_bits());
        prop_assert_eq!(degraded_rel.digest(), serial_rel.digest());
    }
}

/// Batched hash-join build/probe symmetry (mirrors the parallel
/// property): swapping the build side changes row order but must
/// preserve the result set under slot-normalized digests.
#[test]
fn batched_hash_join_build_probe_symmetry() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_0001);
    for _ in 0..8 {
        let q = random_query(
            catalog(),
            &mut rng,
            &RandomQueryConfig {
                max_tables: 2,
                max_predicates: 3,
            },
        );
        let ab = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let ba = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(1), PhysNode::scan(0));
        let ex = batched_exec(64);
        let (r1, rel1) = ex.execute_collect(&q, &ab).unwrap();
        let (r2, rel2) = ex.execute_collect(&q, &ba).unwrap();
        assert_eq!(r1.count, r2.count);
        assert_eq!(
            rel1.normalize().canonical_digest(),
            rel2.normalize().canonical_digest(),
            "join sides produced different result sets for `{q}`"
        );
    }
}
