//! Worker-fault chaos: a worker thread panics mid-morsel. The pool must
//! contain the panic (no deadlock, no poisoned output), the executor
//! must degrade to the serial path when fallback is enabled and surface
//! `WorkerFault` when it is not, and the degraded result must be
//! byte-identical to a clean serial run — with the degradation visible
//! to lqo-obs/lqo-guard.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lqo_engine::datagen::stats_like;
use lqo_engine::{
    Catalog, EngineError, ExecConfig, ExecMode, Executor, JoinAlgo, ParallelConfig, PhysNode,
};
use lqo_obs::ObsContext;
use lqo_testkit::{random_plan, random_query, RandomQueryConfig};

fn fixture() -> (Catalog, lqo_engine::SpjQuery, PhysNode) {
    let catalog = stats_like(60, 7).unwrap();
    let q = lqo_engine::query::parse_query(
        "SELECT COUNT(*) FROM users u, posts p \
         WHERE u.id = p.owner_user_id AND u.reputation > 10",
    )
    .unwrap();
    let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
    (catalog, q, plan)
}

fn faulty_config(panic_on_morsel: u64, fallback_serial: bool) -> ExecConfig {
    ExecConfig {
        mode: ExecMode::Parallel { threads: 4 },
        parallel: ParallelConfig {
            morsel_rows: 8,
            panic_on_morsel: Some(panic_on_morsel),
            fallback_serial,
        },
        ..Default::default()
    }
}

/// Run `f` with the panic hook silenced, so injected worker panics do
/// not spam the test log. Restored afterwards.
fn silenced<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn worker_panic_degrades_to_serial_with_correct_results() {
    let (catalog, q, plan) = fixture();
    let (serial, serial_rel) = Executor::with_defaults(&catalog)
        .execute_collect(&q, &plan)
        .unwrap();
    for panic_on in [0u64, 1, 5] {
        let obs = ObsContext::enabled();
        let ex = Executor::new(&catalog, faulty_config(panic_on, true)).with_obs(obs.clone());
        obs.begin_query("chaos");
        let (degraded, degraded_rel) = silenced(|| ex.execute_collect(&q, &plan)).unwrap();
        let trace = obs.end_query().unwrap();
        assert_eq!(degraded.count, serial.count, "panic_on={panic_on}");
        assert_eq!(degraded.work.to_bits(), serial.work.to_bits());
        assert_eq!(degraded_rel.digest(), serial_rel.digest());
        assert_eq!(
            obs.metrics()
                .unwrap()
                .snapshot()
                .counter("lqo.exec.parallel.degraded"),
            Some(1),
            "degradation must be visible in metrics"
        );
        assert!(
            trace.guard.iter().any(|g| g.component == "exec:parallel"
                && g.fault.starts_with("worker-panic")
                && g.action == "fallback:serial"),
            "degradation must be visible as a guard event"
        );
    }
}

#[test]
fn worker_panic_without_fallback_surfaces_worker_fault() {
    let (catalog, q, plan) = fixture();
    let ex = Executor::new(&catalog, faulty_config(0, false));
    let err = silenced(|| ex.execute_collect(&q, &plan)).unwrap_err();
    assert!(
        matches!(err, EngineError::WorkerFault { .. }),
        "expected WorkerFault, got {err}"
    );
}

#[test]
fn repeated_faults_never_deadlock() {
    // The pool joins all workers even when one dies mid-morsel; if that
    // ever regressed into a hang, this loop would trip the test-harness
    // timeout. 12 consecutive faulted runs at varying fault positions.
    let (catalog, q, plan) = fixture();
    silenced(|| {
        for panic_on in 0..12u64 {
            let ex = Executor::new(&catalog, faulty_config(panic_on, true));
            let r = ex.execute_collect(&q, &plan).unwrap();
            assert!(r.0.count > 0);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// For ANY random query/plan and ANY fault position, the degraded
    /// run equals the clean serial run byte for byte.
    #[test]
    fn degraded_run_equals_serial_for_random_plans(
        seed in 0u64..u64::MAX,
        panic_on in 0u64..64,
    ) {
        let catalog = stats_like(50, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&catalog, &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let (serial, serial_rel) = Executor::with_defaults(&catalog)
            .execute_collect(&q, &plan)
            .unwrap();
        let ex = Executor::new(&catalog, faulty_config(panic_on, true));
        let (degraded, degraded_rel) = silenced(|| ex.execute_collect(&q, &plan)).unwrap();
        prop_assert_eq!(degraded.count, serial.count);
        prop_assert_eq!(degraded.work.to_bits(), serial.work.to_bits());
        prop_assert_eq!(degraded_rel.digest(), serial_rel.digest());
    }
}
