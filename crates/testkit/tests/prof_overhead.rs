//! Profiler acceptance tests: the sampling-mode overhead bound on the
//! golden workload, and a golden-file snapshot of the folded-stack
//! (flamegraph) export format.

use std::sync::Arc;
use std::time::Instant;

use lqo_bench_suite::{generate_workload, WorkloadConfig};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{Catalog, CatalogStats, Executor, HintSet, Optimizer, TraditionalCardSource};
use lqo_prof::{parse_folded, ProfContext};
use lqo_testkit::check_golden;

/// Queries sized like the paper's workloads (3–5 way joins, ~100µs+
/// of optimize+execute each). The profiler's cost is a fixed handful
/// of phase guards per query, so the overhead *ratio* is what a real
/// deployment sees at realistic query sizes; sub-50µs micro-queries
/// would see proportionally more (documented in DESIGN.md §13).
fn workload_setup() -> (Arc<Catalog>, Arc<dyn CardSource>, Vec<lqo_engine::SpjQuery>) {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 8,
            min_tables: 3,
            max_tables: 5,
            max_predicates: 2,
            seed: 0x0BEA_D001,
        },
    );
    assert_eq!(queries.len(), 8);
    (catalog, card, queries)
}

/// Plan and execute the whole golden workload `reps` times under `prof`.
fn run_workload(
    catalog: &Arc<Catalog>,
    card: &Arc<dyn CardSource>,
    queries: &[lqo_engine::SpjQuery],
    prof: &ProfContext,
    reps: usize,
) -> f64 {
    let optimizer = Optimizer::with_defaults(catalog).with_prof(prof.clone());
    let executor = Executor::with_defaults(catalog).with_prof(prof.clone());
    let hints = HintSet::default();
    let mut total_work = 0.0;
    for _ in 0..reps {
        for q in queries {
            let choice = optimizer.optimize(q, card.as_ref(), &hints).unwrap();
            total_work += executor.execute(q, &choice.plan).unwrap().work;
        }
    }
    total_work
}

/// Sampling-mode profiling must cost < 2% wall clock on the canonical
/// workload. Methodology (documented in DESIGN.md §13): trials of the
/// two arms are interleaved and each arm is summarized by its *minimum*
/// over K trials — the min is the classic robust estimator for "how fast
/// can this code go", immune to one-sided scheduler noise. Trial length
/// is auto-sized to tens of milliseconds so timer quantization is
/// negligible.
#[test]
fn sampling_profiler_overhead_is_bounded() {
    let (catalog, card, queries) = workload_setup();
    let off = ProfContext::disabled();
    let on = ProfContext::sampling(64);

    // Size one trial to >= ~25ms (debug builds are slower; the sizing
    // pass adapts either way), then take interleaved trial pairs. The
    // per-arm minimum is monotone in the trial count, so keep sampling
    // until the ratio clears the bound or the budget runs out — this
    // rides out transient contention from concurrently running test
    // binaries without weakening the bound itself.
    let t0 = Instant::now();
    run_workload(&catalog, &card, &queries, &off, 1);
    let per_rep = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.025 / per_rep).ceil() as usize).clamp(2, 200);
    const MIN_TRIALS: usize = 5;
    // Debug builds only exercise the functional checks (see below), so
    // they stop at MIN_TRIALS instead of chasing a timing bound.
    let max_trials: usize = if cfg!(debug_assertions) {
        MIN_TRIALS
    } else {
        40
    };
    let mut trials = 0usize;
    let mut min_off = f64::INFINITY;
    let mut min_on = f64::INFINITY;
    let mut work_off = 0.0;
    let mut work_on = 0.0;
    while trials < max_trials {
        let t = Instant::now();
        work_off = run_workload(&catalog, &card, &queries, &off, reps);
        min_off = min_off.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        work_on = run_workload(&catalog, &card, &queries, &on, reps);
        min_on = min_on.min(t.elapsed().as_secs_f64());
        trials += 1;
        if trials >= MIN_TRIALS && min_on / min_off < 1.02 {
            break;
        }
    }
    // The profiler never perturbs the computation itself.
    assert_eq!(work_off.to_bits(), work_on.to_bits());
    let ratio = min_on / min_off;
    eprintln!(
        "prof overhead: {:+.2}% (off {min_off:.4}s, on {min_on:.4}s, \
         {reps} reps/trial, {trials} trials)",
        (ratio - 1.0) * 100.0
    );
    // The <2% bound is a statement about optimized code; debug builds
    // run the hot path unoptimized, so only the perturbation-freedom
    // and profile-shape checks apply there.
    if !cfg!(debug_assertions) {
        assert!(
            ratio < 1.02,
            "sampling profiler overhead {:.2}% exceeds the 2% bound \
             (off {min_off:.4}s vs on {min_on:.4}s, {reps} reps/trial, {trials} trials)",
            (ratio - 1.0) * 100.0
        );
    }
    // The cheap run still produced a usable profile.
    let total = on.total();
    assert!(total.frames.contains_key("enumerate"));
    assert!(total.frames.contains_key("execute"));
}

/// The folded-stack export format is pinned by a golden file and
/// round-trips through the parser losslessly.
#[test]
fn folded_stack_export_matches_golden_and_round_trips() {
    // A deterministic profile assembled via record_at: fixed wall values,
    // multi-level nesting, a zero-duration phase, and a count-only frame
    // (calls but no sampled wall) that must still appear with value 0.
    let prof = ProfContext::enabled();
    prof.record_at("parse", 10, 5_000, 0.0);
    prof.record_at("plan", 10, 2_000_000, 0.0);
    prof.record_at("plan;enumerate", 10, 1_900_000, 0.0);
    prof.record_at("plan;enumerate;estimate", 640, 1_200_000, 0.0);
    prof.record_at("plan;enumerate;cost", 0, 0, 870.0);
    prof.record_at("execute", 10, 9_000_000, 0.0);
    prof.record_at("execute;HashJoin", 10, 8_000_000, 1024.5);
    prof.record_at("execute;HashJoin;Scan", 20, 6_500_000, 4096.0);
    prof.record_at("execute;zero_phase", 3, 0, 0.0);
    let folded = prof.total().to_folded();
    check_golden("prof_folded.txt", &folded);

    let parsed = parse_folded(&folded).expect("folded parses");
    assert_eq!(parsed.len(), folded.lines().count());
    assert_eq!(parsed["plan;enumerate;estimate"], 1_200_000);
    assert_eq!(parsed["execute;HashJoin;Scan"], 6_500_000);
    // Count-only and zero-duration frames survive with value 0.
    assert_eq!(parsed["plan;enumerate;cost"], 0);
    assert_eq!(parsed["execute;zero_phase"], 0);
    // Re-folding the parsed map is identity (the format is canonical:
    // sorted paths, one "path value" line each).
    let refolded: String = parsed
        .iter()
        .map(|(path, v)| format!("{path} {v}\n"))
        .collect();
    assert_eq!(refolded, folded);
}
