//! Property tests for the parallel execution path: random SPJ queries,
//! random (often terrible) plan shapes, random morsel sizes and thread
//! counts — parallel must equal serial byte for byte, runs must be
//! deterministic, and the merge steps must be order-insensitive where
//! the design says they are.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lqo_engine::datagen::stats_like;
use lqo_engine::{Catalog, ExecConfig, ExecMode, Executor, JoinAlgo, ParallelConfig, PhysNode};
use lqo_testkit::{diff_plan, random_plan, random_query, DiffConfig, RandomQueryConfig};

fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| stats_like(50, 11).unwrap())
}

fn parallel_exec(threads: usize, morsel_rows: usize) -> Executor<'static> {
    Executor::new(
        catalog(),
        ExecConfig {
            mode: ExecMode::Parallel { threads },
            parallel: ParallelConfig {
                morsel_rows,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The core property: for ANY query, ANY plan shape, ANY morsel size
    /// and thread count, parallel output is byte-identical to serial —
    /// same rows in the same order, bit-identical work.
    #[test]
    fn parallel_equals_serial_for_random_plans(
        seed in 0u64..u64::MAX,
        morsel_rows in 1usize..4096,
        threads in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(catalog(), &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let cfg = DiffConfig {
            thread_counts: vec![threads],
            morsel_rows: vec![morsel_rows],
            batch_sizes: vec![], // batched legs live in batch_props.rs
            max_work: None,
        };
        diff_plan(catalog(), &q, &plan, &cfg)
            .unwrap_or_else(|msg| panic!("{msg} (plan {})", plan.fingerprint()));
    }

    /// Two parallel runs of the same plan — different wall-clock morsel
    /// schedules — must agree with each other, not just with serial.
    #[test]
    fn parallel_runs_are_deterministic(
        seed in 0u64..u64::MAX,
        morsel_rows in 1usize..2048,
        threads in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(catalog(), &mut rng, &RandomQueryConfig::default());
        let plan = random_plan(&q, &mut rng);
        let ex = parallel_exec(threads, morsel_rows);
        let (r1, rel1) = ex.execute_collect(&q, &plan).unwrap();
        let (r2, rel2) = ex.execute_collect(&q, &plan).unwrap();
        prop_assert_eq!(r1.count, r2.count);
        prop_assert_eq!(r1.work.to_bits(), r2.work.to_bits());
        prop_assert_eq!(rel1.digest(), rel2.digest());
    }

    /// COUNT(*) merge contract: per-morsel counts combine by `u64`
    /// addition, which must be insensitive to how the scheduler groups
    /// morsels into workers (associativity) and to merge order
    /// (commutativity). Modeled as: any random binary grouping of the
    /// per-morsel counts, over any permutation, sums to the same total.
    #[test]
    fn count_merge_is_associative_and_commutative(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let n = rng.gen_range(1..64);
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        let reference: u64 = counts.iter().sum();
        for _ in 0..4 {
            let mut permuted = counts.clone();
            for i in (1..permuted.len()).rev() {
                let j = rng.gen_range(0..=i);
                permuted.swap(i, j);
            }
            prop_assert_eq!(tree_sum(&permuted, &mut rng), reference);
        }
    }

    /// Hash-join build/probe symmetry: swapping which side builds the
    /// table changes row order (probe-major emission) but must preserve
    /// the result *set*. Compared via slot-normalized order-insensitive
    /// digests.
    #[test]
    fn hash_join_build_probe_symmetry(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(
            catalog(),
            &mut rng,
            &RandomQueryConfig { max_tables: 2, max_predicates: 3 },
        );
        let ab = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let ba = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(1), PhysNode::scan(0));
        let ex = parallel_exec(4, 512);
        let (r1, rel1) = ex.execute_collect(&q, &ab).unwrap();
        let (r2, rel2) = ex.execute_collect(&q, &ba).unwrap();
        prop_assert_eq!(r1.count, r2.count);
        prop_assert_eq!(
            rel1.normalize().canonical_digest(),
            rel2.normalize().canonical_digest(),
            "join sides produced different result sets for `{}`", q
        );
    }
}

/// Sum `vals` via a random binary grouping (models workers combining
/// partial counts in arbitrary tree shapes).
fn tree_sum(vals: &[u64], rng: &mut StdRng) -> u64 {
    use rand::Rng;
    match vals.len() {
        0 => 0,
        1 => vals[0],
        n => {
            let split = rng.gen_range(1..n);
            tree_sum(&vals[..split], rng) + tree_sum(&vals[split..], rng)
        }
    }
}
