//! Observational equivalence of the lqo-cache layers.
//!
//! Two guarantees are pinned here:
//!
//! 1. `MemoCardSource` is indistinguishable from the estimator it wraps:
//!    for random SPJ queries and every sub-query subset, cached and
//!    uncached estimates are bit-identical (property test).
//! 2. Planning the committed golden workload *through* the cache
//!    reproduces `tests/golden/workload.txt` byte-for-byte — the same
//!    snapshot the uncached golden test checks — even when every query
//!    is planned twice so the second pass is served from the cache.

use std::fmt::Write as _;
use std::sync::Arc;

use proptest::prelude::*;

use lqo_bench_suite::workload::{generate_workload, WorkloadConfig};
use lqo_cache::{LqoCache, MemoCardSource, OptMemo};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{
    CatalogStats, ExecConfig, ExecMode, Executor, Optimizer, ParallelConfig, TableSet,
    TraditionalCardSource,
};
use lqo_testkit::check_golden;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// `MemoCardSource` ≡ inner estimator: bit-identical estimates for
    /// every sub-query subset of random SPJ queries, on first sight and
    /// on cross-query repeats, and identical chosen plans.
    #[test]
    fn memo_card_source_is_equivalent_to_inner(seed in 0u64..u64::MAX) {
        let catalog = Arc::new(stats_like(60, 7).unwrap());
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let card = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
        let cache = Arc::new(LqoCache::default());
        let memo = MemoCardSource::new(card.clone(), cache.clone());
        prop_assert_eq!(memo.name(), card.name());

        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = lqo_testkit::RandomQueryConfig::default();
        let optimizer = Optimizer::with_defaults(&catalog);
        for _ in 0..4 {
            let q = lqo_testkit::random_query(&catalog, &mut rng, &cfg);
            // Every non-empty subset of the query's tables, twice: the
            // second round is answered from the cache and must not
            // change a single bit.
            for _round in 0..2 {
                for mask in 1..(1u64 << q.num_tables()) {
                    let set = TableSet(mask);
                    let fresh = card.cardinality(&q, set);
                    let cached = memo.cardinality(&q, set);
                    prop_assert_eq!(fresh.to_bits(), cached.to_bits());
                }
            }
            // The per-optimization memo is equivalent too: same plan,
            // same cost, through a full optimization.
            let direct = optimizer.optimize_default(&q, card.as_ref()).unwrap();
            let opt_memo = OptMemo::new(&memo);
            let memoed = optimizer.optimize_default(&q, &opt_memo).unwrap();
            prop_assert_eq!(direct.plan.fingerprint(), memoed.plan.fingerprint());
            prop_assert_eq!(direct.cost.to_bits(), memoed.cost.to_bits());
        }
        prop_assert!(cache.stats().saved_inference_calls() > 0);
    }
}

/// The committed golden workload, planned through the cache: the
/// rendered snapshot must equal `tests/golden/workload.txt` exactly, and
/// a second fully cached planning pass must reproduce every fingerprint.
#[test]
fn golden_workload_unchanged_with_caching_enabled() {
    let catalog = Arc::new(stats_like(60, 7).unwrap());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 10,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed: 0x601D_E001,
        },
    );
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let card: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let cache = Arc::new(LqoCache::default());
    let memo = MemoCardSource::new(card, cache.clone());
    let optimizer = Optimizer::with_defaults(&catalog);
    let serial = Executor::with_defaults(&catalog);
    let parallel = Executor::new(
        &catalog,
        ExecConfig {
            mode: ExecMode::Parallel { threads: 4 },
            parallel: ParallelConfig {
                morsel_rows: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let mut out = String::from("# golden: stats_like(60, 7), 10 queries, seed 0x601DE001\n");
    let mut fingerprints = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let plan = optimizer.optimize_default(q, &memo).unwrap().plan;
        fingerprints.push(plan.fingerprint());
        let (sr, srel) = serial.execute_collect(q, &plan).unwrap();
        let (pr, prel) = parallel.execute_collect(q, &plan).unwrap();
        assert_eq!(sr.count, pr.count, "query {i}");
        assert_eq!(sr.work.to_bits(), pr.work.to_bits(), "query {i}");
        assert_eq!(srel.digest(), prel.digest(), "query {i}");
        writeln!(out, "\nquery {i}: {q}").unwrap();
        writeln!(out, "plan {i}: {}", plan.fingerprint()).unwrap();
        writeln!(
            out,
            "result {i}: count={} work_bits={:#018x} digest={:#018x}",
            sr.count,
            sr.work.to_bits(),
            srel.digest()
        )
        .unwrap();
    }
    check_golden("workload.txt", &out);

    // Second pass: everything the optimizer asks is now cached; plans
    // must not move by a bit.
    let misses_after_first = cache.stats().card_misses;
    for (q, fp) in queries.iter().zip(&fingerprints) {
        let replanned = optimizer.optimize_default(q, &memo).unwrap().plan;
        assert_eq!(replanned.fingerprint(), *fp);
    }
    let stats = cache.stats();
    assert_eq!(
        stats.card_misses, misses_after_first,
        "second pass was fully cache-served: {stats:?}"
    );
    assert!(stats.saved_inference_calls() > 0, "{stats:?}");
}
