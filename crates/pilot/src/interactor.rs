//! The unified DB interactor interface: push/pull operators over sessions.

use std::sync::Arc;
use std::time::Duration;

use lqo_cache::LqoCache;
use lqo_engine::{ExecMode, HintSet, PhysNode, Result, SpjQuery, TableSet};
use lqo_flight::FlightContext;
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;
use lqo_reopt::ReoptConfig;

/// Identifier of one interaction session (one "database connection").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Actions a driver enforces on the database.
#[derive(Debug, Clone)]
pub enum PushAction {
    /// Replace the optimizer's cardinality for one sub-query (the batch
    /// injection interface of the learned-cardinality driver).
    InjectCardinality {
        /// The enclosing query.
        query: SpjQuery,
        /// Sub-query subset.
        set: TableSet,
        /// Injected estimate.
        card: f64,
    },
    /// Constrain the optimizer with a hint set (Bao steering).
    SetHints(HintSet),
    /// Scale join-cardinality estimates (Lero's tuning knob).
    SetCardScaling(f64),
    /// Drop all injected cardinalities of this session.
    ClearInjections,
    /// Reset hints and scaling to defaults.
    ResetSteering,
}

/// Data a driver acquires from the database.
#[derive(Debug, Clone)]
pub enum PullRequest {
    /// The plan the (steered) optimizer would pick for a query.
    Plan(SpjQuery),
    /// Execute a query under the session's current steering.
    Execute(SpjQuery),
    /// Execute a specific plan.
    ExecutePlan(SpjQuery, PhysNode),
    /// Row count of a table.
    TableRows(String),
    /// Exact cardinality of a sub-query (training-label acquisition).
    TrueCardinality(SpjQuery, TableSet),
}

/// Replies to [`PullRequest`]s.
#[derive(Debug, Clone)]
pub enum PullReply {
    /// A plan and its estimated cost.
    Plan {
        /// The chosen plan.
        plan: PhysNode,
        /// Estimated cost under the session's cardinalities.
        cost: f64,
    },
    /// An execution result.
    Execution {
        /// Count-star result.
        count: u64,
        /// Work units spent.
        work: f64,
        /// Wall-clock time.
        wall: Duration,
        /// The executed plan.
        plan: PhysNode,
    },
    /// A scalar.
    Scalar(f64),
}

/// The unified bridge between drivers and a database. Implemented once
/// per DBMS (here: [`crate::engine_impl::EngineInteractor`]); drivers only
/// ever see this trait.
pub trait DbInteractor: Send + Sync {
    /// Open a new session.
    fn open_session(&self) -> SessionId;

    /// Close a session, dropping its steering state.
    fn close_session(&self, session: SessionId);

    /// Enforce an action.
    fn push(&self, session: SessionId, action: PushAction) -> Result<()>;

    /// Acquire data.
    fn pull(&self, session: SessionId, request: PullRequest) -> Result<PullReply>;

    /// Attach an observability context: subsequent planning and execution
    /// report provenance and metrics to it. Default: ignored, so
    /// interactors without instrumentation keep working unchanged.
    fn attach_obs(&self, _obs: &ObsContext) {}

    /// Select the execution mode (serial or morsel-driven parallel) for
    /// subsequent executions. The parallel path is verified byte-identical
    /// to serial by the differential harness in `crates/testkit`, so
    /// drivers and training loops may switch modes without perturbing
    /// learned-component feedback signals. Default: ignored, so
    /// interactors without a parallel engine keep working unchanged.
    fn set_exec_mode(&self, _mode: ExecMode) {}

    /// Attach a profiling context: subsequent planning and execution
    /// record hierarchical phase timings (plan → enumerate → estimate →
    /// cost, execute → per-operator) and work-unit charges to it, and
    /// plan-cache hits/misses/bypasses land on its exact counters.
    /// Default: ignored, so interactors without a profiler keep working
    /// unchanged.
    fn attach_prof(&self, _prof: &ProfContext) {}

    /// Attach a flight recorder: subsequent planning and execution
    /// publish span boundaries, guard faults, budget trips, and
    /// worker-fault degrades onto its black-box ring, feeding incident
    /// bundles. Default: ignored, so interactors without a recorder keep
    /// working unchanged.
    fn attach_flight(&self, _flight: &FlightContext) {}

    /// Attach a shared plan & inference cache: subsequent planning may
    /// memoize cardinality lookups across queries and reuse previously
    /// optimized plans for unsteered sessions. Caching is observationally
    /// transparent — plans and results are byte-identical to the uncached
    /// path (verified by the differential and golden harnesses). Attach
    /// before pushing steering state: implementations may rebuild session
    /// estimator stacks over the memoized base. Default: ignored, so
    /// interactors without caching keep working unchanged.
    fn attach_cache(&self, _cache: &Arc<LqoCache>) {}

    /// Enable (`Some`) or disable (`None`) mid-query adaptive
    /// re-optimization for subsequent executions: plans run under
    /// materialization checkpoints, and a confirmed cardinality
    /// misestimate re-plans the remaining sub-plan under the guard
    /// budget. Checkpointed execution is byte-identical to the plain
    /// path when nothing triggers, and answer-identical (same tuple
    /// multiset) after a switch. Default: ignored, so interactors
    /// without a checkpointed executor keep working unchanged.
    fn set_reopt(&self, _cfg: Option<ReoptConfig>) {}
}
