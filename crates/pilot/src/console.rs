//! The PilotScope console: registers drivers, manages sessions, routes
//! SQL through the active driver, and runs background model updates.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use lqo_engine::query::parse_query;
use lqo_engine::{EngineError, Result};

use crate::driver::{Driver, DriverDecision, ExecFeedback};
use crate::interactor::{DbInteractor, PullReply, PullRequest, SessionId};

/// Result of executing SQL through the console.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Count-star result.
    pub count: u64,
    /// Work units spent.
    pub work: f64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Which driver steered the query (`None` = plain database).
    pub driver: Option<String>,
}

/// The console operating the middleware.
pub struct PilotConsole {
    interactor: Arc<dyn DbInteractor>,
    drivers: HashMap<String, Box<dyn Driver>>,
    active: Option<String>,
    session: SessionId,
    executed: usize,
}

impl PilotConsole {
    /// Connect a console to a database through its interactor.
    pub fn new(interactor: Arc<dyn DbInteractor>) -> PilotConsole {
        let session = interactor.open_session();
        PilotConsole {
            interactor,
            drivers: HashMap::new(),
            active: None,
            session,
            executed: 0,
        }
    }

    /// Register a driver under its own name, calling its `init`.
    pub fn register_driver(&mut self, mut driver: Box<dyn Driver>) -> Result<()> {
        driver.init(self.interactor.as_ref(), self.session)?;
        self.drivers.insert(driver.name().to_string(), driver);
        Ok(())
    }

    /// Start (activate) a driver; `None` reverts to the plain database.
    pub fn start_driver(&mut self, name: Option<&str>) -> Result<()> {
        if let Some(n) = name {
            if !self.drivers.contains_key(n) {
                return Err(EngineError::InvalidPlan(format!("unknown driver {n}")));
            }
        }
        self.active = name.map(str::to_string);
        Ok(())
    }

    /// Registered driver names.
    pub fn driver_names(&self) -> Vec<&str> {
        self.drivers.keys().map(String::as_str).collect()
    }

    /// Queries executed through this console.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Execute a SQL string. The active driver (if any) steers planning;
    /// execution feedback is delivered back to it for training.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let query = parse_query(sql)?;
        let decision = match &self.active {
            Some(name) => {
                let driver = self.drivers.get_mut(name).expect("active driver exists");
                driver.algo(self.interactor.as_ref(), self.session, &query)?
            }
            None => DriverDecision::Delegate,
        };
        let request = match decision {
            DriverDecision::Plan(plan) => PullRequest::ExecutePlan(query.clone(), plan),
            DriverDecision::Delegate => PullRequest::Execute(query.clone()),
        };
        let PullReply::Execution {
            count,
            work,
            wall,
            plan,
        } = self.interactor.pull(self.session, request)?
        else {
            return Err(EngineError::InvalidPlan("expected execution reply".into()));
        };
        self.executed += 1;
        if let Some(name) = &self.active {
            let feedback = ExecFeedback {
                query,
                plan,
                count,
                work,
                wall,
            };
            self.drivers
                .get_mut(name)
                .expect("active driver exists")
                .collect(&feedback);
        }
        Ok(ExecOutcome {
            count,
            work,
            wall,
            driver: self.active.clone(),
        })
    }

    /// Background tick: every driver updates its models (PilotScope's
    /// background model updating).
    pub fn tick(&mut self) {
        for driver in self.drivers.values_mut() {
            driver.update_models();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{BaoDriver, CardDriver, LeroDriver};
    use crate::engine_impl::EngineInteractor;
    use learned_qo::framework::OptContext;
    use lqo_card::estimator::FitContext;
    use lqo_card::traditional::SamplingEstimator;
    use lqo_engine::datagen::stats_like;

    fn console() -> (PilotConsole, OptContext) {
        let catalog = Arc::new(stats_like(80, 23).unwrap());
        let ctx = OptContext::new(catalog.clone());
        let interactor = Arc::new(EngineInteractor::new(catalog));
        (PilotConsole::new(interactor), ctx)
    }

    const SQL: &str = "SELECT COUNT(*) FROM users u, posts p \
                       WHERE u.id = p.owner_user_id AND u.reputation > 50";

    #[test]
    fn plain_execution_without_driver() {
        let (mut console, _) = console();
        let out = console.execute_sql(SQL).unwrap();
        assert!(out.count > 0);
        assert_eq!(out.driver, None);
        assert_eq!(console.executed(), 1);
    }

    #[test]
    fn card_driver_injects_and_delegates() {
        let (mut console, ctx) = console();
        let fit = FitContext {
            catalog: ctx.catalog.clone(),
            stats: ctx.stats.clone(),
        };
        let est = Arc::new(SamplingEstimator::fit(&fit));
        console
            .register_driver(Box::new(CardDriver::new(est)))
            .unwrap();
        console.start_driver(Some("learned-cardinality")).unwrap();
        let with_driver = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.driver.as_deref(), Some("learned-cardinality"));
        // Same answer as plain execution: steering never changes results.
        console.start_driver(None).unwrap();
        let plain = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.count, plain.count);
    }

    #[test]
    fn bao_and_lero_drivers_run_and_learn() {
        let (mut console, ctx) = console();
        console
            .register_driver(Box::new(BaoDriver::new(ctx.clone())))
            .unwrap();
        console
            .register_driver(Box::new(LeroDriver::new(ctx)))
            .unwrap();
        let mut names = console.driver_names();
        names.sort();
        assert_eq!(names, vec!["bao", "lero"]);

        for driver in ["bao", "lero"] {
            console.start_driver(Some(driver)).unwrap();
            let out = console.execute_sql(SQL).unwrap();
            assert!(out.count > 0, "{driver}");
            assert_eq!(out.driver.as_deref(), Some(driver));
        }
        console.tick(); // background updates must not panic
    }

    #[test]
    fn unknown_driver_is_rejected() {
        let (mut console, _) = console();
        assert!(console.start_driver(Some("nope")).is_err());
    }
}
