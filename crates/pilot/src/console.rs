//! The PilotScope console: registers drivers, manages sessions, routes
//! SQL through the active driver, and runs background model updates.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lqo_cache::LqoCache;
use lqo_engine::query::parse_query;
use lqo_engine::{EngineError, ExecMode, Result};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_guard::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
use lqo_obs::trace::GuardEvent;
use lqo_obs::trace::QueryOutcome;
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;
use lqo_watch::ModelHealthMonitor;
use serde::Serialize;

use crate::driver::{Driver, DriverDecision, ExecFeedback};
use crate::interactor::{DbInteractor, PullReply, PullRequest, SessionId};

/// Result of executing SQL through the console.
#[derive(Debug, Clone, Serialize)]
pub struct ExecOutcome {
    /// Count-star result.
    pub count: u64,
    /// Work units spent.
    pub work: f64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Which driver steered the query (`None` = plain database).
    pub driver: Option<String>,
    /// Time the driver spent deciding how to steer this query (`None`
    /// when no driver was active).
    pub decision: Option<Duration>,
}

/// The console operating the middleware.
pub struct PilotConsole {
    interactor: Arc<dyn DbInteractor>,
    drivers: HashMap<String, Box<dyn Driver>>,
    active: Option<String>,
    session: SessionId,
    executed: usize,
    obs: ObsContext,
    prof: ProfContext,
    flight: FlightContext,
    /// One circuit breaker per driver; a driver whose `algo` keeps
    /// panicking, erroring, or blowing the deadline is cut off and its
    /// queries delegate to the plain database until a probe succeeds.
    breakers: HashMap<String, CircuitBreaker>,
    breaker_cfg: BreakerConfig,
    /// Per-query decision deadline for driver `algo` calls; `None`
    /// disables deadline enforcement.
    decision_deadline: Option<Duration>,
    /// Optional model-health monitor: finished traces are ingested and
    /// breaker transitions correlated per driver component.
    watch: Option<Arc<ModelHealthMonitor>>,
    /// Optional plan & inference cache: invalidated on confirmed drift
    /// alarms and breaker-open transitions.
    cache: Option<Arc<LqoCache>>,
}

impl PilotConsole {
    /// Connect a console to a database through its interactor.
    pub fn new(interactor: Arc<dyn DbInteractor>) -> PilotConsole {
        let session = interactor.open_session();
        PilotConsole {
            interactor,
            drivers: HashMap::new(),
            active: None,
            session,
            executed: 0,
            obs: ObsContext::disabled(),
            prof: ProfContext::disabled(),
            flight: FlightContext::disabled(),
            breakers: HashMap::new(),
            breaker_cfg: BreakerConfig::default(),
            decision_deadline: Some(Duration::from_millis(250)),
            watch: None,
            cache: None,
        }
    }

    /// Configure the driver guard: the per-query decision deadline
    /// (`None` = unlimited) and the breaker parameters.
    pub fn with_driver_guard(
        mut self,
        deadline: Option<Duration>,
        breaker: BreakerConfig,
    ) -> PilotConsole {
        self.decision_deadline = deadline;
        self.breaker_cfg = breaker;
        self.breakers.clear();
        self
    }

    /// Breaker state of a registered driver (for reports and tests).
    pub fn breaker_state(&self, name: &str) -> Option<BreakerState> {
        self.breakers.get(name).map(|b| b.state())
    }

    /// Full breaker snapshot of a registered driver.
    pub fn breaker_stats(&self, name: &str) -> Option<BreakerStats> {
        self.breakers.get(name).map(|b| b.stats())
    }

    /// Attach a model-health monitor. Requires an enabled obs context to
    /// see traces: every finished query trace is ingested (estimate
    /// accuracy, cost calibration, SLO latencies, guard events), and
    /// breaker state changes are reported per `driver:<name>` component.
    pub fn with_watch(mut self, watch: Arc<ModelHealthMonitor>) -> PilotConsole {
        if self.flight.is_enabled() {
            watch.attach_flight(&self.flight);
        }
        self.watch = Some(watch);
        self
    }

    /// The attached model-health monitor, if any.
    pub fn watch(&self) -> Option<&Arc<ModelHealthMonitor>> {
        self.watch.as_ref()
    }

    /// Attach a plan & inference cache. The interactor memoizes
    /// cardinality lookups across queries and reuses previously optimized
    /// plans for unsteered sessions — observationally transparent, so
    /// results and driver feedback are byte-identical to the uncached
    /// path. The console wires invalidation to runtime signals: confirmed
    /// drift alarms from the attached watch monitor and circuit-breaker
    /// open transitions both purge the affected entries. Attach before
    /// registering drivers or pushing steering state.
    pub fn with_cache(mut self, cache: Arc<LqoCache>) -> PilotConsole {
        self.interactor.attach_cache(&cache);
        cache.attach_obs(&self.obs);
        if self.flight.is_enabled() {
            cache.attach_flight(&self.flight);
        }
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<LqoCache>> {
        self.cache.as_ref()
    }

    /// Select the execution mode for all queries routed through this
    /// console (serial by default). The parallel, batched, and
    /// batched-parallel paths are verified byte-identical to serial by
    /// the differential harness, so results, work units, and driver
    /// training feedback are unchanged — only wall clock differs. Can
    /// also be driven by the `LQO_EXEC_MODE` environment variable (e.g.
    /// `batched`, `batched:512`, `parallel:4`) via
    /// [`ExecMode::from_env`].
    pub fn with_exec_mode(self, mode: ExecMode) -> PilotConsole {
        self.interactor.set_exec_mode(mode);
        self
    }

    /// Enable mid-query adaptive re-optimization for all queries routed
    /// through this console: plans execute under materialization
    /// checkpoints, and a confirmed cardinality misestimate re-plans the
    /// remaining sub-plan within the guard budget (see `lqo-reopt`).
    /// Untriggered execution is byte-identical to the plain path, and a
    /// switched query still returns the same tuple multiset, so driver
    /// feedback signals stay comparable.
    pub fn with_reopt(self, cfg: lqo_reopt::ReoptConfig) -> PilotConsole {
        self.interactor.set_reopt(Some(cfg));
        self
    }

    /// Attach an observability context: each `execute_sql` call becomes
    /// one query trace (parse/plan/execute/feedback phases, driver
    /// attribution, planner and operator provenance), and the context is
    /// propagated down to the interactor's optimizer and executor.
    pub fn with_obs(self, obs: ObsContext) -> PilotConsole {
        self.interactor.attach_obs(&obs);
        if let Some(cache) = &self.cache {
            cache.attach_obs(&obs);
        }
        PilotConsole { obs, ..self }
    }

    /// The console's observability context.
    pub fn obs(&self) -> &ObsContext {
        &self.obs
    }

    /// Attach a flight recorder: every `execute_sql` call becomes one
    /// flight-query window (span boundaries, guard faults, breaker
    /// transitions, cache and re-opt events stream onto the black-box
    /// ring), and a severity trigger mid-query snapshots an incident
    /// bundle that is finalized with the finished trace and profile when
    /// the query ends. The recorder is propagated to the interactor's
    /// optimizer/executor and to any already-attached watch monitor and
    /// cache.
    pub fn with_flight(self, flight: FlightContext) -> PilotConsole {
        self.interactor.attach_flight(&flight);
        if let Some(watch) = &self.watch {
            watch.attach_flight(&flight);
        }
        if let Some(cache) = &self.cache {
            cache.attach_flight(&flight);
        }
        PilotConsole { flight, ..self }
    }

    /// The console's flight recorder.
    pub fn flight(&self) -> &FlightContext {
        &self.flight
    }

    /// Attach a profiling context: each `execute_sql` call becomes one
    /// query profile (parse/decide/plan/execute phase timings with
    /// per-operator and per-morsel attribution, work-unit charges, and
    /// plan-cache / guard counters), propagated down to the interactor's
    /// optimizer and executor like [`PilotConsole::with_obs`].
    pub fn with_prof(self, prof: ProfContext) -> PilotConsole {
        self.interactor.attach_prof(&prof);
        PilotConsole { prof, ..self }
    }

    /// The console's profiling context.
    pub fn prof(&self) -> &ProfContext {
        &self.prof
    }

    /// Register a driver under its own name, calling its `init`.
    pub fn register_driver(&mut self, mut driver: Box<dyn Driver>) -> Result<()> {
        driver.init(self.interactor.as_ref(), self.session)?;
        self.drivers.insert(driver.name().to_string(), driver);
        Ok(())
    }

    /// Start (activate) a driver; `None` reverts to the plain database.
    pub fn start_driver(&mut self, name: Option<&str>) -> Result<()> {
        if let Some(n) = name {
            if !self.drivers.contains_key(n) {
                return Err(EngineError::InvalidPlan(format!("unknown driver {n}")));
            }
        }
        self.active = name.map(str::to_string);
        Ok(())
    }

    /// Registered driver names.
    pub fn driver_names(&self) -> Vec<&str> {
        self.drivers.keys().map(String::as_str).collect()
    }

    /// Queries executed through this console.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Execute a SQL string. The active driver (if any) steers planning;
    /// execution feedback is delivered back to it for training.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.obs.begin_query(sql);
        self.prof.begin_query(sql);
        self.flight.begin_query(sql);
        let query = {
            let _prof_parse = self.prof.phase("parse");
            self.obs.phase("parse", || parse_query(sql))
        };
        let query = match query {
            Ok(q) => q,
            Err(e) => {
                self.finish_query();
                return Err(e);
            }
        };
        let mut decision_latency = None;
        let decision = match self.active.clone() {
            Some(name) => {
                // The driver's decision is where learned-model inference
                // happens: a separate phase keeps its cost apart from
                // plan/execute time in the profile.
                let _prof_decide = self.prof.phase("decide");
                self.guarded_decision(&name, &query, &mut decision_latency)
            }
            None => DriverDecision::Delegate,
        };
        if self.obs.is_enabled() {
            let driver = self.active.clone();
            let decision_ns = decision_latency.map(|d| d.as_nanos() as u64);
            self.obs.with_query(|t| {
                t.driver = driver;
                t.decision_ns = decision_ns;
            });
            if let Some(ns) = decision_ns {
                self.obs.observe("lqo.pilot.decision_ns", ns as f64);
                self.obs
                    .observe("lqo.pilot.decision_us", ns as f64 / 1_000.0);
            }
        }
        let request = match decision {
            DriverDecision::Plan(plan) => PullRequest::ExecutePlan(query.clone(), plan),
            DriverDecision::Delegate => PullRequest::Execute(query.clone()),
        };
        let reply = self
            .obs
            .phase("execute", || self.interactor.pull(self.session, request));
        let PullReply::Execution {
            count,
            work,
            wall,
            plan,
        } = (match reply {
            Ok(r) => r,
            Err(e) => {
                self.finish_query();
                return Err(e);
            }
        })
        else {
            self.finish_query();
            return Err(EngineError::InvalidPlan("expected execution reply".into()));
        };
        self.executed += 1;
        if let Some(name) = self.active.clone() {
            if let Some(driver) = self.drivers.get_mut(&name) {
                let feedback = ExecFeedback {
                    query,
                    plan,
                    count,
                    work,
                    wall,
                };
                // A panicking feedback hook loses that driver its training
                // sample, never the query's result.
                let obs = &self.obs;
                let contained = obs.phase("feedback", || {
                    catch_unwind(AssertUnwindSafe(|| driver.collect(&feedback)))
                });
                if contained.is_err() {
                    obs.count("lqo.guard.faults", 1);
                    obs.count("lqo.guard.faults.panic", 1);
                    obs.with_query(|t| {
                        t.push_guard(GuardEvent {
                            component: format!("driver:{name}"),
                            fault: "panic".to_string(),
                            action: "drop-feedback".to_string(),
                        });
                    });
                }
            }
        }
        if self.obs.is_enabled() {
            self.obs.count("lqo.pilot.queries", 1);
            self.obs.with_query(|t| {
                t.outcome = Some(QueryOutcome {
                    count,
                    work,
                    wall_ns: wall.as_nanos() as u64,
                });
                t.join_estimates();
            });
        }
        self.finish_query();
        Ok(ExecOutcome {
            count,
            work,
            wall,
            driver: self.active.clone(),
            decision: decision_latency,
        })
    }

    /// Finalize the in-flight trace and profile, feed the trace to the
    /// health monitor, and relay confirmed drift verdicts to the cache.
    fn finish_query(&self) {
        let profile = self.prof.end_query();
        let trace = self.obs.end_query();
        if let (Some(watch), Some(trace)) = (&self.watch, &trace) {
            watch.ingest_trace(trace, None);
            if let Some(cache) = &self.cache {
                let component = lqo_watch::component_of(trace);
                let drifted = watch.health(&component) == Some(lqo_watch::HealthState::Drifted);
                cache.note_health(&component, drifted);
            }
        }
        if self.flight.is_enabled() {
            let folded = profile.as_ref().map(|p| p.profile.to_folded());
            self.flight.end_query(trace.as_ref(), folded);
        }
    }

    /// Run the active driver's `algo` under the guard: breaker gate,
    /// panic containment, and the decision deadline. Any contained
    /// failure degrades the query to [`DriverDecision::Delegate`] (plain
    /// database planning) and is recorded as a guard event.
    fn guarded_decision(
        &mut self,
        name: &str,
        query: &lqo_engine::SpjQuery,
        latency: &mut Option<Duration>,
    ) -> DriverDecision {
        let Some(driver) = self.drivers.get_mut(name) else {
            // start_driver validates names, but a missing driver must
            // degrade to plain execution, never panic mid-query.
            self.obs.count("lqo.guard.fallbacks", 1);
            return DriverDecision::Delegate;
        };
        let breaker = self
            .breakers
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_cfg.clone()));
        if !breaker.allow() {
            if let Some(watch) = &self.watch {
                let s = breaker.stats();
                watch.record_breaker(&format!("driver:{name}"), s.state.code(), s.opens);
            }
            self.obs.count("lqo.guard.skips", 1);
            self.prof.bump("guard_breaker_skips", 1);
            if self.flight.is_enabled() {
                self.flight.publish(
                    Producer::Pilot,
                    FlightEvent::Guard {
                        component: format!("driver:{name}"),
                        fault: "breaker-open".to_string(),
                        action: "delegate".to_string(),
                    },
                );
            }
            self.obs.with_query(|t| {
                t.push_guard(GuardEvent {
                    component: format!("driver:{name}"),
                    fault: "breaker-open".to_string(),
                    action: "delegate".to_string(),
                });
            });
            return DriverDecision::Delegate;
        }
        let interactor = self.interactor.clone();
        let session = self.session;
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            driver.algo(interactor.as_ref(), session, query)
        }));
        let elapsed = start.elapsed();
        self.obs
            .observe("lqo.guard.decision_ns", elapsed.as_nanos() as f64);
        let fault = match outcome {
            Ok(Ok(decision)) => {
                if self.decision_deadline.is_none_or(|d| elapsed <= d) {
                    breaker.record_success();
                    if let Some(watch) = &self.watch {
                        let s = breaker.stats();
                        watch.record_breaker(&format!("driver:{name}"), s.state.code(), s.opens);
                    }
                    self.obs
                        .gauge(&format!("lqo.guard.driver.{name}.breaker"), 0.0);
                    *latency = Some(elapsed);
                    return decision;
                }
                self.prof.bump("guard_deadlines", 1);
                "deadline".to_string()
            }
            Ok(Err(e)) => e.to_string(),
            Err(_) => "panic".to_string(),
        };
        self.prof.bump("guard_faults", 1);
        let was_open = breaker.state() == BreakerState::Open;
        breaker.record_failure();
        let state = breaker.state();
        if state == BreakerState::Open && !was_open {
            self.obs.count("lqo.guard.breaker_opens", 1);
            if self.flight.is_enabled() {
                self.flight.publish(
                    Producer::Pilot,
                    FlightEvent::Breaker {
                        component: format!("driver:{name}"),
                        state: "open".to_string(),
                    },
                );
            }
            if let Some(cache) = &self.cache {
                cache.on_breaker_open(&format!("driver:{name}"));
            }
        }
        if let Some(watch) = &self.watch {
            watch.record_breaker(&format!("driver:{name}"), state.code(), breaker.opens());
        }
        self.obs
            .gauge(&format!("lqo.guard.driver.{name}.breaker"), state.code());
        self.obs.count("lqo.guard.faults", 1);
        self.obs.count("lqo.guard.fallbacks", 1);
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Pilot,
                FlightEvent::Guard {
                    component: format!("driver:{name}"),
                    fault: fault.clone(),
                    action: "delegate".to_string(),
                },
            );
        }
        self.obs.with_query(|t| {
            t.push_guard(GuardEvent {
                component: format!("driver:{name}"),
                fault,
                action: "delegate".to_string(),
            });
        });
        DriverDecision::Delegate
    }

    /// Background tick: every driver updates its models (PilotScope's
    /// background model updating).
    pub fn tick(&mut self) {
        for driver in self.drivers.values_mut() {
            driver.update_models();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{BaoDriver, CardDriver, LeroDriver};
    use crate::engine_impl::EngineInteractor;
    use learned_qo::framework::OptContext;
    use lqo_card::estimator::FitContext;
    use lqo_card::traditional::SamplingEstimator;
    use lqo_engine::datagen::stats_like;

    fn console() -> (PilotConsole, OptContext) {
        let catalog = Arc::new(stats_like(80, 23).unwrap());
        let ctx = OptContext::new(catalog.clone());
        let interactor = Arc::new(EngineInteractor::new(catalog));
        (PilotConsole::new(interactor), ctx)
    }

    const SQL: &str = "SELECT COUNT(*) FROM users u, posts p \
                       WHERE u.id = p.owner_user_id AND u.reputation > 50";

    #[test]
    fn plain_execution_without_driver() {
        let (mut console, _) = console();
        let out = console.execute_sql(SQL).unwrap();
        assert!(out.count > 0);
        assert_eq!(out.driver, None);
        assert_eq!(console.executed(), 1);
    }

    #[test]
    fn card_driver_injects_and_delegates() {
        let (mut console, ctx) = console();
        let fit = FitContext {
            catalog: ctx.catalog.clone(),
            stats: ctx.stats.clone(),
        };
        let est = Arc::new(SamplingEstimator::fit(&fit));
        console
            .register_driver(Box::new(CardDriver::new(est)))
            .unwrap();
        console.start_driver(Some("learned-cardinality")).unwrap();
        let with_driver = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.driver.as_deref(), Some("learned-cardinality"));
        // Same answer as plain execution: steering never changes results.
        console.start_driver(None).unwrap();
        let plain = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.count, plain.count);
    }

    #[test]
    fn bao_and_lero_drivers_run_and_learn() {
        let (mut console, ctx) = console();
        console
            .register_driver(Box::new(BaoDriver::new(ctx.clone())))
            .unwrap();
        console
            .register_driver(Box::new(LeroDriver::new(ctx)))
            .unwrap();
        let mut names = console.driver_names();
        names.sort();
        assert_eq!(names, vec!["bao", "lero"]);

        for driver in ["bao", "lero"] {
            console.start_driver(Some(driver)).unwrap();
            let out = console.execute_sql(SQL).unwrap();
            assert!(out.count > 0, "{driver}");
            assert_eq!(out.driver.as_deref(), Some(driver));
        }
        console.tick(); // background updates must not panic
    }

    #[test]
    fn parallel_exec_mode_preserves_results_and_work() {
        let (serial_out, parallel_out) = {
            let (mut serial, _) = console();
            let s = serial.execute_sql(SQL).unwrap();
            let (parallel, _) = console();
            let mut parallel = parallel.with_exec_mode(ExecMode::Parallel { threads: 4 });
            let p = parallel.execute_sql(SQL).unwrap();
            (s, p)
        };
        assert_eq!(serial_out.count, parallel_out.count);
        assert_eq!(serial_out.work.to_bits(), parallel_out.work.to_bits());
    }

    #[test]
    fn batched_exec_mode_preserves_results_and_work() {
        let (mut serial, _) = console();
        let s = serial.execute_sql(SQL).unwrap();
        let modes = [
            ExecMode::Batched { batch_size: 64 },
            ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 64,
            },
        ];
        for mode in modes {
            let (batched, _) = console();
            let mut batched = batched.with_exec_mode(mode);
            let b = batched.execute_sql(SQL).unwrap();
            assert_eq!(s.count, b.count, "{mode}");
            assert_eq!(s.work.to_bits(), b.work.to_bits(), "{mode}");
        }
    }

    #[test]
    fn reopt_console_preserves_results_and_untriggered_work() {
        let (mut plain, _) = console();
        let base = plain.execute_sql(SQL).unwrap();
        let (reopt, _) = console();
        // Default thresholds won't trip on a well-estimated workload, so
        // the checkpointed path must match the plain one bit for bit.
        let mut reopt = reopt.with_reopt(lqo_reopt::ReoptConfig::default());
        let out = reopt.execute_sql(SQL).unwrap();
        assert_eq!(out.count, base.count);
        assert_eq!(out.work.to_bits(), base.work.to_bits());
    }

    #[test]
    fn unknown_driver_is_rejected() {
        let (mut console, _) = console();
        assert!(console.start_driver(Some("nope")).is_err());
    }

    /// A driver whose `algo` panics on every call and whose feedback hook
    /// panics too — the worst-behaved learned component possible.
    struct HostileDriver;
    impl Driver for HostileDriver {
        fn name(&self) -> &str {
            "hostile"
        }
        fn init(
            &mut self,
            _i: &dyn crate::interactor::DbInteractor,
            _s: crate::interactor::SessionId,
        ) -> Result<()> {
            Ok(())
        }
        fn algo(
            &mut self,
            _i: &dyn crate::interactor::DbInteractor,
            _s: crate::interactor::SessionId,
            _q: &lqo_engine::SpjQuery,
        ) -> Result<DriverDecision> {
            panic!("injected driver panic");
        }
        fn collect(&mut self, _feedback: &ExecFeedback) {
            panic!("injected feedback panic");
        }
    }

    #[test]
    fn panicking_driver_is_contained_and_circuit_broken() {
        let baseline = {
            let (mut plain, _) = console();
            plain.execute_sql(SQL).unwrap().count
        };
        let (guarded, _) = console();
        let obs = ObsContext::enabled();
        let mut guarded = guarded.with_obs(obs.clone()).with_driver_guard(
            Some(Duration::from_millis(250)),
            BreakerConfig {
                failure_threshold: 2,
                cooldown_calls: 3,
                max_backoff_level: 2,
            },
        );
        guarded.register_driver(Box::new(HostileDriver)).unwrap();
        guarded.start_driver(Some("hostile")).unwrap();

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
                                                // Every query succeeds with the correct answer despite the driver.
        for _ in 0..6 {
            let out = guarded.execute_sql(SQL).unwrap();
            assert_eq!(out.count, baseline);
            assert_eq!(out.decision, None, "no successful decision exists");
        }
        std::panic::set_hook(prev);
        // Queries 1-2 panic and open the breaker; 3-5 are skipped while
        // the cooldown ticks; query 6 is the half-open probe, panics, and
        // re-opens it — two open transitions in total.
        assert_eq!(guarded.breaker_state("hostile"), Some(BreakerState::Open));
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.guard.breaker_opens"), Some(2));
        // 3 algo panics plus 6 contained feedback panics.
        assert_eq!(snap.counter("lqo.guard.faults"), Some(9));
        assert_eq!(snap.counter("lqo.guard.skips"), Some(3));
        // The guard events landed on the traces.
        let traces = obs.finished_traces();
        assert!(traces
            .iter()
            .flat_map(|t| t.guard.iter())
            .any(|g| g.component == "driver:hostile" && g.fault == "panic"));
        assert!(traces
            .iter()
            .flat_map(|t| t.guard.iter())
            .any(|g| g.fault == "breaker-open" && g.action == "delegate"));
    }

    #[test]
    fn flight_recorder_captures_breaker_incident_bundle() {
        let (console_, _) = console();
        let obs = ObsContext::enabled();
        let flight = FlightContext::new(lqo_flight::FlightConfig::default(), obs.clone());
        let mut console_ = console_
            .with_obs(obs.clone())
            .with_flight(flight.clone())
            .with_driver_guard(
                Some(Duration::from_millis(250)),
                BreakerConfig {
                    failure_threshold: 2,
                    cooldown_calls: 3,
                    max_backoff_level: 2,
                },
            );
        console_.register_driver(Box::new(HostileDriver)).unwrap();
        console_.start_driver(Some("hostile")).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..2 {
            console_.execute_sql(SQL).unwrap();
        }
        std::panic::set_hook(prev);
        // Query 2 opened the breaker: exactly one bundle, finalized with
        // the finished trace and populated with the query's ring events.
        let bundles = console_.flight().take_bundles();
        assert_eq!(bundles.len(), 1);
        let b = &bundles[0];
        assert!(b.is_well_formed(), "{b:?}");
        assert_eq!(b.trigger, "breaker-open:driver:hostile");
        let trace = b.trace.as_ref().expect("bundle carries the query trace");
        assert!(trace.guard.iter().any(|g| g.fault == "panic"));
        assert!(
            b.events.iter().any(
                |r| matches!(&r.event, FlightEvent::Span { name, .. } if name == "exec.query")
            ),
            "executor spans reached the ring: {:?}",
            b.events
        );
        assert!(b
            .events
            .iter()
            .any(|r| matches!(&r.event, FlightEvent::Breaker { state, .. } if state == "open")));
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.flight.bundles"), Some(1));
        assert!(snap.counter("lqo.flight.events").unwrap_or(0) > 0);
    }

    #[test]
    fn watch_monitor_sees_traces_and_breaker_state() {
        use lqo_watch::{HealthState, WatchConfig};

        let baseline = {
            let (mut plain, _) = console();
            plain.execute_sql(SQL).unwrap().count
        };
        let (console_, ctx) = console();
        let obs = ObsContext::enabled();
        let watch = Arc::new(ModelHealthMonitor::new(WatchConfig::default()).with_obs(obs.clone()));
        let mut console_ = console_
            .with_obs(obs.clone())
            .with_watch(watch.clone())
            .with_driver_guard(
                Some(Duration::from_millis(250)),
                BreakerConfig {
                    failure_threshold: 2,
                    cooldown_calls: 3,
                    max_backoff_level: 2,
                },
            );
        let fit = FitContext {
            catalog: ctx.catalog.clone(),
            stats: ctx.stats.clone(),
        };
        let est = Arc::new(SamplingEstimator::fit(&fit));
        console_
            .register_driver(Box::new(CardDriver::new(est)))
            .unwrap();
        console_.register_driver(Box::new(HostileDriver)).unwrap();

        // Healthy driver: traces flow into the monitor.
        console_.start_driver(Some("learned-cardinality")).unwrap();
        for _ in 0..4 {
            assert_eq!(console_.execute_sql(SQL).unwrap().count, baseline);
        }
        let report = watch.report();
        assert!(!report.components.is_empty());
        assert!(report.slo.plan.count >= 4, "plan SLO saw the queries");
        assert_eq!(report.overall(), HealthState::Healthy);

        // Hostile driver: panics open the breaker; the monitor both sees
        // the guard events on traces and the reported breaker state.
        console_.start_driver(Some("hostile")).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..3 {
            assert_eq!(console_.execute_sql(SQL).unwrap().count, baseline);
        }
        std::panic::set_hook(prev);
        assert_eq!(console_.breaker_state("hostile"), Some(BreakerState::Open));
        let stats = console_.breaker_stats("hostile").unwrap();
        assert_eq!(stats.opens, 1);
        assert_eq!(
            watch.health("driver:hostile"),
            Some(HealthState::Degrading),
            "open breaker degrades the driver component"
        );
        let hostile = watch
            .report()
            .components
            .into_iter()
            .find(|c| c.name == "driver:hostile")
            .unwrap();
        assert!(hostile.guard_faults >= 2, "guard events correlated");
        assert_eq!(hostile.breaker_state, 2.0);
        // The decision-latency histogram (microseconds) recorded the
        // healthy driver's decisions.
        let snap = obs.metrics().unwrap().snapshot();
        let us = snap
            .histogram("lqo.pilot.decision_us")
            .expect("decision_us");
        assert!(us.count() >= 4);
    }

    #[test]
    fn cached_console_execution_is_transparent() {
        let (mut plain, _) = console();
        let (cached, _) = console();
        let cache = Arc::new(LqoCache::default());
        let mut cached = cached.with_cache(cache.clone());
        for _ in 0..3 {
            let p = plain.execute_sql(SQL).unwrap();
            let c = cached.execute_sql(SQL).unwrap();
            assert_eq!(p.count, c.count);
            assert_eq!(p.work.to_bits(), c.work.to_bits());
        }
        let stats = cache.stats();
        assert!(stats.plan_hits >= 2, "{stats:?}");
        assert!(
            stats.card_misses > 0,
            "inference cache was populated: {stats:?}"
        );
    }

    #[test]
    fn healthy_watch_traffic_leaves_cache_intact() {
        let (console_, _) = console();
        let obs = ObsContext::enabled();
        let watch = Arc::new(ModelHealthMonitor::new(lqo_watch::WatchConfig::default()));
        let cache = Arc::new(LqoCache::default());
        let mut console_ = console_
            .with_obs(obs.clone())
            .with_watch(watch.clone())
            .with_cache(cache.clone());
        for _ in 0..4 {
            console_.execute_sql(SQL).unwrap();
        }
        // The drift hook ran on every finished trace (healthy verdicts),
        // and a healthy system never loses its cache entries to it.
        assert_eq!(cache.stats().card_invalidations, 0);
        assert_eq!(cache.stats().plan_invalidations, 0);
        assert!(cache.plan_len() >= 1);
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.cache.drift_invalidations"), None);
        assert!(snap.counter("lqo.cache.plan.hits").unwrap_or(0) >= 3);
    }

    #[test]
    fn breaker_open_invalidates_cached_plans() {
        let (console_, _) = console();
        let obs = ObsContext::enabled();
        let cache = Arc::new(LqoCache::default());
        let mut console_ = console_
            .with_obs(obs.clone())
            .with_cache(cache.clone())
            .with_driver_guard(
                Some(Duration::from_millis(250)),
                BreakerConfig {
                    failure_threshold: 2,
                    cooldown_calls: 3,
                    max_backoff_level: 2,
                },
            );
        console_.register_driver(Box::new(HostileDriver)).unwrap();
        // Warm the plan cache without a driver.
        console_.execute_sql(SQL).unwrap();
        assert_eq!(cache.plan_len(), 1);
        console_.start_driver(Some("hostile")).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..2 {
            console_.execute_sql(SQL).unwrap(); // panics -> breaker opens
        }
        std::panic::set_hook(prev);
        assert_eq!(console_.breaker_state("hostile"), Some(BreakerState::Open));
        // The open transition purged cached plans (the second query
        // re-populates after delegating, which is fine).
        assert!(cache.stats().plan_invalidations >= 1, "{:?}", cache.stats());
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.cache.breaker_invalidations"), Some(1));
    }

    #[test]
    fn profiler_threads_through_console_phases_and_cache_counters() {
        let (console_, _) = console();
        let prof = ProfContext::enabled();
        let cache = Arc::new(LqoCache::default());
        let mut console_ = console_.with_cache(cache).with_prof(prof.clone());
        for _ in 0..3 {
            console_.execute_sql(SQL).unwrap();
        }
        // One profile per query, and the hierarchical phase tree covers
        // the whole pipeline: parse, plan (with enumeration and estimator
        // attribution nested under it), and execution.
        let profiles = prof.take_finished();
        assert_eq!(profiles.len(), 3);
        let total = prof.total();
        for path in [
            "parse",
            "plan",
            "plan;enumerate",
            "plan;enumerate;estimate",
            "execute",
        ] {
            assert!(total.frames.contains_key(path), "missing frame {path}");
        }
        // The plan cache served the two repeats; the profiler's exact
        // counters separate that from genuine optimizations.
        let counters = prof.counters();
        assert_eq!(counters.get("plan_cache_misses"), Some(&1));
        assert_eq!(counters.get("plan_cache_hits"), Some(&2));
        assert!(prof.estimator_calls() > 0);
    }

    #[test]
    fn breaker_recovers_after_cooldown_probe() {
        struct FlakyDriver {
            calls: usize,
        }
        impl Driver for FlakyDriver {
            fn name(&self) -> &str {
                "flaky"
            }
            fn init(
                &mut self,
                _i: &dyn crate::interactor::DbInteractor,
                _s: crate::interactor::SessionId,
            ) -> Result<()> {
                Ok(())
            }
            fn algo(
                &mut self,
                _i: &dyn crate::interactor::DbInteractor,
                _s: crate::interactor::SessionId,
                _q: &lqo_engine::SpjQuery,
            ) -> Result<DriverDecision> {
                self.calls += 1;
                if self.calls <= 2 {
                    panic!("transient failure");
                }
                Ok(DriverDecision::Delegate)
            }
        }
        let (console, _) = console();
        let mut console = console.with_driver_guard(
            None,
            BreakerConfig {
                failure_threshold: 2,
                cooldown_calls: 2,
                max_backoff_level: 2,
            },
        );
        console
            .register_driver(Box::new(FlakyDriver { calls: 0 }))
            .unwrap();
        console.start_driver(Some("flaky")).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..2 {
            console.execute_sql(SQL).unwrap(); // panics -> breaker opens
        }
        std::panic::set_hook(prev);
        assert_eq!(console.breaker_state("flaky"), Some(BreakerState::Open));
        for _ in 0..2 {
            console.execute_sql(SQL).unwrap(); // cooldown ticks
        }
        assert_eq!(console.breaker_state("flaky"), Some(BreakerState::HalfOpen));
        let out = console.execute_sql(SQL).unwrap(); // successful probe
        assert!(out.decision.is_some());
        assert_eq!(console.breaker_state("flaky"), Some(BreakerState::Closed));
    }
}
