//! The PilotScope console: registers drivers, manages sessions, routes
//! SQL through the active driver, and runs background model updates.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lqo_engine::query::parse_query;
use lqo_engine::{EngineError, Result};
use lqo_obs::trace::QueryOutcome;
use lqo_obs::ObsContext;
use serde::Serialize;

use crate::driver::{Driver, DriverDecision, ExecFeedback};
use crate::interactor::{DbInteractor, PullReply, PullRequest, SessionId};

/// Result of executing SQL through the console.
#[derive(Debug, Clone, Serialize)]
pub struct ExecOutcome {
    /// Count-star result.
    pub count: u64,
    /// Work units spent.
    pub work: f64,
    /// Wall-clock time.
    pub wall: Duration,
    /// Which driver steered the query (`None` = plain database).
    pub driver: Option<String>,
    /// Time the driver spent deciding how to steer this query (`None`
    /// when no driver was active).
    pub decision: Option<Duration>,
}

/// The console operating the middleware.
pub struct PilotConsole {
    interactor: Arc<dyn DbInteractor>,
    drivers: HashMap<String, Box<dyn Driver>>,
    active: Option<String>,
    session: SessionId,
    executed: usize,
    obs: ObsContext,
}

impl PilotConsole {
    /// Connect a console to a database through its interactor.
    pub fn new(interactor: Arc<dyn DbInteractor>) -> PilotConsole {
        let session = interactor.open_session();
        PilotConsole {
            interactor,
            drivers: HashMap::new(),
            active: None,
            session,
            executed: 0,
            obs: ObsContext::disabled(),
        }
    }

    /// Attach an observability context: each `execute_sql` call becomes
    /// one query trace (parse/plan/execute/feedback phases, driver
    /// attribution, planner and operator provenance), and the context is
    /// propagated down to the interactor's optimizer and executor.
    pub fn with_obs(self, obs: ObsContext) -> PilotConsole {
        self.interactor.attach_obs(&obs);
        PilotConsole { obs, ..self }
    }

    /// The console's observability context.
    pub fn obs(&self) -> &ObsContext {
        &self.obs
    }

    /// Register a driver under its own name, calling its `init`.
    pub fn register_driver(&mut self, mut driver: Box<dyn Driver>) -> Result<()> {
        driver.init(self.interactor.as_ref(), self.session)?;
        self.drivers.insert(driver.name().to_string(), driver);
        Ok(())
    }

    /// Start (activate) a driver; `None` reverts to the plain database.
    pub fn start_driver(&mut self, name: Option<&str>) -> Result<()> {
        if let Some(n) = name {
            if !self.drivers.contains_key(n) {
                return Err(EngineError::InvalidPlan(format!("unknown driver {n}")));
            }
        }
        self.active = name.map(str::to_string);
        Ok(())
    }

    /// Registered driver names.
    pub fn driver_names(&self) -> Vec<&str> {
        self.drivers.keys().map(String::as_str).collect()
    }

    /// Queries executed through this console.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Execute a SQL string. The active driver (if any) steers planning;
    /// execution feedback is delivered back to it for training.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.obs.begin_query(sql);
        let query = self.obs.phase("parse", || parse_query(sql))?;
        let mut decision_latency = None;
        let decision = match &self.active {
            Some(name) => {
                let driver = self.drivers.get_mut(name).expect("active driver exists");
                let start = Instant::now();
                let decision = driver.algo(self.interactor.as_ref(), self.session, &query)?;
                decision_latency = Some(start.elapsed());
                decision
            }
            None => DriverDecision::Delegate,
        };
        if self.obs.is_enabled() {
            let driver = self.active.clone();
            let decision_ns = decision_latency.map(|d| d.as_nanos() as u64);
            self.obs.with_query(|t| {
                t.driver = driver;
                t.decision_ns = decision_ns;
            });
            if let Some(ns) = decision_ns {
                self.obs.observe("lqo.pilot.decision_ns", ns as f64);
            }
        }
        let request = match decision {
            DriverDecision::Plan(plan) => PullRequest::ExecutePlan(query.clone(), plan),
            DriverDecision::Delegate => PullRequest::Execute(query.clone()),
        };
        let reply = self
            .obs
            .phase("execute", || self.interactor.pull(self.session, request));
        let PullReply::Execution {
            count,
            work,
            wall,
            plan,
        } = (match reply {
            Ok(r) => r,
            Err(e) => {
                self.obs.end_query();
                return Err(e);
            }
        })
        else {
            self.obs.end_query();
            return Err(EngineError::InvalidPlan("expected execution reply".into()));
        };
        self.executed += 1;
        if let Some(name) = &self.active {
            let feedback = ExecFeedback {
                query,
                plan,
                count,
                work,
                wall,
            };
            self.obs.phase("feedback", || {
                self.drivers
                    .get_mut(name)
                    .expect("active driver exists")
                    .collect(&feedback)
            });
        }
        if self.obs.is_enabled() {
            self.obs.count("lqo.pilot.queries", 1);
            self.obs.with_query(|t| {
                t.outcome = Some(QueryOutcome {
                    count,
                    work,
                    wall_ns: wall.as_nanos() as u64,
                });
                t.join_estimates();
            });
            self.obs.end_query();
        }
        Ok(ExecOutcome {
            count,
            work,
            wall,
            driver: self.active.clone(),
            decision: decision_latency,
        })
    }

    /// Background tick: every driver updates its models (PilotScope's
    /// background model updating).
    pub fn tick(&mut self) {
        for driver in self.drivers.values_mut() {
            driver.update_models();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{BaoDriver, CardDriver, LeroDriver};
    use crate::engine_impl::EngineInteractor;
    use learned_qo::framework::OptContext;
    use lqo_card::estimator::FitContext;
    use lqo_card::traditional::SamplingEstimator;
    use lqo_engine::datagen::stats_like;

    fn console() -> (PilotConsole, OptContext) {
        let catalog = Arc::new(stats_like(80, 23).unwrap());
        let ctx = OptContext::new(catalog.clone());
        let interactor = Arc::new(EngineInteractor::new(catalog));
        (PilotConsole::new(interactor), ctx)
    }

    const SQL: &str = "SELECT COUNT(*) FROM users u, posts p \
                       WHERE u.id = p.owner_user_id AND u.reputation > 50";

    #[test]
    fn plain_execution_without_driver() {
        let (mut console, _) = console();
        let out = console.execute_sql(SQL).unwrap();
        assert!(out.count > 0);
        assert_eq!(out.driver, None);
        assert_eq!(console.executed(), 1);
    }

    #[test]
    fn card_driver_injects_and_delegates() {
        let (mut console, ctx) = console();
        let fit = FitContext {
            catalog: ctx.catalog.clone(),
            stats: ctx.stats.clone(),
        };
        let est = Arc::new(SamplingEstimator::fit(&fit));
        console
            .register_driver(Box::new(CardDriver::new(est)))
            .unwrap();
        console.start_driver(Some("learned-cardinality")).unwrap();
        let with_driver = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.driver.as_deref(), Some("learned-cardinality"));
        // Same answer as plain execution: steering never changes results.
        console.start_driver(None).unwrap();
        let plain = console.execute_sql(SQL).unwrap();
        assert_eq!(with_driver.count, plain.count);
    }

    #[test]
    fn bao_and_lero_drivers_run_and_learn() {
        let (mut console, ctx) = console();
        console
            .register_driver(Box::new(BaoDriver::new(ctx.clone())))
            .unwrap();
        console
            .register_driver(Box::new(LeroDriver::new(ctx)))
            .unwrap();
        let mut names = console.driver_names();
        names.sort();
        assert_eq!(names, vec!["bao", "lero"]);

        for driver in ["bao", "lero"] {
            console.start_driver(Some(driver)).unwrap();
            let out = console.execute_sql(SQL).unwrap();
            assert!(out.count > 0, "{driver}");
            assert_eq!(out.driver.as_deref(), Some(driver));
        }
        console.tick(); // background updates must not panic
    }

    #[test]
    fn unknown_driver_is_rejected() {
        let (mut console, _) = console();
        assert!(console.start_driver(Some("nope")).is_err());
    }
}
