//! The driver programming model: `init()` + `algo()` plus training-data
//! collection and background model updates.

use std::time::Duration;

use lqo_engine::{PhysNode, Result, SpjQuery};

use crate::interactor::{DbInteractor, SessionId};

/// What a driver decides for one query.
#[derive(Debug, Clone)]
pub enum DriverDecision {
    /// Execute this specific plan.
    Plan(PhysNode),
    /// Let the (possibly steered) database plan by itself — e.g. after
    /// the cardinality driver has batch-injected its estimates.
    Delegate,
}

/// Execution feedback delivered to the active driver after every query —
/// the pre-defined training data PilotScope collects.
#[derive(Debug, Clone)]
pub struct ExecFeedback {
    /// The executed query.
    pub query: SpjQuery,
    /// The executed plan.
    pub plan: PhysNode,
    /// Count-star result.
    pub count: u64,
    /// Work units spent.
    pub work: f64,
    /// Wall-clock time.
    pub wall: Duration,
}

/// An AI4DB task packaged as a driver.
pub trait Driver: Send {
    /// Driver name (console registry key).
    fn name(&self) -> &str;

    /// Preparation: the driver declares itself ready and may pull
    /// statistics or warm its models through the interactor.
    fn init(&mut self, interactor: &dyn DbInteractor, session: SessionId) -> Result<()>;

    /// The AI4DB algorithm: steer the database through push/pull and
    /// decide how the query is planned.
    fn algo(
        &mut self,
        interactor: &dyn DbInteractor,
        session: SessionId,
        query: &SpjQuery,
    ) -> Result<DriverDecision>;

    /// Collect training data from an execution (default: ignore).
    fn collect(&mut self, _feedback: &ExecFeedback) {}

    /// Background model update (invoked by the console's `tick`).
    fn update_models(&mut self) {}
}
