//! The `lqo-engine` implementation of the DB interactor — the
//! "lightweight patch" a real deployment would apply to the database
//! kernel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use lqo_cache::{plan_key, LqoCache, MemoCardSource, OptMemo, PlannedQuery};
use lqo_engine::optimizer::{CardSource, InjectedCardSource, ScaledCardSource};
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{
    Catalog, EngineError, ExecConfig, ExecMode, Executor, HintSet, Optimizer, PhysNode, Result,
    SpjQuery, TraditionalCardSource, TrueCardOracle,
};
use lqo_flight::FlightContext;
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;
use lqo_reopt::{ReoptConfig, ReoptExecutor};

use crate::interactor::{DbInteractor, PullReply, PullRequest, PushAction, SessionId};

struct SessionState {
    injected: Arc<InjectedCardSource>,
    hints: HintSet,
    scaling: f64,
}

/// Interactor over an in-process `lqo-engine` database.
pub struct EngineInteractor {
    catalog: Arc<Catalog>,
    base_card: Arc<dyn CardSource>,
    /// What new sessions' injection layers fall back to: the raw base
    /// estimator, or — once a cache is attached — the base wrapped in a
    /// cross-query [`MemoCardSource`].
    session_base: Mutex<Arc<dyn CardSource>>,
    oracle: Arc<TrueCardOracle>,
    sessions: Mutex<HashMap<SessionId, SessionState>>,
    next_session: AtomicU64,
    obs: Mutex<ObsContext>,
    prof: Mutex<ProfContext>,
    flight: Mutex<FlightContext>,
    exec_mode: Mutex<ExecMode>,
    cache: Mutex<Option<Arc<LqoCache>>>,
    reopt: Mutex<Option<ReoptConfig>>,
    /// Work budget per execution (timeout stand-in).
    pub max_work: Option<f64>,
}

impl EngineInteractor {
    /// Attach to a catalog.
    pub fn new(catalog: Arc<Catalog>) -> EngineInteractor {
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let base_card: Arc<dyn CardSource> =
            Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
        let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
        EngineInteractor {
            catalog,
            session_base: Mutex::new(base_card.clone()),
            base_card,
            oracle,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            obs: Mutex::new(ObsContext::disabled()),
            prof: Mutex::new(ProfContext::disabled()),
            flight: Mutex::new(FlightContext::disabled()),
            exec_mode: Mutex::new(ExecMode::Serial),
            cache: Mutex::new(None),
            reopt: Mutex::new(None),
            max_work: Some(1e10),
        }
    }

    fn obs(&self) -> ObsContext {
        self.obs.lock().clone()
    }

    fn prof(&self) -> ProfContext {
        self.prof.lock().clone()
    }

    fn flight(&self) -> FlightContext {
        self.flight.lock().clone()
    }

    /// The currently selected execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        *self.exec_mode.lock()
    }

    /// The underlying catalog (the console needs it for parsing checks).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    fn with_session<T>(
        &self,
        session: SessionId,
        f: impl FnOnce(&mut SessionState) -> T,
    ) -> Result<T> {
        let mut sessions = self.sessions.lock();
        let state = sessions
            .get_mut(&session)
            .ok_or_else(|| EngineError::InvalidPlan(format!("unknown session {session:?}")))?;
        Ok(f(state))
    }

    /// The session's effective cardinality source (injections over the
    /// base estimator, then scaling).
    fn session_card(&self, session: SessionId) -> Result<(Arc<dyn CardSource>, HintSet)> {
        self.with_session(session, |s| {
            let injected: Arc<dyn CardSource> = s.injected.clone();
            let card: Arc<dyn CardSource> = if (s.scaling - 1.0).abs() > 1e-12 {
                Arc::new(ScaledCardSource::new(injected, s.scaling))
            } else {
                injected
            };
            (card, s.hints.clone())
        })
    }

    /// Whether the session's cardinalities are steered (injections or
    /// scaling in force). Hints do not count: they are part of the
    /// plan-cache key.
    fn session_steered(&self, session: SessionId) -> Result<bool> {
        self.with_session(session, |s| {
            !s.injected.is_empty() || (s.scaling - 1.0).abs() > 1e-12
        })
    }

    /// Optimize `query` under the session's steering, going through the
    /// plan cache when one is attached and the session is unsteered.
    /// The cached plan is byte-identical to what optimization would
    /// produce: entries are keyed by canonical query form, hint label,
    /// and estimator name, and dropped whenever the stats epoch moves or
    /// drift/breaker signals fire.
    fn plan_query(
        &self,
        session: SessionId,
        query: &SpjQuery,
        card: &Arc<dyn CardSource>,
        hints: &HintSet,
        obs: &ObsContext,
    ) -> Result<(PhysNode, f64)> {
        let prof = self.prof();
        let _prof_plan = prof.phase("plan");
        let optimizer = Optimizer::with_defaults(&self.catalog)
            .with_obs(obs.clone())
            .with_prof(prof.clone())
            .with_flight(self.flight());
        let Some(cache) = self.cache.lock().clone() else {
            let choice = optimizer.optimize(query, card.as_ref(), hints)?;
            return Ok((choice.plan, choice.cost));
        };
        // With a cache attached, every optimization gets a fresh
        // per-call memo: the greedy enumerator re-queries the same
        // subsets repeatedly, and even DP probes each set once per
        // candidate split. The memo lives only for this call, so raw
        // set-bit keys are sound.
        if self.session_steered(session)? {
            cache.plan_bypass("steered");
            prof.bump("plan_cache_bypasses", 1);
            let memo = OptMemo::new(card.as_ref());
            let choice = optimizer.optimize(query, &memo, hints)?;
            return Ok((choice.plan, choice.cost));
        }
        let source = self.base_card.name().to_string();
        let key = plan_key(query, &hints.label(), &source);
        if let Some(hit) = cache.plan_lookup(&key) {
            prof.bump("plan_cache_hits", 1);
            return Ok((hit.plan, hit.cost));
        }
        prof.bump("plan_cache_misses", 1);
        let memo = OptMemo::new(card.as_ref());
        let choice = optimizer.optimize(query, &memo, hints)?;
        cache.plan_store(
            key,
            PlannedQuery {
                plan: choice.plan.clone(),
                cost: choice.cost,
            },
            &source,
        );
        Ok((choice.plan, choice.cost))
    }
}

impl DbInteractor for EngineInteractor {
    fn open_session(&self) -> SessionId {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        let base = self.session_base.lock().clone();
        self.sessions.lock().insert(
            id,
            SessionState {
                injected: Arc::new(InjectedCardSource::new(base)),
                hints: HintSet::default(),
                scaling: 1.0,
            },
        );
        id
    }

    fn close_session(&self, session: SessionId) {
        self.sessions.lock().remove(&session);
    }

    fn push(&self, session: SessionId, action: PushAction) -> Result<()> {
        self.with_session(session, |s| match action {
            PushAction::InjectCardinality { query, set, card } => {
                s.injected.inject(&query, set, card);
            }
            PushAction::SetHints(h) => s.hints = h,
            PushAction::SetCardScaling(f) => s.scaling = f,
            PushAction::ClearInjections => s.injected.clear(),
            PushAction::ResetSteering => {
                s.hints = HintSet::default();
                s.scaling = 1.0;
            }
        })
    }

    fn pull(&self, session: SessionId, request: PullRequest) -> Result<PullReply> {
        match request {
            PullRequest::Plan(query) => {
                query.validate(&self.catalog)?;
                let (card, hints) = self.session_card(session)?;
                let (plan, cost) = self.plan_query(session, &query, &card, &hints, &self.obs())?;
                Ok(PullReply::Plan { plan, cost })
            }
            PullRequest::Execute(query) => {
                query.validate(&self.catalog)?;
                let (card, hints) = self.session_card(session)?;
                let obs = self.obs();
                let (plan, _cost) = obs.phase("plan", || {
                    self.plan_query(session, &query, &card, &hints, &obs)
                })?;
                self.pull(session, PullRequest::ExecutePlan(query, plan))
            }
            PullRequest::ExecutePlan(query, plan) => {
                let exec_config = ExecConfig {
                    max_work: self.max_work,
                    mode: self.exec_mode(),
                    ..Default::default()
                };
                let reopt_cfg = self.reopt.lock().clone();
                let result = if let Some(cfg) = reopt_cfg {
                    // Checkpointed execution: q-errors are measured
                    // against the session's own estimator stack (the one
                    // the plan was built on), so a steered session
                    // re-plans against its steering.
                    let (card, hints) = self.session_card(session)?;
                    let mut reopt = ReoptExecutor::new(&self.catalog, exec_config, card, cfg)
                        .with_obs(self.obs())
                        .with_prof(self.prof())
                        .with_flight(self.flight())
                        .with_hints(hints);
                    if let Some(cache) = self.cache.lock().clone() {
                        reopt = reopt.with_cache(cache);
                    }
                    reopt.execute(&query, &plan)?
                } else {
                    Executor::new(&self.catalog, exec_config)
                        .with_obs(self.obs())
                        .with_prof(self.prof())
                        .with_flight(self.flight())
                        .execute(&query, &plan)?
                };
                Ok(PullReply::Execution {
                    count: result.count,
                    work: result.work,
                    wall: result.wall,
                    plan,
                })
            }
            PullRequest::TableRows(name) => {
                let table = self.catalog.table(&name)?;
                Ok(PullReply::Scalar(table.nrows() as f64))
            }
            PullRequest::TrueCardinality(query, set) => {
                let card = self.oracle.true_card(&query, set)?;
                Ok(PullReply::Scalar(card as f64))
            }
        }
    }

    fn attach_obs(&self, obs: &ObsContext) {
        *self.obs.lock() = obs.clone();
    }

    fn attach_prof(&self, prof: &ProfContext) {
        *self.prof.lock() = prof.clone();
    }

    fn attach_flight(&self, flight: &FlightContext) {
        *self.flight.lock() = flight.clone();
    }

    fn set_exec_mode(&self, mode: ExecMode) {
        *self.exec_mode.lock() = mode;
    }

    fn attach_cache(&self, cache: &Arc<LqoCache>) {
        let memo: Arc<dyn CardSource> =
            Arc::new(MemoCardSource::new(self.base_card.clone(), cache.clone()));
        *self.session_base.lock() = memo.clone();
        // Rebuild existing sessions' injection layers over the memoized
        // base. Injections are per-session steering state and are dropped
        // here — attach the cache before steering (see the trait docs).
        let mut sessions = self.sessions.lock();
        for s in sessions.values_mut() {
            s.injected = Arc::new(InjectedCardSource::new(memo.clone()));
        }
        *self.cache.lock() = Some(cache.clone());
    }

    fn set_reopt(&self, cfg: Option<ReoptConfig>) {
        *self.reopt.lock() = cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::query::parse_query;
    use lqo_engine::TableSet;

    fn setup() -> (EngineInteractor, lqo_engine::SpjQuery) {
        let catalog = Arc::new(stats_like(80, 17).unwrap());
        let q = parse_query(
            "SELECT COUNT(*) FROM users u, posts p \
             WHERE u.id = p.owner_user_id AND u.reputation > 50",
        )
        .unwrap();
        (EngineInteractor::new(catalog), q)
    }

    #[test]
    fn sessions_are_isolated() {
        let (ix, q) = setup();
        let s1 = ix.open_session();
        let s2 = ix.open_session();
        assert_ne!(s1, s2);
        ix.push(
            s1,
            PushAction::InjectCardinality {
                query: q.clone(),
                set: q.all_tables(),
                card: 99999.0,
            },
        )
        .unwrap();
        // s2 is unaffected: both still plan, but with different costs.
        let PullReply::Plan { cost: c1, .. } = ix.pull(s1, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        let PullReply::Plan { cost: c2, .. } = ix.pull(s2, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        assert_ne!(c1, c2);
    }

    #[test]
    fn push_pull_roundtrip_executes() {
        let (ix, q) = setup();
        let s = ix.open_session();
        let PullReply::Execution { count, work, .. } =
            ix.pull(s, PullRequest::Execute(q.clone())).unwrap()
        else {
            panic!()
        };
        assert!(work > 0.0);
        // Execution result matches the oracle.
        let PullReply::Scalar(truth) = ix
            .pull(s, PullRequest::TrueCardinality(q.clone(), q.all_tables()))
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(count as f64, truth);
    }

    #[test]
    fn hints_steer_the_plan() {
        let (ix, q) = setup();
        let s = ix.open_session();
        let PullReply::Plan { plan: free, .. } = ix.pull(s, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        ix.push(
            s,
            PushAction::SetHints(HintSet {
                allow_hash: false,
                allow_merge: false,
                ..HintSet::default()
            }),
        )
        .unwrap();
        let PullReply::Plan { plan: nl_only, .. } =
            ix.pull(s, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        assert_ne!(free.fingerprint(), nl_only.fingerprint());
        ix.push(s, PushAction::ResetSteering).unwrap();
        let PullReply::Plan { plan: back, .. } = ix.pull(s, PullRequest::Plan(q)).unwrap() else {
            panic!()
        };
        assert_eq!(free.fingerprint(), back.fingerprint());
    }

    #[test]
    fn exec_mode_switch_preserves_results() {
        let (ix, q) = setup();
        let s = ix.open_session();
        let PullReply::Execution {
            count: serial_count,
            work: serial_work,
            ..
        } = ix.pull(s, PullRequest::Execute(q.clone())).unwrap()
        else {
            panic!()
        };
        ix.set_exec_mode(ExecMode::Parallel { threads: 4 });
        assert_eq!(ix.exec_mode(), ExecMode::Parallel { threads: 4 });
        let PullReply::Execution { count, work, .. } = ix.pull(s, PullRequest::Execute(q)).unwrap()
        else {
            panic!()
        };
        assert_eq!(count, serial_count);
        assert_eq!(work.to_bits(), serial_work.to_bits());
    }

    #[test]
    fn reopt_untriggered_execution_is_byte_identical() {
        let (ix, q) = setup();
        let s = ix.open_session();
        let PullReply::Plan { plan, .. } = ix.pull(s, PullRequest::Plan(q.clone())).unwrap() else {
            panic!()
        };
        let PullReply::Execution {
            count: n0,
            work: w0,
            ..
        } = ix
            .pull(s, PullRequest::ExecutePlan(q.clone(), plan.clone()))
            .unwrap()
        else {
            panic!()
        };
        // An infinite threshold never triggers: the checkpointed driver
        // must replicate the plain executor exactly.
        ix.set_reopt(Some(ReoptConfig {
            q_error_threshold: f64::INFINITY,
            ..Default::default()
        }));
        let PullReply::Execution { count, work, .. } =
            ix.pull(s, PullRequest::ExecutePlan(q, plan)).unwrap()
        else {
            panic!()
        };
        assert_eq!(count, n0);
        assert_eq!(work.to_bits(), w0.to_bits());
        ix.set_reopt(None);
    }

    #[test]
    fn reopt_recovers_from_poisoned_session_estimate() {
        let (ix, q) = setup();
        let s = ix.open_session();
        let PullReply::Plan { plan, .. } = ix.pull(s, PullRequest::Plan(q.clone())).unwrap() else {
            panic!()
        };
        let PullReply::Execution { count: truth, .. } = ix
            .pull(s, PullRequest::ExecutePlan(q.clone(), plan.clone()))
            .unwrap()
        else {
            panic!()
        };
        // Poison the session's belief about the filtered users scan, then
        // execute with re-optimization armed: the first checkpoint sees
        // the real row count, trips, and whatever happens next must not
        // change the answer.
        ix.push(
            s,
            PushAction::InjectCardinality {
                query: q.clone(),
                set: TableSet::singleton(0),
                card: 1.0,
            },
        )
        .unwrap();
        ix.set_reopt(Some(ReoptConfig {
            q_error_threshold: 4.0,
            confirm_streak: 1,
            ..Default::default()
        }));
        let PullReply::Execution { count, .. } =
            ix.pull(s, PullRequest::ExecutePlan(q, plan)).unwrap()
        else {
            panic!()
        };
        assert_eq!(count, truth);
    }

    #[test]
    fn closed_session_rejects() {
        let (ix, q) = setup();
        let s = ix.open_session();
        ix.close_session(s);
        assert!(ix.pull(s, PullRequest::Plan(q)).is_err());
    }

    #[test]
    fn cache_on_plans_and_results_are_byte_identical() {
        let (plain, q) = setup();
        let (cached, _) = setup();
        let cache = Arc::new(LqoCache::default());
        cached.attach_cache(&cache);
        let sp = plain.open_session();
        let sc = cached.open_session();
        for _ in 0..3 {
            let PullReply::Plan { plan: p0, cost: c0 } =
                plain.pull(sp, PullRequest::Plan(q.clone())).unwrap()
            else {
                panic!()
            };
            let PullReply::Plan { plan: p1, cost: c1 } =
                cached.pull(sc, PullRequest::Plan(q.clone())).unwrap()
            else {
                panic!()
            };
            assert_eq!(p0.fingerprint(), p1.fingerprint());
            assert_eq!(c0.to_bits(), c1.to_bits());
        }
        let PullReply::Execution {
            count: n0,
            work: w0,
            ..
        } = plain.pull(sp, PullRequest::Execute(q.clone())).unwrap()
        else {
            panic!()
        };
        let PullReply::Execution {
            count: n1,
            work: w1,
            ..
        } = cached.pull(sc, PullRequest::Execute(q.clone())).unwrap()
        else {
            panic!()
        };
        assert_eq!(n0, n1);
        assert_eq!(w0.to_bits(), w1.to_bits());
        let stats = cache.stats();
        assert!(
            stats.plan_hits >= 3,
            "repeat plans came from the cache: {stats:?}"
        );
        assert_eq!(stats.plan_bypasses, 0);
        // The plan cache absorbed every repeat, so the estimator ran only
        // once per sub-query. Drop the plans (not the cardinalities):
        // re-optimization is then served from the inference cache.
        cache.on_breaker_open("driver:test");
        let PullReply::Plan { plan: rebuilt, .. } =
            cached.pull(sc, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        let stats = cache.stats();
        assert!(stats.saved_inference_calls() > 0, "{stats:?}");
        let PullReply::Plan { plan: p0, .. } = plain.pull(sp, PullRequest::Plan(q)).unwrap() else {
            panic!()
        };
        assert_eq!(p0.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn steered_sessions_bypass_plan_cache_but_stay_correct() {
        let (ix, q) = setup();
        let cache = Arc::new(LqoCache::default());
        ix.attach_cache(&cache);
        let s = ix.open_session();
        let PullReply::Plan {
            cost: base_cost, ..
        } = ix.pull(s, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        ix.push(
            s,
            PushAction::InjectCardinality {
                query: q.clone(),
                set: q.all_tables(),
                card: 99999.0,
            },
        )
        .unwrap();
        let PullReply::Plan {
            cost: steered_cost, ..
        } = ix.pull(s, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        assert_ne!(base_cost, steered_cost, "injection visible despite cache");
        assert!(cache.stats().plan_bypasses >= 1);
        // Clearing injections restores plan-cache service, bit-identically.
        ix.push(s, PushAction::ClearInjections).unwrap();
        let PullReply::Plan { cost: back, .. } = ix.pull(s, PullRequest::Plan(q)).unwrap() else {
            panic!()
        };
        assert_eq!(base_cost.to_bits(), back.to_bits());
        assert!(cache.stats().plan_hits >= 1);
    }

    #[test]
    fn stats_epoch_bump_recomputes_without_changing_answers() {
        let (ix, q) = setup();
        let cache = Arc::new(LqoCache::default());
        ix.attach_cache(&cache);
        let s = ix.open_session();
        let PullReply::Plan { plan: before, .. } =
            ix.pull(s, PullRequest::Plan(q.clone())).unwrap()
        else {
            panic!()
        };
        cache.bump_stats_epoch();
        let misses_before = cache.stats().plan_misses;
        let PullReply::Plan { plan: after, .. } = ix.pull(s, PullRequest::Plan(q)).unwrap() else {
            panic!()
        };
        // Same catalog, so the recomputed plan matches — but it was a
        // genuine recomputation, not a cache hit.
        assert_eq!(before.fingerprint(), after.fingerprint());
        assert_eq!(cache.stats().plan_misses, misses_before + 1);
    }

    #[test]
    fn table_rows_pull() {
        let (ix, _) = setup();
        let s = ix.open_session();
        let PullReply::Scalar(rows) = ix.pull(s, PullRequest::TableRows("users".into())).unwrap()
        else {
            panic!()
        };
        assert_eq!(rows, 80.0);
        assert!(ix.pull(s, PullRequest::TableRows("nope".into())).is_err());
        let _ = TableSet::EMPTY;
    }
}
