//! Bundled drivers: the learned-cardinality driver and the Bao and Lero
//! end-to-end optimizer drivers the paper's demonstration walks through.

use std::sync::Arc;

use learned_qo::framework::{CandidatePlan, ExecutionSample, OptContext, RiskModel};
use learned_qo::risk::{PairwiseTcnnRisk, PointwiseTcnnRisk};
use lqo_card::CardEstimator;
use lqo_engine::query::JoinGraph;
use lqo_engine::{HintSet, Result, SpjQuery};

use crate::driver::{Driver, DriverDecision, ExecFeedback};
use crate::interactor::{DbInteractor, PullReply, PullRequest, PushAction, SessionId};

/// The learned-cardinality-estimator driver: one driver supports *any*
/// estimation method (exactly the paper's claim) by batch-injecting the
/// estimator's sub-query cardinalities and then delegating planning to
/// the database.
pub struct CardDriver {
    estimator: Arc<dyn CardEstimator>,
    /// Inject sub-queries up to this many tables.
    pub max_subquery: usize,
    injected: usize,
}

impl CardDriver {
    /// Wrap any estimator.
    pub fn new(estimator: Arc<dyn CardEstimator>) -> CardDriver {
        CardDriver {
            estimator,
            max_subquery: 6,
            injected: 0,
        }
    }

    /// Total injected sub-query estimates (reporting).
    pub fn injected(&self) -> usize {
        self.injected
    }
}

impl Driver for CardDriver {
    fn name(&self) -> &str {
        "learned-cardinality"
    }

    fn init(&mut self, _interactor: &dyn DbInteractor, _session: SessionId) -> Result<()> {
        Ok(())
    }

    fn algo(
        &mut self,
        interactor: &dyn DbInteractor,
        session: SessionId,
        query: &SpjQuery,
    ) -> Result<DriverDecision> {
        interactor.push(session, PushAction::ClearInjections)?;
        let graph = JoinGraph::new(query);
        for set in graph.connected_subsets(self.max_subquery) {
            let card = self.estimator.estimate(query, set);
            interactor.push(
                session,
                PushAction::InjectCardinality {
                    query: query.clone(),
                    set,
                    card,
                },
            )?;
            self.injected += 1;
        }
        Ok(DriverDecision::Delegate)
    }
}

/// The Bao driver \[37\]: tunes hint sets through push/pull, collects the
/// candidate plans, and selects with its tree-convolution reward model.
pub struct BaoDriver {
    risk: PointwiseTcnnRisk,
    arms: Vec<HintSet>,
    history: Vec<ExecutionSample>,
}

impl BaoDriver {
    /// Build over the same context the interactor's engine uses.
    pub fn new(ctx: OptContext) -> BaoDriver {
        BaoDriver {
            risk: PointwiseTcnnRisk::new(ctx),
            arms: HintSet::standard_arms(),
            history: Vec::new(),
        }
    }

    /// Executions collected so far.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

fn explore_with_steering(
    interactor: &dyn DbInteractor,
    session: SessionId,
    query: &SpjQuery,
    steer: impl Fn(usize) -> PushAction,
    labels: impl Fn(usize) -> String,
    n: usize,
) -> Result<Vec<CandidatePlan>> {
    let mut out: Vec<CandidatePlan> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..n {
        interactor.push(session, steer(i))?;
        let Ok(PullReply::Plan { plan, .. }) =
            interactor.pull(session, PullRequest::Plan(query.clone()))
        else {
            continue;
        };
        if seen.insert(plan.fingerprint()) {
            out.push(CandidatePlan {
                plan,
                label: labels(i),
            });
        }
    }
    interactor.push(session, PushAction::ResetSteering)?;
    Ok(out)
}

impl Driver for BaoDriver {
    fn name(&self) -> &str {
        "bao"
    }

    fn init(&mut self, _interactor: &dyn DbInteractor, _session: SessionId) -> Result<()> {
        Ok(())
    }

    fn algo(
        &mut self,
        interactor: &dyn DbInteractor,
        session: SessionId,
        query: &SpjQuery,
    ) -> Result<DriverDecision> {
        let arms = self.arms.clone();
        let candidates = explore_with_steering(
            interactor,
            session,
            query,
            |i| PushAction::SetHints(arms[i].clone()),
            |i| arms[i].label(),
            arms.len(),
        )?;
        if candidates.is_empty() {
            return Ok(DriverDecision::Delegate);
        }
        let idx = self.risk.select(query, &candidates);
        Ok(DriverDecision::Plan(candidates[idx].plan.clone()))
    }

    fn collect(&mut self, feedback: &ExecFeedback) {
        self.history.push(ExecutionSample {
            query: Arc::new(feedback.query.clone()),
            plan: feedback.plan.clone(),
            work: feedback.work,
        });
    }

    fn update_models(&mut self) {
        self.risk.train(&self.history);
    }
}

/// The Lero driver \[79\]: tunes the cardinality-scaling knob through
/// push/pull and selects with its pairwise comparator.
pub struct LeroDriver {
    risk: PairwiseTcnnRisk,
    factors: Vec<f64>,
    history: Vec<ExecutionSample>,
}

impl LeroDriver {
    /// Build over the engine's context.
    pub fn new(ctx: OptContext) -> LeroDriver {
        LeroDriver {
            risk: PairwiseTcnnRisk::new(ctx),
            factors: vec![0.1, 0.5, 1.0, 2.0, 10.0],
            history: Vec::new(),
        }
    }
}

impl Driver for LeroDriver {
    fn name(&self) -> &str {
        "lero"
    }

    fn init(&mut self, _interactor: &dyn DbInteractor, _session: SessionId) -> Result<()> {
        Ok(())
    }

    fn algo(
        &mut self,
        interactor: &dyn DbInteractor,
        session: SessionId,
        query: &SpjQuery,
    ) -> Result<DriverDecision> {
        let factors = self.factors.clone();
        let candidates = explore_with_steering(
            interactor,
            session,
            query,
            |i| PushAction::SetCardScaling(factors[i]),
            |i| format!("scale={}", factors[i]),
            factors.len(),
        )?;
        if candidates.is_empty() {
            return Ok(DriverDecision::Delegate);
        }
        let idx = self.risk.select(query, &candidates);
        Ok(DriverDecision::Plan(candidates[idx].plan.clone()))
    }

    fn collect(&mut self, feedback: &ExecFeedback) {
        self.history.push(ExecutionSample {
            query: Arc::new(feedback.query.clone()),
            plan: feedback.plan.clone(),
            work: feedback.work,
        });
    }

    fn update_models(&mut self) {
        self.risk.train(&self.history);
    }
}
