//! # lqo-pilot
//!
//! A PilotScope-style AI4DB middleware (paper §3): a [`console::PilotConsole`]
//! manages [`driver::Driver`]s that steer the database through the
//! unified push/pull [`interactor::DbInteractor`] interface.
//!
//! * `push` operators enforce actions on the database (inject
//!   cardinalities, set hints, scale estimates);
//! * `pull` operators acquire data (plans, execution results, statistics,
//!   sub-query cardinalities);
//! * each AI4DB task is packaged as a driver with `init()` + `algo()`,
//!   collects its own training data from execution feedback, and updates
//!   its models in the background;
//! * the database user just runs SQL through the console — which driver
//!   steers the session is transparent, exactly the PilotScope promise.
//!
//! [`engine_impl::EngineInteractor`] is the "lightweight patch" binding
//! the interface to `lqo-engine`; a different DBMS would provide its own
//! implementation while drivers stay unchanged.

#![warn(missing_docs)]

pub mod console;
pub mod driver;
pub mod drivers;
pub mod engine_impl;
pub mod interactor;

pub use console::{ExecOutcome, PilotConsole};
pub use driver::{Driver, DriverDecision, ExecFeedback};
pub use drivers::{BaoDriver, CardDriver, LeroDriver};
pub use engine_impl::EngineInteractor;
pub use interactor::{DbInteractor, PullReply, PullRequest, PushAction, SessionId};
