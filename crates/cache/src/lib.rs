//! # lqo-cache — drift-aware plan & inference caching
//!
//! The deployment-cost layer of the learned-optimizer stack: repeated
//! model inference inside the planner's hot loop is what makes learned
//! components expensive in practice (Neo's planning time is dominated by
//! per-subplan model evaluation; template caching is the standard
//! remedy). This crate provides:
//!
//! * [`MemoCardSource`] — cross-query memoization of any
//!   [`lqo_engine::optimizer::CardSource`] through a bounded LRU keyed
//!   by canonical sub-query form and tagged with a catalog-stats epoch;
//! * [`OptMemo`] — a per-optimization memo on raw table-set bits,
//!   created fresh per `optimize` call;
//! * a plan cache ([`LqoCache::plan_lookup`] / [`LqoCache::plan_store`])
//!   keyed by canonical query fingerprint via [`plan_key`], returning
//!   the previously optimized [`PlannedQuery`] while the stats epoch is
//!   unchanged;
//! * invalidation wired to real signals: stats-epoch bumps
//!   ([`LqoCache::bump_stats_epoch`]), confirmed drift alarms
//!   ([`LqoCache::note_health`]), and circuit-breaker opens
//!   ([`LqoCache::on_breaker_open`]);
//! * observability: hit/miss/eviction/invalidation counters, hit-rate
//!   gauges, saved-inference-call counts, and per-query
//!   [`lqo_obs::trace::CacheEvent`]s.
//!
//! Caching is observationally transparent: cached values are returned
//! bit-identically and cached plans are only served for unsteered
//! sessions under an unchanged epoch, so cache-on planning produces
//! byte-identical plans and results to cache-off (proven by the
//! differential and golden tests in `lqo-testkit` and `lqo-pilot`).

pub mod cache;
pub mod lru;
pub mod memo;

pub use cache::{
    plan_key, residual_key, CacheConfig, CacheStats, CachedResidual, LqoCache, PlannedQuery,
};
pub use lru::BoundedLru;
pub use memo::{MemoCardSource, OptMemo};
