//! A small bounded LRU map keyed by `String`.
//!
//! Recency is a monotonic tick per entry plus a `BTreeMap` index from
//! tick to key, so `get`/`insert` are `O(log n)` and eviction pops the
//! smallest tick. No unsafe, no intrusive lists — capacities here are
//! thousands of entries, not millions.

use std::collections::{BTreeMap, HashMap};

struct Slot<V> {
    value: V,
    tick: u64,
}

/// Bounded least-recently-used map. Inserting beyond capacity evicts the
/// least recently touched entry; `get` counts as a touch.
pub struct BoundedLru<V> {
    cap: usize,
    tick: u64,
    map: HashMap<String, Slot<V>>,
    order: BTreeMap<u64, String>,
}

impl<V> BoundedLru<V> {
    /// An empty LRU holding at most `cap` entries (floored at 1).
    pub fn new(cap: usize) -> BoundedLru<V> {
        BoundedLru {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up and touch an entry.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let tick = self.next_tick();
        let slot = self.map.get_mut(key)?;
        self.order.remove(&slot.tick);
        slot.tick = tick;
        self.order.insert(tick, key.to_string());
        Some(&slot.value)
    }

    /// Look up without touching (no recency update).
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// Insert or replace an entry; returns how many entries were evicted
    /// to make room (0 or 1).
    pub fn insert(&mut self, key: String, value: V) -> usize {
        let tick = self.next_tick();
        if let Some(old) = self.map.insert(key.clone(), Slot { value, tick }) {
            self.order.remove(&old.tick);
            self.order.insert(tick, key);
            return 0;
        }
        self.order.insert(tick, key);
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            if let Some(victim) = self.order.remove(&oldest) {
                self.map.remove(&victim);
                evicted += 1;
            }
        }
        evicted
    }

    /// Remove one entry.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.order.remove(&slot.tick);
        Some(slot.value)
    }

    /// Keep only entries the predicate accepts; returns how many were
    /// removed.
    pub fn retain(&mut self, mut keep: impl FnMut(&str, &V) -> bool) -> usize {
        let before = self.map.len();
        let order = &mut self.order;
        self.map.retain(|k, slot| {
            let keep_it = keep(k, &slot.value);
            if !keep_it {
                order.remove(&slot.tick);
            }
            keep_it
        });
        before - self.map.len()
    }

    /// Drop everything; returns how many entries were removed.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.order.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = BoundedLru::new(2);
        assert_eq!(lru.insert("a".into(), 1), 0);
        assert_eq!(lru.insert("b".into(), 2), 0);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.insert("c".into(), 3), 1);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek("b"), None);
        assert_eq!(lru.peek("a"), Some(&1));
        assert_eq!(lru.peek("c"), Some(&3));
    }

    #[test]
    fn replace_does_not_evict() {
        let mut lru = BoundedLru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.insert("a".into(), 10), 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek("a"), Some(&10));
    }

    #[test]
    fn retain_and_clear_report_removals() {
        let mut lru = BoundedLru::new(8);
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            lru.insert((*k).into(), i);
        }
        assert_eq!(lru.retain(|_, &v| v % 2 == 0), 2);
        assert_eq!(lru.len(), 2);
        // Recency index stays consistent after retain: inserts beyond
        // capacity still evict exactly one entry.
        let mut small = BoundedLru::new(2);
        small.insert("x".into(), 0);
        small.insert("y".into(), 1);
        small.retain(|k, _| k == "y");
        small.insert("z".into(), 2);
        assert_eq!(small.insert("w".into(), 3), 1);
        assert_eq!(lru.clear(), 2);
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_unindexes_recency() {
        let mut lru = BoundedLru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.remove("a"), Some(1));
        assert_eq!(lru.remove("a"), None);
        assert_eq!(lru.insert("c".into(), 3), 0);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_floors_at_one() {
        let mut lru = BoundedLru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert("a".into(), 1);
        assert_eq!(lru.insert("b".into(), 2), 1);
        assert_eq!(lru.len(), 1);
    }
}
