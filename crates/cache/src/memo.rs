//! Memoizing [`CardSource`] wrappers.
//!
//! [`MemoCardSource`] is the cross-query layer: it consults the shared
//! [`LqoCache`] inference cache under the sub-query's *canonical key*,
//! which is stable and collision-free across queries. It must wrap the
//! **base** estimator — below per-session injection/scaling decorators,
//! whose answers vary per query under identical canonical keys.
//!
//! [`OptMemo`] is the per-optimization layer: it memoizes on raw
//! `TableSet` bits, which is only sound while a single query is being
//! optimized (table positions are not stable across queries), so one
//! `OptMemo` is created per `optimize` call and dropped with it. This is
//! what turns the greedy enumerator's repeated re-querying of the same
//! subsets into `O(1)` lookups without string formatting on the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use lqo_engine::optimizer::CardSource;
use lqo_engine::{SpjQuery, TableSet};

use crate::cache::LqoCache;

/// Cross-query memoization of an estimator through the shared cache.
///
/// Observationally transparent: `cardinality` returns bit-identical
/// values to the wrapped source (cached f64s are stored verbatim) and
/// `name` forwards, so plans, costs, and provenance are unchanged.
pub struct MemoCardSource {
    inner: Arc<dyn CardSource>,
    cache: Arc<LqoCache>,
}

impl MemoCardSource {
    /// Wrap `inner`, sharing `cache` across queries and sessions.
    pub fn new(inner: Arc<dyn CardSource>, cache: Arc<LqoCache>) -> MemoCardSource {
        MemoCardSource { inner, cache }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &Arc<dyn CardSource> {
        &self.inner
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<LqoCache> {
        &self.cache
    }
}

impl CardSource for MemoCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let key = query.canonical_key(set);
        if let Some(est) = self.cache.card_lookup(&key) {
            return est;
        }
        let est = self.inner.cardinality(query, set);
        self.cache.card_store(key, est, self.inner.name());
        est
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Per-optimization memo on raw table-set bits. Create one per
/// `optimize` call; never share across queries.
pub struct OptMemo<'a> {
    inner: &'a dyn CardSource,
    memo: Mutex<HashMap<u64, f64>>,
    hits: AtomicU64,
}

impl<'a> OptMemo<'a> {
    /// A fresh memo over `inner` for one optimization.
    pub fn new(inner: &'a dyn CardSource) -> OptMemo<'a> {
        OptMemo {
            inner,
            memo: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
        }
    }

    /// Lookups answered from the memo (estimator calls saved).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

impl CardSource for OptMemo<'_> {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        if let Some(&est) = self.memo.lock().get(&set.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return est;
        }
        let est = self.inner.cardinality(query, set);
        self.memo.lock().insert(set.0, est);
        est
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic fake estimator that counts its calls.
    struct Fake {
        calls: AtomicU64,
    }

    impl Fake {
        fn new() -> Fake {
            Fake {
                calls: AtomicU64::new(0),
            }
        }
        fn calls(&self) -> u64 {
            self.calls.load(Ordering::Relaxed)
        }
    }

    impl CardSource for Fake {
        fn cardinality(&self, _query: &SpjQuery, set: TableSet) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            (set.0 as f64) * 3.5 + 1.0
        }
        fn name(&self) -> &str {
            "fake"
        }
    }

    fn query(tables: usize) -> SpjQuery {
        use lqo_engine::query::expr::{ColRef, JoinCond, TableRef};
        let refs: Vec<TableRef> = (0..tables)
            .map(|i| TableRef::new(format!("t{i}"), format!("a{i}")))
            .collect();
        let joins: Vec<JoinCond> = (1..tables)
            .map(|i| {
                JoinCond::new(
                    ColRef::new(format!("a{}", i - 1), "id"),
                    ColRef::new(format!("a{i}"), "id"),
                )
            })
            .collect();
        SpjQuery::new(refs, joins, vec![])
    }

    #[test]
    fn memo_source_saves_repeat_calls_and_is_transparent() {
        let inner = Arc::new(Fake::new());
        let cache = Arc::new(LqoCache::default());
        let memo = MemoCardSource::new(inner.clone(), cache.clone());
        let q = query(3);
        let set = q.all_tables();
        let first = memo.cardinality(&q, set);
        let second = memo.cardinality(&q, set);
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(inner.calls(), 1);
        assert_eq!(cache.stats().saved_inference_calls(), 1);
        assert_eq!(memo.name(), "fake");
    }

    #[test]
    fn memo_source_shares_across_equivalent_queries() {
        let inner = Arc::new(Fake::new());
        let cache = Arc::new(LqoCache::default());
        let memo = MemoCardSource::new(inner.clone(), cache.clone());
        let q = query(2);
        let _ = memo.cardinality(&q, q.all_tables());
        // A second, structurally identical query (fresh object) hits.
        let q2 = query(2);
        let _ = memo.cardinality(&q2, q2.all_tables());
        assert_eq!(inner.calls(), 1);
    }

    #[test]
    fn epoch_bump_forces_recompute() {
        let inner = Arc::new(Fake::new());
        let cache = Arc::new(LqoCache::default());
        let memo = MemoCardSource::new(inner.clone(), cache.clone());
        let q = query(2);
        let _ = memo.cardinality(&q, q.all_tables());
        cache.bump_stats_epoch();
        let _ = memo.cardinality(&q, q.all_tables());
        assert_eq!(inner.calls(), 2);
    }

    #[test]
    fn opt_memo_dedups_within_one_optimization() {
        let inner = Fake::new();
        let memo = OptMemo::new(&inner);
        let q = query(3);
        let set = q.all_tables();
        let a = memo.cardinality(&q, set);
        let b = memo.cardinality(&q, set);
        let c = memo.cardinality(&q, TableSet::singleton(1));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
        assert_eq!(inner.calls(), 2);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.name(), "fake");
    }
}
