//! The shared cache facade: an epoch-tagged inference (cardinality)
//! cache and a plan cache, with invalidation wired to catalog-stats
//! epochs, model-drift alarms, and circuit-breaker opens.
//!
//! ## Keys and correctness
//!
//! Both caches key on *canonical* strings produced by
//! [`lqo_engine::SpjQuery::canonical_key`], which are order-insensitive
//! and alias-free — the same logical sub-query always maps to the same
//! key, and two different sub-queries never share one. Raw `TableSet`
//! bitmasks are **never** used as cross-query keys (table positions are
//! not stable across queries); the per-optimization
//! [`crate::OptMemo`] is the only place set bits are used, and it lives
//! and dies inside a single `optimize` call.
//!
//! ## Invalidation
//!
//! Every entry is tagged with the stats epoch at insert time and the
//! name of the source that produced it. Lookups treat entries from an
//! older epoch as misses (and drop them); [`LqoCache::bump_stats_epoch`]
//! additionally purges eagerly so `len` stays honest.
//! [`LqoCache::note_health`] reacts to a component *entering* the
//! drifted state by invalidating that estimator's entries (all cached
//! cardinalities if the label cannot be matched) plus every cached plan;
//! [`LqoCache::on_breaker_open`] flushes cached plans when a driver or
//! estimator breaker newly opens.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use lqo_engine::{PhysNode, ResidualNode};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::trace::CacheEvent;
use lqo_obs::ObsContext;

use crate::lru::BoundedLru;

/// A previously optimized query: the chosen plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen physical plan.
    pub plan: PhysNode,
    /// Estimated cost of that plan under the cardinalities in force when
    /// it was cached.
    pub cost: f64,
}

/// A previously re-optimized residual sub-plan: the plan over residual
/// leaves and its cost under the calibration in force when it was cached.
/// Because leaf descriptors are baked into the key, the leaf indices in
/// `plan` are valid for any lookup that hits.
#[derive(Debug, Clone)]
pub struct CachedResidual {
    /// The residual plan (leaf indices refer to the keyed leaf order).
    pub plan: ResidualNode,
    /// Estimated residual cost at store time. Callers must re-cost under
    /// their current calibration before trusting it.
    pub cost: f64,
}

struct CardEntry {
    est: f64,
    epoch: u64,
    source: String,
}

struct PlanEntry {
    planned: PlannedQuery,
    epoch: u64,
    source: String,
}

struct ResidualEntry {
    cached: CachedResidual,
    epoch: u64,
    source: String,
}

/// Cache sizing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum cached sub-query cardinalities.
    pub card_capacity: usize,
    /// Maximum cached plans.
    pub plan_capacity: usize,
    /// Maximum cached residual sub-plans (mid-query re-optimizations).
    pub residual_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            card_capacity: 65_536,
            plan_capacity: 4_096,
            residual_capacity: 4_096,
        }
    }
}

/// Point-in-time counters of both caches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Inference-cache hits (each one is a saved estimator call).
    pub card_hits: u64,
    /// Inference-cache misses.
    pub card_misses: u64,
    /// Inference-cache capacity evictions.
    pub card_evictions: u64,
    /// Inference-cache entries dropped by invalidation.
    pub card_invalidations: u64,
    /// Plan-cache hits (each one is a saved optimization).
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Plan-cache capacity evictions.
    pub plan_evictions: u64,
    /// Plan-cache entries dropped by invalidation.
    pub plan_invalidations: u64,
    /// Plan lookups skipped because the session was steered.
    pub plan_bypasses: u64,
    /// Residual-cache hits (each one is a saved residual enumeration).
    pub residual_hits: u64,
    /// Residual-cache misses.
    pub residual_misses: u64,
    /// Residual-cache entries dropped by invalidation or eviction.
    pub residual_invalidations: u64,
    /// Current catalog-stats epoch.
    pub stats_epoch: u64,
}

impl CacheStats {
    /// Estimator calls the inference cache absorbed.
    pub fn saved_inference_calls(&self) -> u64 {
        self.card_hits
    }

    /// Inference-cache hit rate in `[0, 1]` (0 when never used).
    pub fn card_hit_rate(&self) -> f64 {
        let total = self.card_hits + self.card_misses;
        if total == 0 {
            0.0
        } else {
            self.card_hits as f64 / total as f64
        }
    }

    /// Plan-cache hit rate in `[0, 1]` (0 when never used).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// The shared, thread-safe cache over inference results and plans.
pub struct LqoCache {
    epoch: AtomicU64,
    cards: Mutex<BoundedLru<CardEntry>>,
    plans: Mutex<BoundedLru<PlanEntry>>,
    residuals: Mutex<BoundedLru<ResidualEntry>>,
    /// Components currently in the drifted state (for edge detection).
    drifted: Mutex<HashSet<String>>,
    obs: Mutex<ObsContext>,
    /// Flight recorder handle; behind its own lock because the cache is
    /// shared via `Arc` and the recorder is attached after construction.
    flight: Mutex<FlightContext>,
    card_hits: AtomicU64,
    card_misses: AtomicU64,
    card_evictions: AtomicU64,
    card_invalidations: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    plan_invalidations: AtomicU64,
    plan_bypasses: AtomicU64,
    residual_hits: AtomicU64,
    residual_misses: AtomicU64,
    residual_invalidations: AtomicU64,
}

impl Default for LqoCache {
    fn default() -> LqoCache {
        LqoCache::new(CacheConfig::default())
    }
}

impl LqoCache {
    /// An empty cache under `cfg`.
    pub fn new(cfg: CacheConfig) -> LqoCache {
        LqoCache {
            epoch: AtomicU64::new(0),
            cards: Mutex::new(BoundedLru::new(cfg.card_capacity)),
            plans: Mutex::new(BoundedLru::new(cfg.plan_capacity)),
            residuals: Mutex::new(BoundedLru::new(cfg.residual_capacity)),
            drifted: Mutex::new(HashSet::new()),
            obs: Mutex::new(ObsContext::disabled()),
            flight: Mutex::new(FlightContext::disabled()),
            card_hits: AtomicU64::new(0),
            card_misses: AtomicU64::new(0),
            card_evictions: AtomicU64::new(0),
            card_invalidations: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            plan_invalidations: AtomicU64::new(0),
            plan_bypasses: AtomicU64::new(0),
            residual_hits: AtomicU64::new(0),
            residual_misses: AtomicU64::new(0),
            residual_invalidations: AtomicU64::new(0),
        }
    }

    /// Builder form of [`LqoCache::attach_obs`].
    pub fn with_obs(self, obs: ObsContext) -> LqoCache {
        self.attach_obs(&obs);
        self
    }

    /// Report metrics and trace events to `obs` from now on.
    pub fn attach_obs(&self, obs: &ObsContext) {
        *self.obs.lock() = obs.clone();
    }

    /// Publish cache events and stats-epoch bumps onto the black-box
    /// flight ring from now on. Takes `&self` because the cache is
    /// typically shared via `Arc` by the time the recorder exists.
    pub fn attach_flight(&self, flight: &FlightContext) {
        *self.flight.lock() = flight.clone();
    }

    fn obs(&self) -> ObsContext {
        self.obs.lock().clone()
    }

    fn event(&self, obs: &ObsContext, cache: &str, event: &str, detail: String) {
        let flight = self.flight.lock();
        if flight.is_enabled() {
            flight.publish(
                Producer::Cache,
                FlightEvent::Cache {
                    cache: cache.to_string(),
                    event: event.to_string(),
                    detail: detail.clone(),
                },
            );
        }
        drop(flight);
        obs.with_query(|t| {
            t.push_cache(CacheEvent {
                cache: cache.to_string(),
                event: event.to_string(),
                detail,
            });
        });
    }

    fn publish_hit_rates(&self, obs: &ObsContext) {
        let stats = self.stats();
        obs.gauge("lqo.cache.card.hit_rate", stats.card_hit_rate());
        obs.gauge("lqo.cache.plan.hit_rate", stats.plan_hit_rate());
    }

    /// Current catalog-stats epoch.
    pub fn stats_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Catalog statistics changed: advance the epoch and purge every
    /// entry tagged with an older one. Returns how many entries were
    /// dropped.
    pub fn bump_stats_epoch(&self) -> usize {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let dropped_cards = self.cards.lock().retain(|_, e| e.epoch == epoch);
        let dropped_plans = self.plans.lock().retain(|_, e| e.epoch == epoch);
        let dropped_residuals = self.residuals.lock().retain(|_, e| e.epoch == epoch);
        self.card_invalidations
            .fetch_add(dropped_cards as u64, Ordering::Relaxed);
        self.plan_invalidations
            .fetch_add(dropped_plans as u64, Ordering::Relaxed);
        self.residual_invalidations
            .fetch_add(dropped_residuals as u64, Ordering::Relaxed);
        let obs = self.obs();
        obs.count("lqo.cache.card.invalidations", dropped_cards as u64);
        obs.count("lqo.cache.plan.invalidations", dropped_plans as u64);
        obs.count("lqo.cache.residual.invalidations", dropped_residuals as u64);
        obs.count("lqo.cache.epoch_bumps", 1);
        {
            let flight = self.flight.lock();
            if flight.is_enabled() {
                flight.publish(
                    Producer::Cache,
                    FlightEvent::EpochBump {
                        epoch,
                        detail: format!(
                            "dropped={}",
                            dropped_cards + dropped_plans + dropped_residuals
                        ),
                    },
                );
            }
        }
        self.event(
            &obs,
            "card",
            "invalidate",
            format!(
                "epoch={epoch} dropped={}",
                dropped_cards + dropped_plans + dropped_residuals
            ),
        );
        dropped_cards + dropped_plans + dropped_residuals
    }

    /// Look up a cached cardinality by canonical sub-query key. Entries
    /// from an older stats epoch are dropped and count as misses.
    pub fn card_lookup(&self, key: &str) -> Option<f64> {
        let epoch = self.stats_epoch();
        let mut cards = self.cards.lock();
        let hit = match cards.get(key) {
            Some(e) if e.epoch == epoch => Some(e.est),
            Some(_) => {
                cards.remove(key);
                self.card_invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        };
        drop(cards);
        let obs = self.obs();
        if hit.is_some() {
            self.card_hits.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.card.hits", 1);
            obs.count("lqo.cache.saved_inference_calls", 1);
        } else {
            self.card_misses.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.card.misses", 1);
        }
        if obs.is_enabled() {
            let event = if hit.is_some() { "hit" } else { "miss" };
            self.event(&obs, "card", event, key.to_string());
            self.publish_hit_rates(&obs);
        }
        hit
    }

    /// Store a cardinality under the current stats epoch, tagged with the
    /// producing source's name.
    pub fn card_store(&self, key: String, est: f64, source: &str) {
        let entry = CardEntry {
            est,
            epoch: self.stats_epoch(),
            source: source.to_string(),
        };
        let evicted = self.cards.lock().insert(key, entry);
        if evicted > 0 {
            self.card_evictions
                .fetch_add(evicted as u64, Ordering::Relaxed);
            self.obs().count("lqo.cache.card.evictions", evicted as u64);
        }
    }

    /// Look up a cached plan by its canonical fingerprint key.
    pub fn plan_lookup(&self, key: &str) -> Option<PlannedQuery> {
        let epoch = self.stats_epoch();
        let mut plans = self.plans.lock();
        let hit = match plans.get(key) {
            Some(e) if e.epoch == epoch => Some(e.planned.clone()),
            Some(_) => {
                plans.remove(key);
                self.plan_invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        };
        drop(plans);
        let obs = self.obs();
        if hit.is_some() {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.plan.hits", 1);
        } else {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.plan.misses", 1);
        }
        if obs.is_enabled() {
            let event = if hit.is_some() { "hit" } else { "miss" };
            self.event(&obs, "plan", event, format!("epoch={epoch}"));
            self.publish_hit_rates(&obs);
        }
        hit
    }

    /// Store a plan under the current stats epoch, tagged with the name
    /// of the cardinality source it was optimized under.
    pub fn plan_store(&self, key: String, planned: PlannedQuery, source: &str) {
        let entry = PlanEntry {
            planned,
            epoch: self.stats_epoch(),
            source: source.to_string(),
        };
        let evicted = self.plans.lock().insert(key, entry);
        let obs = self.obs();
        if evicted > 0 {
            self.plan_evictions
                .fetch_add(evicted as u64, Ordering::Relaxed);
            obs.count("lqo.cache.plan.evictions", evicted as u64);
        }
        self.event(&obs, "plan", "store", String::new());
    }

    /// Look up a cached residual sub-plan by its [`residual_key`].
    /// Entries from an older stats epoch are dropped and count as misses.
    pub fn residual_lookup(&self, key: &str) -> Option<CachedResidual> {
        let epoch = self.stats_epoch();
        let mut residuals = self.residuals.lock();
        let hit = match residuals.get(key) {
            Some(e) if e.epoch == epoch => Some(e.cached.clone()),
            Some(_) => {
                residuals.remove(key);
                self.residual_invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        };
        drop(residuals);
        let obs = self.obs();
        if hit.is_some() {
            self.residual_hits.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.residual.hits", 1);
        } else {
            self.residual_misses.fetch_add(1, Ordering::Relaxed);
            obs.count("lqo.cache.residual.misses", 1);
        }
        if obs.is_enabled() {
            let event = if hit.is_some() { "hit" } else { "miss" };
            self.event(&obs, "residual", event, format!("epoch={epoch}"));
        }
        hit
    }

    /// Store a re-optimized residual sub-plan under the current stats
    /// epoch, tagged with the calibrated source's name.
    pub fn residual_store(&self, key: String, cached: CachedResidual, source: &str) {
        let entry = ResidualEntry {
            cached,
            epoch: self.stats_epoch(),
            source: source.to_string(),
        };
        let evicted = self.residuals.lock().insert(key, entry);
        let obs = self.obs();
        if evicted > 0 {
            self.residual_invalidations
                .fetch_add(evicted as u64, Ordering::Relaxed);
            obs.count("lqo.cache.residual.evictions", evicted as u64);
        }
        self.event(&obs, "residual", "store", String::new());
    }

    /// Record that a plan lookup was skipped because the session was
    /// steered (injections or scaling in force): cached plans only stand
    /// for *unsteered* optimizations.
    pub fn plan_bypass(&self, reason: &str) {
        self.plan_bypasses.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs();
        obs.count("lqo.cache.plan.bypasses", 1);
        self.event(&obs, "plan", "bypass", reason.to_string());
    }

    /// Drop every cardinality and plan produced by `source`; returns how
    /// many entries were removed.
    pub fn invalidate_source(&self, source: &str) -> usize {
        let dropped_cards = self.cards.lock().retain(|_, e| e.source != source);
        let dropped_plans = self.plans.lock().retain(|_, e| e.source != source);
        let dropped_residuals = self.residuals.lock().retain(|_, e| e.source != source);
        self.card_invalidations
            .fetch_add(dropped_cards as u64, Ordering::Relaxed);
        self.plan_invalidations
            .fetch_add(dropped_plans as u64, Ordering::Relaxed);
        self.residual_invalidations
            .fetch_add(dropped_residuals as u64, Ordering::Relaxed);
        let obs = self.obs();
        obs.count("lqo.cache.card.invalidations", dropped_cards as u64);
        obs.count("lqo.cache.plan.invalidations", dropped_plans as u64);
        obs.count("lqo.cache.residual.invalidations", dropped_residuals as u64);
        self.event(
            &obs,
            "card",
            "invalidate",
            format!(
                "source={source} dropped={}",
                dropped_cards + dropped_plans + dropped_residuals
            ),
        );
        dropped_cards + dropped_plans + dropped_residuals
    }

    fn flush_cards(&self) -> usize {
        let n = self.cards.lock().clear();
        self.card_invalidations
            .fetch_add(n as u64, Ordering::Relaxed);
        self.obs().count("lqo.cache.card.invalidations", n as u64);
        n
    }

    fn flush_plans(&self) -> usize {
        let n = self.plans.lock().clear();
        self.plan_invalidations
            .fetch_add(n as u64, Ordering::Relaxed);
        self.obs().count("lqo.cache.plan.invalidations", n as u64);
        // Residual sub-plans embed the same cardinality beliefs as whole
        // plans, so they never outlive a plan flush.
        n + self.flush_residuals()
    }

    fn flush_residuals(&self) -> usize {
        let n = self.residuals.lock().clear();
        self.residual_invalidations
            .fetch_add(n as u64, Ordering::Relaxed);
        self.obs()
            .count("lqo.cache.residual.invalidations", n as u64);
        n
    }

    /// Drop everything; returns how many entries were removed. `reason`
    /// lands on the current query trace, if one is open.
    pub fn flush_all(&self, reason: &str) -> usize {
        let n = self.flush_cards() + self.flush_plans();
        let obs = self.obs();
        obs.count("lqo.cache.flushes", 1);
        self.event(&obs, "card", "invalidate", format!("flush reason={reason}"));
        n
    }

    /// React to a model-health transition for `component` (a
    /// `lqo_watch`-style name: `"card:<source>"`, `"driver:<name>"`,
    /// `"planner"`). On the *transition into* drift, estimator components
    /// lose their cached cardinalities (by source tag when it matches,
    /// wholesale otherwise) and every cached plan is dropped — plans
    /// embed cardinality beliefs. Other components drop cached plans
    /// only. Returns how many entries were invalidated.
    pub fn note_health(&self, component: &str, drifted: bool) -> usize {
        let newly = {
            let mut set = self.drifted.lock();
            if drifted {
                set.insert(component.to_string())
            } else {
                set.remove(component);
                false
            }
        };
        if !newly {
            return 0;
        }
        self.obs().count("lqo.cache.drift_invalidations", 1);
        let mut n = 0;
        if let Some(source) = component.strip_prefix("card:") {
            let removed = self.invalidate_source(source);
            n += removed;
            if removed == 0 {
                // Decorators (injection, scaling) can rename the source
                // seen by the monitor; when the tag cannot be matched,
                // correctness beats retention.
                n += self.flush_cards();
            }
        }
        n += self.flush_plans();
        n
    }

    /// React to a circuit breaker newly opening on `component`: cached
    /// plans are dropped (the component's decisions were just ruled
    /// untrustworthy); estimator components also lose their cached
    /// cardinalities. Returns how many entries were invalidated.
    pub fn on_breaker_open(&self, component: &str) -> usize {
        let obs = self.obs();
        obs.count("lqo.cache.breaker_invalidations", 1);
        self.event(
            &obs,
            "plan",
            "invalidate",
            format!("breaker-open component={component}"),
        );
        let mut n = 0;
        if let Some(source) = component.strip_prefix("card:") {
            let removed = self.invalidate_source(source);
            n += removed;
            if removed == 0 {
                n += self.flush_cards();
            }
        }
        n += self.flush_plans();
        n
    }

    /// Entries currently held in the inference cache.
    pub fn card_len(&self) -> usize {
        self.cards.lock().len()
    }

    /// Entries currently held in the plan cache.
    pub fn plan_len(&self) -> usize {
        self.plans.lock().len()
    }

    /// Entries currently held in the residual sub-plan cache.
    pub fn residual_len(&self) -> usize {
        self.residuals.lock().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            card_hits: self.card_hits.load(Ordering::Relaxed),
            card_misses: self.card_misses.load(Ordering::Relaxed),
            card_evictions: self.card_evictions.load(Ordering::Relaxed),
            card_invalidations: self.card_invalidations.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
            plan_invalidations: self.plan_invalidations.load(Ordering::Relaxed),
            plan_bypasses: self.plan_bypasses.load(Ordering::Relaxed),
            residual_hits: self.residual_hits.load(Ordering::Relaxed),
            residual_misses: self.residual_misses.load(Ordering::Relaxed),
            residual_invalidations: self.residual_invalidations.load(Ordering::Relaxed),
            stats_epoch: self.stats_epoch(),
        }
    }
}

/// The plan-cache key of one (query, hints, estimator) combination:
/// canonical query form, the hint label, and the estimator name. Two
/// queries share a key exactly when the native optimizer is guaranteed
/// to see identical inputs for both.
pub fn plan_key(query: &lqo_engine::SpjQuery, hints_label: &str, source: &str) -> String {
    format!(
        "{}|hints={}|card={}",
        query.canonical_key(query.all_tables()),
        hints_label,
        source
    )
}

/// The residual-cache key of one mid-query re-optimization decision
/// point: canonical query form plus a descriptor of every residual leaf
/// *in leaf order* — its table-set bits and a log2 bucket of its row
/// count — plus the calibrated source's name. Two checkpoints share a
/// key exactly when the residual enumerator is guaranteed to see
/// equivalent inputs (same logical query, same leaf partition, row
/// counts within a 2× bucket of each other, same estimator stack), which
/// also makes the cached plan's leaf indices directly reusable.
pub fn residual_key(
    query: &lqo_engine::SpjQuery,
    leaves: &[lqo_engine::ResidualLeaf],
    source: &str,
) -> String {
    use std::fmt::Write;
    let mut key = query.canonical_key(query.all_tables());
    for leaf in leaves {
        let bucket = leaf.rows.max(1.0).log2().floor() as i64;
        let tag = if leaf.materialized { 'm' } else { 's' };
        let _ = write!(key, "|{}:{:x}@{}", tag, leaf.set.0, bucket);
    }
    let _ = write!(key, "|card={source}");
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned() -> PlannedQuery {
        PlannedQuery {
            plan: PhysNode::scan(0),
            cost: 42.0,
        }
    }

    #[test]
    fn card_cache_hits_and_misses() {
        let cache = LqoCache::default();
        assert_eq!(cache.card_lookup("k"), None);
        cache.card_store("k".into(), 17.5, "traditional");
        assert_eq!(cache.card_lookup("k"), Some(17.5));
        let s = cache.stats();
        assert_eq!((s.card_hits, s.card_misses), (1, 1));
        assert_eq!(s.saved_inference_calls(), 1);
        assert!((s.card_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epoch_bump_invalidates_lazily_and_eagerly() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "traditional");
        cache.plan_store("p".into(), planned(), "traditional");
        assert_eq!(cache.bump_stats_epoch(), 2);
        assert_eq!(cache.stats_epoch(), 1);
        assert_eq!(cache.card_len(), 0);
        assert_eq!(cache.plan_len(), 0);
        assert_eq!(cache.card_lookup("a"), None);
        assert_eq!(cache.stats().card_invalidations, 1);
        assert_eq!(cache.stats().plan_invalidations, 1);
        // Entries stored after the bump hit normally.
        cache.card_store("a".into(), 2.0, "traditional");
        assert_eq!(cache.card_lookup("a"), Some(2.0));
    }

    #[test]
    fn source_invalidation_is_targeted() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "traditional");
        cache.card_store("b".into(), 2.0, "mscn");
        cache.plan_store("p".into(), planned(), "mscn");
        assert_eq!(cache.invalidate_source("mscn"), 2);
        assert_eq!(cache.card_lookup("a"), Some(1.0));
        assert_eq!(cache.card_lookup("b"), None);
        assert_eq!(cache.plan_lookup("p").map(|p| p.cost), None);
    }

    #[test]
    fn drift_transition_invalidates_once() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "mscn");
        cache.plan_store("p".into(), planned(), "mscn");
        // Healthy: nothing happens.
        assert_eq!(cache.note_health("card:mscn", false), 0);
        // Drift edge: estimator entries and plans go.
        assert!(cache.note_health("card:mscn", true) >= 2);
        // Still drifted: no repeat invalidation.
        cache.card_store("a".into(), 1.0, "mscn");
        assert_eq!(cache.note_health("card:mscn", true), 0);
        // Recovery then re-drift fires again.
        assert_eq!(cache.note_health("card:mscn", false), 0);
        assert!(cache.note_health("card:mscn", true) >= 1);
    }

    #[test]
    fn drift_with_unmatched_label_flushes_cards() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "traditional");
        // The monitor saw the decorated name, not the base tag.
        assert_eq!(cache.note_health("card:injected", true), 1);
        assert_eq!(cache.card_len(), 0);
    }

    #[test]
    fn breaker_open_drops_plans() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "traditional");
        cache.plan_store("p".into(), planned(), "traditional");
        assert_eq!(cache.on_breaker_open("driver:bao"), 1);
        assert_eq!(cache.plan_len(), 0);
        // Driver breakers do not touch cardinalities.
        assert_eq!(cache.card_len(), 1);
        // Estimator breakers do.
        assert_eq!(cache.on_breaker_open("card:traditional"), 1);
        assert_eq!(cache.card_len(), 0);
    }

    #[test]
    fn flush_all_empties_both() {
        let cache = LqoCache::default();
        cache.card_store("a".into(), 1.0, "t");
        cache.plan_store("p".into(), planned(), "t");
        assert_eq!(cache.flush_all("test"), 2);
        assert!(cache.card_len() == 0 && cache.plan_len() == 0);
    }

    fn residual() -> CachedResidual {
        CachedResidual {
            plan: ResidualNode::Join {
                algo: lqo_engine::JoinAlgo::Hash,
                left: Box::new(ResidualNode::Leaf(0)),
                right: Box::new(ResidualNode::Leaf(1)),
            },
            cost: 7.0,
        }
    }

    #[test]
    fn residual_cache_hits_and_misses() {
        let cache = LqoCache::default();
        assert!(cache.residual_lookup("r").is_none());
        cache.residual_store("r".into(), residual(), "reopt-calibrated");
        let hit = cache.residual_lookup("r").unwrap();
        assert_eq!(hit.cost, 7.0);
        assert_eq!(hit.plan, residual().plan);
        let s = cache.stats();
        assert_eq!((s.residual_hits, s.residual_misses), (1, 1));
    }

    #[test]
    fn residual_entries_are_epoch_tagged() {
        let cache = LqoCache::default();
        cache.residual_store("r".into(), residual(), "reopt-calibrated");
        cache.bump_stats_epoch();
        assert_eq!(cache.residual_len(), 0);
        assert!(cache.residual_lookup("r").is_none());
        assert_eq!(cache.stats().residual_invalidations, 1);
    }

    #[test]
    fn residuals_die_with_plans_on_drift_and_breaker_open() {
        let cache = LqoCache::default();
        cache.residual_store("r".into(), residual(), "reopt-calibrated");
        assert!(cache.note_health("planner", true) >= 1);
        assert_eq!(cache.residual_len(), 0);
        cache.residual_store("r".into(), residual(), "reopt-calibrated");
        assert!(cache.on_breaker_open("driver:bao") >= 1);
        assert_eq!(cache.residual_len(), 0);
    }

    #[test]
    fn residual_source_invalidation_is_targeted() {
        let cache = LqoCache::default();
        cache.residual_store("r1".into(), residual(), "reopt-calibrated");
        cache.residual_store("r2".into(), residual(), "other");
        assert_eq!(cache.invalidate_source("other"), 1);
        assert!(cache.residual_lookup("r1").is_some());
        assert!(cache.residual_lookup("r2").is_none());
    }

    #[test]
    fn obs_counters_flow() {
        let obs = ObsContext::enabled();
        let cache = LqoCache::default().with_obs(obs.clone());
        cache.card_lookup("k");
        cache.card_store("k".into(), 3.0, "t");
        cache.card_lookup("k");
        cache.plan_bypass("steered");
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.cache.card.hits"), Some(1));
        assert_eq!(snap.counter("lqo.cache.card.misses"), Some(1));
        assert_eq!(snap.counter("lqo.cache.saved_inference_calls"), Some(1));
        assert_eq!(snap.counter("lqo.cache.plan.bypasses"), Some(1));
    }
}
