//! Runtime-calibrated cardinalities: the estimator stack the residual
//! enumerator plans against.
//!
//! At a re-planning point the executor knows the *exact* cardinality of
//! every materialized intermediate. Those observations do two jobs here:
//! a set that exactly matches a materialized anchor is answered with its
//! observed row count, and any superset is answered with the base
//! estimate scaled by the observed/estimated ratio of every anchor it
//! contains — the classical mid-query re-optimization correction (Kabra
//! & DeWitt style), applied on top of whatever session estimator
//! produced the original plan.

use lqo_engine::{CardSource, SpjQuery, TableSet};

/// A [`CardSource`] that corrects a base estimator with observed
/// cardinalities of materialized sub-queries.
pub struct CalibratedCardSource<'a> {
    inner: &'a dyn CardSource,
    /// Materialized anchors: `(covered tables, observed rows)`.
    anchors: Vec<(TableSet, f64)>,
}

impl<'a> CalibratedCardSource<'a> {
    /// Calibrate `inner` with observed `(set, rows)` anchors.
    pub fn new(inner: &'a dyn CardSource, anchors: Vec<(TableSet, f64)>) -> Self {
        CalibratedCardSource { inner, anchors }
    }
}

impl CardSource for CalibratedCardSource<'_> {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        // Exact anchor: the truth needs no estimator.
        for (s, rows) in &self.anchors {
            if *s == set {
                return rows.max(1.0);
            }
        }
        let mut est = self.inner.cardinality(query, set);
        for (s, rows) in &self.anchors {
            if s.is_subset_of(set) {
                let believed = self.inner.cardinality(query, *s).max(1.0);
                est *= rows.max(1.0) / believed;
            }
        }
        est.max(1.0)
    }

    fn name(&self) -> &str {
        "reopt-calibrated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub estimator answering a constant for every set.
    struct Flat(f64);
    impl CardSource for Flat {
        fn cardinality(&self, _q: &SpjQuery, _s: TableSet) -> f64 {
            self.0
        }
        fn name(&self) -> &str {
            "flat"
        }
    }

    fn q() -> SpjQuery {
        use lqo_engine::{JoinCond, TableRef};
        SpjQuery::new(
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            vec![JoinCond::new(
                lqo_engine::ColRef::new("a", "x"),
                lqo_engine::ColRef::new("b", "x"),
            )],
            vec![],
        )
    }

    #[test]
    fn exact_anchor_returns_observation() {
        let inner = Flat(100.0);
        let ab = TableSet::from_iter([0, 1]);
        let cal = CalibratedCardSource::new(&inner, vec![(ab, 4000.0)]);
        assert_eq!(cal.cardinality(&q(), ab), 4000.0);
    }

    #[test]
    fn superset_is_ratio_scaled() {
        let inner = Flat(100.0);
        let a = TableSet::singleton(0);
        // Anchor observed 40x the inner belief: supersets scale by 40.
        let cal = CalibratedCardSource::new(&inner, vec![(a, 4000.0)]);
        let sup = TableSet::from_iter([0, 1]);
        assert_eq!(cal.cardinality(&q(), sup), 4000.0);
    }

    #[test]
    fn disjoint_sets_are_untouched() {
        let inner = Flat(100.0);
        let cal = CalibratedCardSource::new(&inner, vec![(TableSet::singleton(0), 4000.0)]);
        assert_eq!(cal.cardinality(&q(), TableSet::singleton(1)), 100.0);
    }

    #[test]
    fn results_are_floored_at_one_row() {
        let inner = Flat(0.001);
        let cal = CalibratedCardSource::new(&inner, vec![]);
        assert_eq!(cal.cardinality(&q(), TableSet::singleton(0)), 1.0);
    }
}
