//! # lqo-reopt
//!
//! Mid-query adaptive re-optimization with checkpointed sub-plan
//! switching — the survey's answer to the observation that even the best
//! learned (or classical) estimator is sometimes wrong *at runtime*, and
//! the only unimpeachable cardinality is the one you just materialized.
//!
//! The [`ReoptExecutor`] drives a physical plan one operator at a time
//! through the engine's step seam ([`lqo_engine::Executor::exec_scan_step`]
//! / [`lqo_engine::Executor::exec_join_step`]), replicating the serial
//! post-order exactly — same operators, same canonical row order, same
//! work-unit charge sequence — so when nothing triggers, execution is
//! **byte-identical** to the monolithic executor. After every operator
//! (a materialization checkpoint: hash-join build completion,
//! intermediate relation materialization) it compares the observed
//! cardinality with the estimate the plan was built on. When the q-error
//! crosses a configurable threshold for a confirm-streak of consecutive
//! checkpoints (mirroring `lqo-watch` alarm debouncing), it re-optimizes
//! only the *remaining* sub-plan:
//!
//! * already-materialized relations become leaf inputs — exact rows,
//!   zero acquisition cost — to a fresh enumeration over the residual
//!   join graph ([`lqo_engine::enumerate_residual`]);
//! * estimates for not-yet-built sub-queries are calibrated by the
//!   observed/estimated ratios of the materialized anchors
//!   ([`CalibratedCardSource`]), memoized per pass through
//!   [`lqo_cache::OptMemo`];
//! * re-planning work is bounded by [`lqo_guard::ReoptGuard`]'s
//!   allowance carved from the query's remaining execution budget, and
//!   every failure mode — budget exhausted, enumeration error, a panic
//!   out of a faulty estimator — degrades to continuing the original
//!   plan as-is;
//! * a new sub-plan is spliced in only when it is strictly cheaper than
//!   re-costing the current one under the same calibrated estimates, and
//!   re-planned residual sub-plans are reused across queries through the
//!   epoch-tagged residual cache in [`lqo_cache::LqoCache`].
//!
//! Every checkpoint decision lands on the query trace as a
//! [`lqo_obs::trace::ReoptEvent`] and on the `lqo.reopt.*` metrics.

#![warn(missing_docs)]

pub mod calibrate;
pub mod executor;

pub use calibrate::CalibratedCardSource;
pub use executor::{ReoptConfig, ReoptExecutor, ReoptReport};
