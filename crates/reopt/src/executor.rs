//! The checkpointed step-wise executor.
//!
//! Drives a physical plan one operator at a time in the exact serial
//! post-order, materializing every intermediate, and re-optimizes the
//! remaining sub-plan when observed cardinalities contradict the
//! estimates the plan was built on. See the crate docs for the full
//! contract; the load-bearing invariant is that with no trigger the
//! operator sequence, row order, and work-unit charge sequence are
//! byte-identical to [`Executor::execute_collect`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crate::calibrate::CalibratedCardSource;
use lqo_cache::{residual_key, CachedResidual, LqoCache, OptMemo};
use lqo_engine::exec::relation::Relation;
use lqo_engine::optimizer::residual::{
    enumerate_residual, residual_cost, ResidualChoice, ResidualLeaf, ResidualNode,
};
use lqo_engine::{
    CardSource, Catalog, EngineError, ExecConfig, ExecResult, Executor, HintSet, JoinAlgo,
    PhysNode, Result, SpjQuery, WorkMeter,
};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_guard::{ReoptGuard, ReoptGuardConfig};
use lqo_obs::trace::{OperatorEvent, ReoptEvent};
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;

/// Re-optimization tuning.
#[derive(Debug, Clone)]
pub struct ReoptConfig {
    /// Checkpoint q-error (max of over/under-estimation factor) at or
    /// above which a checkpoint counts toward the confirm streak. A
    /// q-error exactly equal to the threshold counts.
    pub q_error_threshold: f64,
    /// Consecutive triggering checkpoints required before a re-planning
    /// pass runs (debouncing, mirroring `lqo-watch` alarm streaks).
    pub confirm_streak: usize,
    /// Maximum number of sub-plan switches per query.
    pub max_reopts: usize,
    /// Budgeting and switch arbitration.
    pub guard: ReoptGuardConfig,
}

impl Default for ReoptConfig {
    fn default() -> ReoptConfig {
        ReoptConfig {
            q_error_threshold: 8.0,
            confirm_streak: 2,
            max_reopts: 2,
            guard: ReoptGuardConfig::default(),
        }
    }
}

/// Per-query summary of checkpoint activity.
#[derive(Debug, Clone, Default)]
pub struct ReoptReport {
    /// Materialization checkpoints inspected.
    pub checkpoints: u64,
    /// Re-planning passes attempted (streak confirmed).
    pub triggers: u64,
    /// Sub-plan switches spliced in.
    pub switches: u64,
    /// Work units spent re-planning (all passes).
    pub replan_work: f64,
    /// One event per re-planning pass, in order.
    pub events: Vec<ReoptEvent>,
}

/// The residual runtime tree: the not-yet-finished part of the plan,
/// with executed sub-trees collapsed into materialized leaves.
#[derive(Debug, Clone)]
enum RtNode {
    /// A pending base-table scan.
    Scan { pos: usize },
    /// An already-materialized relation (index into the mat store).
    Mat { id: usize },
    /// A pending join of two residual sub-trees.
    Join {
        algo: JoinAlgo,
        left: Box<RtNode>,
        right: Box<RtNode>,
    },
}

impl RtNode {
    fn from_phys(plan: &PhysNode) -> RtNode {
        match plan {
            PhysNode::Scan { pos } => RtNode::Scan { pos: *pos },
            PhysNode::Join { algo, left, right } => RtNode::Join {
                algo: *algo,
                left: Box::new(RtNode::from_phys(left)),
                right: Box::new(RtNode::from_phys(right)),
            },
        }
    }

    /// Leaves in left-to-right order.
    fn collect_leaves<'n>(&'n self, out: &mut Vec<&'n RtNode>) {
        match self {
            RtNode::Scan { .. } | RtNode::Mat { .. } => out.push(self),
            RtNode::Join { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// The tree as a [`ResidualNode`] over its in-order leaf indices.
    fn to_residual(&self, next: &mut usize) -> ResidualNode {
        match self {
            RtNode::Scan { .. } | RtNode::Mat { .. } => {
                let i = *next;
                *next += 1;
                ResidualNode::Leaf(i)
            }
            RtNode::Join { algo, left, right } => ResidualNode::Join {
                algo: *algo,
                left: Box::new(left.to_residual(next)),
                right: Box::new(right.to_residual(next)),
            },
        }
    }

    /// Rebuild a runtime tree from a residual plan, resolving leaf
    /// indices against the current leaf list.
    fn from_residual(plan: &ResidualNode, leaves: &[&RtNode]) -> RtNode {
        match plan {
            ResidualNode::Leaf(i) => leaves[*i].clone(),
            ResidualNode::Join { algo, left, right } => RtNode::Join {
                algo: *algo,
                left: Box::new(RtNode::from_residual(left, leaves)),
                right: Box::new(RtNode::from_residual(right, leaves)),
            },
        }
    }
}

fn join_label(algo: JoinAlgo) -> &'static str {
    match algo {
        JoinAlgo::Hash => "HashJoin",
        JoinAlgo::NestedLoop => "NestedLoopJoin",
        JoinAlgo::Merge => "MergeJoin",
    }
}

/// Executes plans with materialization checkpoints and guarded mid-query
/// re-optimization. Construct per query batch; cheap to build.
pub struct ReoptExecutor<'a> {
    catalog: &'a Catalog,
    exec: Executor<'a>,
    max_work: Option<f64>,
    card: Arc<dyn CardSource>,
    hints: HintSet,
    cfg: ReoptConfig,
    guard: ReoptGuard,
    obs: ObsContext,
    prof: ProfContext,
    flight: FlightContext,
    cache: Option<Arc<LqoCache>>,
}

impl<'a> ReoptExecutor<'a> {
    /// A checkpointed executor over `catalog`. `card` is the estimator
    /// stack the incoming plans were built on — checkpoint q-errors are
    /// measured against it and re-planning calibrates on top of it.
    pub fn new(
        catalog: &'a Catalog,
        exec_config: ExecConfig,
        card: Arc<dyn CardSource>,
        cfg: ReoptConfig,
    ) -> ReoptExecutor<'a> {
        let guard = ReoptGuard::new(cfg.guard.clone());
        let max_work = exec_config.max_work;
        ReoptExecutor {
            catalog,
            exec: Executor::new(catalog, exec_config),
            max_work,
            card,
            hints: HintSet::default(),
            cfg,
            guard,
            obs: ObsContext::disabled(),
            prof: ProfContext::disabled(),
            flight: FlightContext::disabled(),
            cache: None,
        }
    }

    /// Attach an observability context (exec metrics, operator events,
    /// [`ReoptEvent`]s, `lqo.reopt.*` counters).
    pub fn with_obs(mut self, obs: ObsContext) -> ReoptExecutor<'a> {
        self.exec = self.exec.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Attach a profiling context; re-planning runs under a `reopt`
    /// phase.
    pub fn with_prof(mut self, prof: ProfContext) -> ReoptExecutor<'a> {
        self.exec = self.exec.with_prof(prof.clone());
        self.prof = prof;
        self
    }

    /// Attach a flight recorder; checkpoint decisions (switch, keep,
    /// degrade) are published onto the black-box ring, and a switch or
    /// degrade is an incident trigger. The inner executor publishes its
    /// span/fault events through the same recorder.
    pub fn with_flight(mut self, flight: FlightContext) -> ReoptExecutor<'a> {
        self.exec = self.exec.with_flight(flight.clone());
        self.flight = flight;
        self
    }

    /// Hints constraining residual enumeration (same semantics as the
    /// full optimizer: allowed algorithms, DP size limit).
    pub fn with_hints(mut self, hints: HintSet) -> ReoptExecutor<'a> {
        self.hints = hints;
        self
    }

    /// Reuse re-planned residual sub-plans across queries through the
    /// epoch-tagged residual cache.
    pub fn with_cache(mut self, cache: Arc<LqoCache>) -> ReoptExecutor<'a> {
        self.cache = Some(cache);
        self
    }

    /// Execute `plan` for `query` under checkpointing.
    pub fn execute(&self, query: &SpjQuery, plan: &PhysNode) -> Result<ExecResult> {
        self.execute_collect(query, plan).map(|(r, _, _)| r)
    }

    /// Execute, also returning the final output relation and the
    /// checkpoint report. With no trigger, the result and relation are
    /// byte-identical to [`Executor::execute_collect`]; after a switch,
    /// the relation is plan-order for the *new* plan (compare
    /// [`Relation::normalize`]d forms across plans).
    pub fn execute_collect(
        &self,
        query: &SpjQuery,
        plan: &PhysNode,
    ) -> Result<(ExecResult, Relation, ReoptReport)> {
        // Same validation as the monolithic executor.
        let mut scans = 0usize;
        plan.visit_bottom_up(&mut |n| {
            if matches!(n, PhysNode::Scan { .. }) {
                scans += 1;
            }
        });
        if plan.tables() != query.all_tables() || scans != query.num_tables() {
            return Err(EngineError::InvalidPlan(format!(
                "plan covers {} with {} scans; query has {} tables",
                plan.tables(),
                scans,
                query.num_tables()
            )));
        }
        let _span = self.obs.span("exec.query");
        let _prof_exec = self.prof.phase("execute");
        let detail = self.prof.sample_detail();
        let start = Instant::now();
        let mut meter = WorkMeter::new(self.max_work);
        let mut intermediates = Vec::new();
        let mut events = Vec::new();
        let mut report = ReoptReport::default();
        let attempt = self.drive(
            query,
            plan,
            detail,
            &mut meter,
            &mut intermediates,
            &mut events,
            &mut report,
        );
        if self.flight.is_enabled() {
            for ev in &report.events {
                self.flight.publish(
                    Producer::Reopt,
                    FlightEvent::Reopt {
                        tables: ev.tables,
                        action: ev.action.clone(),
                        q_error: ev.q_error,
                    },
                );
            }
        }
        if self.obs.is_enabled() {
            let r = &report;
            self.obs.count("lqo.reopt.checkpoints", r.checkpoints);
            self.obs.count("lqo.reopt.triggers", r.triggers);
            self.obs.count("lqo.reopt.switches", r.switches);
            for ev in &r.events {
                match ev.action.as_str() {
                    "switch" => {}
                    a if a.starts_with("degrade") => self.obs.count("lqo.reopt.degraded", 1),
                    "keep:identical" => self.obs.count("lqo.reopt.noop", 1),
                    _ => {}
                }
                self.obs.observe("lqo.reopt.replan_work", ev.replan_work);
            }
            let evs = report.events.clone();
            self.obs.with_query(move |t| {
                for ev in evs {
                    t.push_reopt(ev);
                }
            });
        }
        match attempt {
            Ok(rel) => {
                if self.obs.is_enabled() {
                    self.obs.count("lqo.exec.queries", 1);
                    self.obs.observe("lqo.exec.work_units", meter.work());
                    self.obs.with_query(|t| t.exec.operators.extend(events));
                }
                let result = ExecResult {
                    count: rel.len() as u64,
                    work: meter.work(),
                    wall: start.elapsed(),
                    intermediates,
                };
                Ok((result, rel, report))
            }
            Err(e) => {
                if self.obs.is_enabled() {
                    if matches!(e, EngineError::WorkLimitExceeded { .. }) {
                        self.obs.count("lqo.exec.timeouts", 1);
                        self.obs.with_query(|t| {
                            t.exec.timeout = true;
                            t.exec.operators.extend(events);
                        });
                    }
                    self.obs.count("lqo.exec.errors", 1);
                }
                Err(e)
            }
        }
    }

    /// The step loop: execute the leftmost ready operator, checkpoint,
    /// maybe re-plan, repeat.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        query: &SpjQuery,
        plan: &PhysNode,
        detail: bool,
        meter: &mut WorkMeter,
        intermediates: &mut Vec<(lqo_engine::TableSet, u64)>,
        events: &mut Vec<OperatorEvent>,
        report: &mut ReoptReport,
    ) -> Result<Relation> {
        let mut tree = RtNode::from_phys(plan);
        let mut mats: Vec<Relation> = Vec::new();
        let mut streak = 0usize;
        let mut switches = 0usize;
        loop {
            let done_id = match &tree {
                RtNode::Mat { id } => Some(*id),
                _ => None,
            };
            if let Some(id) = done_id {
                return Ok(mats[id].clone());
            }
            let (id, op, own_work) = self
                .exec_next(query, &mut tree, detail, meter, &mut mats)?
                .expect("unfinished tree has a ready operator");
            let rel = &mats[id];
            intermediates.push((rel.tables(), rel.len() as u64));
            if self.obs.is_enabled() {
                events.push(OperatorEvent {
                    op: op.to_string(),
                    tables: rel.tables().0,
                    true_rows: rel.len() as u64,
                    est_rows: None,
                    work: own_work,
                });
            }
            // -- materialization checkpoint --
            if matches!(tree, RtNode::Mat { .. }) {
                continue; // final operator: nothing left to re-plan
            }
            report.checkpoints += 1;
            let observed = rel.len() as f64;
            let set = rel.tables();
            let est = match catch_unwind(AssertUnwindSafe(|| self.card.cardinality(query, set))) {
                Ok(v) if v.is_finite() && v >= 0.0 => v,
                // A faulty estimator must not take the query down; an
                // unusable estimate reads as "no evidence of error".
                _ => observed,
            };
            let q = q_error(observed, est);
            if q >= self.cfg.q_error_threshold {
                streak += 1;
            } else {
                streak = 0;
            }
            if streak < self.cfg.confirm_streak || switches >= self.cfg.max_reopts {
                continue;
            }
            streak = 0;
            report.triggers += 1;
            let _reopt_phase = self.prof.phase("reopt");
            let event = self.replan(query, &mut tree, &mats, (set.0, observed, est, q), meter);
            report.replan_work += event.replan_work;
            if event.action == "switch" {
                report.switches += 1;
                switches += 1;
            }
            report.events.push(event);
        }
    }

    /// Execute the leftmost ready operator in `tree`, returning the id
    /// of the relation it materialized, its operator label, and its own
    /// work charge. `None` if the tree is finished.
    fn exec_next(
        &self,
        query: &SpjQuery,
        tree: &mut RtNode,
        detail: bool,
        meter: &mut WorkMeter,
        mats: &mut Vec<Relation>,
    ) -> Result<Option<(usize, &'static str, f64)>> {
        match tree {
            RtNode::Mat { .. } => Ok(None),
            RtNode::Scan { pos } => {
                let _p = detail.then(|| self.prof.phase_sampled("Scan"));
                let before = meter.work();
                let rel = self.exec.exec_scan_step(query, *pos, meter)?;
                let own = meter.work() - before;
                self.prof.charge(own);
                let id = mats.len();
                mats.push(rel);
                *tree = RtNode::Mat { id };
                Ok(Some((id, "Scan", own)))
            }
            RtNode::Join { algo, left, right } => {
                if let Some(step) = self.exec_next(query, left, detail, meter, mats)? {
                    return Ok(Some(step));
                }
                if let Some(step) = self.exec_next(query, right, detail, meter, mats)? {
                    return Ok(Some(step));
                }
                let (l, r) = match (left.as_ref(), right.as_ref()) {
                    (RtNode::Mat { id: l }, RtNode::Mat { id: r }) => {
                        (mats[*l].clone(), mats[*r].clone())
                    }
                    _ => unreachable!("children just finished"),
                };
                let algo = *algo;
                let _p = detail.then(|| self.prof.phase_sampled(join_label(algo)));
                let before = meter.work();
                let rel = self.exec.exec_join_step(query, algo, l, r, meter)?;
                let own = meter.work() - before;
                self.prof.charge(own);
                let id = mats.len();
                mats.push(rel);
                *tree = RtNode::Mat { id };
                Ok(Some((id, join_label(algo), own)))
            }
        }
    }

    /// One guarded re-planning pass over the residual tree. Never
    /// errors: every failure mode degrades to keeping the tree as-is.
    fn replan(
        &self,
        query: &SpjQuery,
        tree: &mut RtNode,
        mats: &[Relation],
        checkpoint: (u64, f64, f64, f64),
        meter: &mut WorkMeter,
    ) -> ReoptEvent {
        let (cp_tables, observed, est, q) = checkpoint;
        let mut event = ReoptEvent {
            tables: cp_tables,
            observed_rows: observed as u64,
            est_rows: est,
            q_error: q,
            action: String::new(),
            replan_work: 0.0,
            old_cost: None,
            new_cost: None,
        };
        // Residual leaves, left-to-right: materialized intermediates
        // carry their exact observed rows at zero acquisition cost;
        // pending scans carry calibrated estimates and their scan cost.
        let mut rt_leaves = Vec::new();
        tree.collect_leaves(&mut rt_leaves);
        let mut anchors = Vec::new();
        for leaf in &rt_leaves {
            if let RtNode::Mat { id } = leaf {
                anchors.push((mats[*id].tables(), mats[*id].len() as f64));
            }
        }
        let calibrated = CalibratedCardSource::new(self.card.as_ref(), anchors);
        let memo = OptMemo::new(&calibrated);
        let params = self.exec.params();
        let allowance = self.guard.replan_budget(meter.remaining());
        let mut replan_meter = WorkMeter::new(Some(allowance));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut leaves = Vec::with_capacity(rt_leaves.len());
            for leaf in &rt_leaves {
                leaves.push(match leaf {
                    RtNode::Mat { id } => ResidualLeaf {
                        set: mats[*id].tables(),
                        rows: mats[*id].len() as f64,
                        cost: 0.0,
                        materialized: true,
                    },
                    RtNode::Scan { pos } => {
                        let nrows = self
                            .catalog
                            .table(&query.tables[*pos].table)
                            .map(|t| t.nrows())
                            .unwrap_or(0) as f64;
                        let npreds = query.predicates_on(*pos).len();
                        ResidualLeaf {
                            set: lqo_engine::TableSet::singleton(*pos),
                            rows: memo.cardinality(query, lqo_engine::TableSet::singleton(*pos)),
                            cost: params.scan_work(nrows, npreds),
                            materialized: false,
                        }
                    }
                    RtNode::Join { .. } => unreachable!("collect_leaves returns leaves"),
                });
            }
            let mut next = 0usize;
            let current = tree.to_residual(&mut next);
            let old_cost = residual_cost(
                query,
                &leaves,
                &current,
                &memo,
                params,
                &self.hints,
                &mut replan_meter,
            )?;
            // Residual cache: skip enumeration on a hit, but re-cost the
            // cached plan under the *current* calibration before
            // trusting it.
            let key = self
                .cache
                .as_ref()
                .map(|_| residual_key(query, &leaves, calibrated.name()));
            let mut from_cache = false;
            let choice = match self
                .cache
                .as_ref()
                .and_then(|c| c.residual_lookup(key.as_deref().expect("key built with cache")))
            {
                Some(cached) => {
                    let cost = residual_cost(
                        query,
                        &leaves,
                        &cached.plan,
                        &memo,
                        params,
                        &self.hints,
                        &mut replan_meter,
                    )?;
                    from_cache = true;
                    ResidualChoice {
                        plan: cached.plan,
                        cost,
                    }
                }
                None => enumerate_residual(
                    query,
                    &leaves,
                    &memo,
                    params,
                    &self.hints,
                    &mut replan_meter,
                )?,
            };
            Ok::<_, EngineError>((current, old_cost, choice, key, from_cache))
        }));
        event.replan_work = replan_meter.work();
        // Charging the pass against the query's own meter cannot trip it:
        // the allowance never exceeds the remaining budget.
        let _ = meter.add(replan_meter.work());
        match outcome {
            Err(_) => {
                event.action = "degrade:panic".to_string();
            }
            Ok(Err(EngineError::WorkLimitExceeded { .. })) => {
                event.action = "keep:budget".to_string();
            }
            Ok(Err(_)) => {
                event.action = "degrade:error".to_string();
            }
            Ok(Ok((current, old_cost, choice, key, from_cache))) => {
                event.old_cost = Some(old_cost);
                event.new_cost = Some(choice.cost);
                if choice.plan == current {
                    event.action = "keep:identical".to_string();
                } else if self.guard.accepts(old_cost, choice.cost) {
                    *tree = RtNode::from_residual(&choice.plan, &rt_leaves);
                    event.action = "switch".to_string();
                    if let (Some(cache), Some(key), false) = (&self.cache, key, from_cache) {
                        cache.residual_store(
                            key,
                            CachedResidual {
                                plan: choice.plan,
                                cost: choice.cost,
                            },
                            calibrated.name(),
                        );
                    }
                } else {
                    event.action = "keep:cost".to_string();
                }
            }
        }
        event
    }
}

fn q_error(observed: f64, est: f64) -> f64 {
    let o = observed.max(1.0);
    let e = est.max(1.0);
    (o / e).max(e / o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_cache::CacheConfig;
    use lqo_engine::optimizer::InjectedCardSource;
    use lqo_engine::query::parse_query;
    use lqo_engine::stats::table_stats::{CatalogStats, StatsConfig};
    use lqo_engine::table::TableBuilder;
    use lqo_engine::{ExecMode, TableSet, TraditionalCardSource};

    /// Chain a -> b -> d (same shape as the optimizer tests): 50, 500,
    /// 1500 rows with foreign keys down the chain.
    fn chain() -> (Arc<Catalog>, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..500).collect())
                .int("a_id", (0..500).map(|i| i % 50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("d")
                .int("id", (0..1500).collect())
                .int("b_id", (0..1500).map(|i| i % 500).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q =
            parse_query("SELECT COUNT(*) FROM a a, b b, d d WHERE a.id = b.a_id AND b.id = d.b_id")
                .unwrap();
        (Arc::new(c), q)
    }

    fn traditional(c: &Arc<Catalog>) -> Arc<dyn CardSource> {
        let stats = Arc::new(CatalogStats::build(c, StatsConfig::default()));
        Arc::new(TraditionalCardSource::new(c.clone(), stats))
    }

    /// A good left-deep plan: (a ⋈ b) ⋈ d, hash joins.
    fn good_plan() -> PhysNode {
        PhysNode::join(
            JoinAlgo::Hash,
            PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1)),
            PhysNode::scan(2),
        )
    }

    /// A deliberately bad plan: cross-product a × d first, then join b.
    fn bad_plan() -> PhysNode {
        PhysNode::join(
            JoinAlgo::Hash,
            PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(0), PhysNode::scan(2)),
            PhysNode::scan(1),
        )
    }

    fn never_reopt() -> ReoptConfig {
        ReoptConfig {
            q_error_threshold: f64::INFINITY,
            ..ReoptConfig::default()
        }
    }

    fn eager_reopt() -> ReoptConfig {
        ReoptConfig {
            q_error_threshold: 8.0,
            confirm_streak: 1,
            max_reopts: 2,
            guard: ReoptGuardConfig::default(),
        }
    }

    #[test]
    fn untriggered_execution_is_byte_identical_to_serial() {
        let (c, q) = chain();
        let card = traditional(&c);
        for plan in [good_plan(), bad_plan()] {
            let (base, base_rel) = Executor::with_defaults(&c)
                .execute_collect(&q, &plan)
                .unwrap();
            let re = ReoptExecutor::new(&c, ExecConfig::default(), card.clone(), never_reopt());
            let (out, rel, report) = re.execute_collect(&q, &plan).unwrap();
            assert_eq!(report.triggers, 0);
            assert_eq!(out.count, base.count);
            assert_eq!(out.work.to_bits(), base.work.to_bits());
            assert_eq!(out.intermediates, base.intermediates);
            assert_eq!(rel.digest(), base_rel.digest());
        }
    }

    #[test]
    fn untriggered_parallel_matches_serial_baseline() {
        let (c, q) = chain();
        let card = traditional(&c);
        let plan = good_plan();
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        for threads in [2, 4] {
            let re = ReoptExecutor::new(
                &c,
                ExecConfig {
                    mode: ExecMode::Parallel { threads },
                    ..Default::default()
                },
                card.clone(),
                never_reopt(),
            );
            let (out, rel, _) = re.execute_collect(&q, &plan).unwrap();
            assert_eq!(out.count, base.count);
            assert_eq!(out.work.to_bits(), base.work.to_bits());
            assert_eq!(rel.digest(), base_rel.digest());
        }
    }

    #[test]
    fn untriggered_batched_matches_serial_baseline() {
        let (c, q) = chain();
        let card = traditional(&c);
        let plan = good_plan();
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        let modes = [
            ExecMode::Batched { batch_size: 1 },
            ExecMode::Batched { batch_size: 64 },
            ExecMode::BatchedParallel {
                threads: 2,
                batch_size: 64,
            },
        ];
        for mode in modes {
            let re = ReoptExecutor::new(
                &c,
                ExecConfig {
                    mode,
                    ..Default::default()
                },
                card.clone(),
                never_reopt(),
            );
            let (out, rel, _) = re.execute_collect(&q, &plan).unwrap();
            assert_eq!(out.count, base.count, "{mode}");
            assert_eq!(out.work.to_bits(), base.work.to_bits(), "{mode}");
            assert_eq!(rel.digest(), base_rel.digest(), "{mode}");
        }
    }

    /// Poison the estimate of `a`'s scan so the first checkpoint sees a
    /// huge q-error; the executor must re-plan away from the cross
    /// product and still produce the exact answer.
    #[test]
    fn poisoned_estimate_switches_subplan_and_preserves_results() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0); // actually 50
        let card: Arc<dyn CardSource> = injected;
        let plan = bad_plan();
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        let re = ReoptExecutor::new(&c, ExecConfig::default(), card, eager_reopt());
        let (out, rel, report) = re.execute_collect(&q, &plan).unwrap();
        assert_eq!(report.switches, 1, "events: {:?}", report.events);
        assert_eq!(report.events[0].action, "switch");
        let (old_c, new_c) = (
            report.events[0].old_cost.unwrap(),
            report.events[0].new_cost.unwrap(),
        );
        assert!(new_c < old_c, "switch must be strictly cheaper");
        // The answer is plan-invariant: same count, same tuple multiset.
        assert_eq!(out.count, base.count);
        assert_eq!(
            rel.normalize().canonical_digest(),
            base_rel.normalize().canonical_digest()
        );
        // The switch avoided the 75k-row cross product.
        assert!(out.work < base.work);
    }

    /// A checkpoint q-error exactly at the threshold counts toward the
    /// streak (satellite edge case).
    #[test]
    fn threshold_exactly_met_triggers() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        // Observed 50 rows, injected 50/8 -> q-error exactly 8.0.
        injected.inject(&q, TableSet::singleton(0), 50.0 / 8.0);
        let re = ReoptExecutor::new(&c, ExecConfig::default(), injected, eager_reopt());
        let (_, _, report) = re.execute_collect(&q, &good_plan()).unwrap();
        assert!(report.triggers >= 1, "q == threshold must trigger");
    }

    /// A zero re-planning allowance (cap or remaining budget exhausted)
    /// degrades to plan-as-is without erroring the query.
    #[test]
    fn zero_replan_budget_degrades_to_plan_as_is() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0);
        let card: Arc<dyn CardSource> = injected;
        let plan = bad_plan();
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        let cfg = ReoptConfig {
            guard: ReoptGuardConfig {
                replan_work_cap: 0.0,
            },
            ..eager_reopt()
        };
        let re = ReoptExecutor::new(&c, ExecConfig::default(), card, cfg);
        let (out, rel, report) = re.execute_collect(&q, &plan).unwrap();
        assert!(report.triggers >= 1);
        assert_eq!(report.switches, 0);
        assert!(report.events.iter().all(|e| e.action == "keep:budget"));
        // Plan-as-is: the run is byte-identical to the baseline.
        assert_eq!(out.count, base.count);
        assert_eq!(rel.digest(), base_rel.digest());
    }

    /// When enumeration re-selects the current sub-plan, the splice is a
    /// no-op and the run stays on the original plan (satellite edge
    /// case).
    #[test]
    fn identical_replan_is_noop_splice() {
        // Two-table query whose plan is the unique best residual: after
        // `a` (50 rows) materializes, a hash join building on the small
        // side and probing `b` (500 rows) is exactly what enumeration
        // re-selects, so the splice must be a no-op.
        let (c, _) = chain();
        let q = parse_query("SELECT COUNT(*) FROM a a, b b WHERE a.id = b.a_id").unwrap();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0); // trigger on a
        let card: Arc<dyn CardSource> = injected;
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        let re = ReoptExecutor::new(&c, ExecConfig::default(), card, eager_reopt());
        let (out, rel, report) = re.execute_collect(&q, &plan).unwrap();
        assert!(report.triggers >= 1);
        assert_eq!(report.switches, 0, "events: {:?}", report.events);
        assert!(
            report.events.iter().any(|e| e.action == "keep:identical"),
            "events: {:?}",
            report.events
        );
        assert_eq!(out.count, base.count);
        assert_eq!(rel.digest(), base_rel.digest());
    }

    /// An estimator that panics on multi-table lookups: checkpoints on
    /// base scans survive, and the panic surfaces inside re-planning.
    struct PanicOnJoin {
        inner: Arc<dyn CardSource>,
    }
    impl CardSource for PanicOnJoin {
        fn cardinality(&self, query: &SpjQuery, set: lqo_engine::TableSet) -> f64 {
            if set.len() >= 2 {
                panic!("injected estimator fault");
            }
            self.inner.cardinality(query, set)
        }
        fn name(&self) -> &str {
            "panic-on-join"
        }
    }

    /// A fault inside re-planning must degrade to the original plan with
    /// zero aborts and byte-identical results.
    #[test]
    fn estimator_panic_during_replan_degrades() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0);
        let card: Arc<dyn CardSource> = Arc::new(PanicOnJoin { inner: injected });
        let plan = bad_plan();
        let (base, base_rel) = Executor::with_defaults(&c)
            .execute_collect(&q, &plan)
            .unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let re = ReoptExecutor::new(&c, ExecConfig::default(), card, eager_reopt());
        let out = re.execute_collect(&q, &plan);
        std::panic::set_hook(prev);
        let (out, rel, report) = out.unwrap();
        assert!(report.triggers >= 1);
        assert!(report.events.iter().all(|e| e.action == "degrade:panic"));
        assert_eq!(out.count, base.count);
        assert_eq!(rel.digest(), base_rel.digest());
    }

    /// Re-planned residual sub-plans are reused through the cache: the
    /// second identical query skips enumeration.
    #[test]
    fn residual_cache_reuses_replanned_subplans() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0);
        let card: Arc<dyn CardSource> = injected;
        let cache = Arc::new(LqoCache::new(CacheConfig::default()));
        let plan = bad_plan();
        let run = |expect_hit: bool| {
            let re = ReoptExecutor::new(&c, ExecConfig::default(), card.clone(), eager_reopt())
                .with_cache(cache.clone());
            let (_, _, report) = re.execute_collect(&q, &plan).unwrap();
            assert_eq!(report.switches, 1);
            if expect_hit {
                assert!(cache.stats().residual_hits >= 1);
            }
        };
        run(false);
        assert_eq!(cache.residual_len(), 1);
        run(true);
    }

    /// Work-limit errors surface identically to the monolithic executor
    /// (differential harness "same error" requirement).
    #[test]
    fn work_limit_errors_match_baseline() {
        let (c, q) = chain();
        let card = traditional(&c);
        let plan = bad_plan();
        let cfg = ExecConfig {
            max_work: Some(1000.0),
            ..Default::default()
        };
        let base = Executor::new(&c, cfg.clone()).execute(&q, &plan);
        let re = ReoptExecutor::new(&c, cfg, card, never_reopt());
        let out = re.execute(&q, &plan);
        match (base, out) {
            (
                Err(EngineError::WorkLimitExceeded { limit: a }),
                Err(EngineError::WorkLimitExceeded { limit: b }),
            ) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("expected matching work-limit errors, got {other:?}"),
        }
    }

    /// Reopt events land on the query trace and `lqo.reopt.*` metrics.
    #[test]
    fn obs_records_reopt_events_and_metrics() {
        let (c, q) = chain();
        let injected = Arc::new(InjectedCardSource::new(traditional(&c)));
        injected.inject(&q, TableSet::singleton(0), 1.0);
        let card: Arc<dyn CardSource> = injected;
        let obs = ObsContext::enabled();
        obs.begin_query("reopt-test");
        let re = ReoptExecutor::new(&c, ExecConfig::default(), card, eager_reopt())
            .with_obs(obs.clone());
        re.execute(&q, &bad_plan()).unwrap();
        let trace = obs.end_query().unwrap();
        assert!(!trace.reopt.is_empty());
        assert_eq!(trace.reopt[0].action, "switch");
        assert!(trace.reopt[0].q_error >= 8.0);
        let snap = obs.metrics().unwrap().snapshot();
        assert!(snap.counter("lqo.reopt.checkpoints").unwrap_or(0) >= 1);
        assert_eq!(snap.counter("lqo.reopt.switches"), Some(1));
        assert!(snap.counter("lqo.exec.queries").unwrap_or(0) >= 1);
    }
}
