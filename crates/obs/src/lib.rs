//! # lqo-obs — query-lifecycle observability
//!
//! A small, dependency-light observability layer threaded through the
//! learned-qo stack. Three pillars:
//!
//! * **Spans** ([`span::Tracer`]) — monotonic wall-clock timing of nested
//!   regions (parse → plan → execute → feedback, and anything inside).
//! * **Metrics** ([`metrics::MetricsRegistry`]) — named counters, gauges,
//!   and log-bucketed histograms. No global state: every registry is an
//!   explicit value owned by an [`ObsContext`].
//! * **Plan provenance** ([`trace::QueryTrace`]) — one structured record
//!   per query covering what the planner saw (cardinality lookups, cost
//!   evaluations, subproblems enumerated, chosen hints), what the executor
//!   did (per-operator true cardinalities and work units), and which
//!   driver made the decision.
//!
//! The whole layer is off by default. [`ObsContext::disabled`] carries no
//! allocation and every recording call on it is a branch on a `None` —
//! the hot path of an instrumented component does not pay for
//! observability it is not using.
//!
//! Metric naming convention: `lqo.<component>.<metric>` with `_ns`,
//! `_rows`, or `_units` suffixes for histograms, e.g.
//! `lqo.exec.queries`, `lqo.exec.work_units`, `lqo.plan.subproblems`,
//! `lqo.card.qerror`, `lqo.pilot.decision_ns`.

pub mod export;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod render;
pub mod span;
pub mod trace;

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

use metrics::MetricsRegistry;
use span::{SpanGuard, Tracer};
use trace::QueryTrace;

/// Shared handle to one observability session.
///
/// Cheap to clone (an `Option<Arc>`); a disabled context is a `None` and
/// every operation on it returns immediately. Components in the stack
/// hold a clone and record through it; whoever created the enabled
/// context harvests spans, metrics, and finished [`QueryTrace`]s.
#[derive(Clone, Default)]
pub struct ObsContext {
    inner: Option<Arc<ObsInner>>,
}

struct ObsInner {
    tracer: Tracer,
    metrics: MetricsRegistry,
    /// The query currently being traced (one at a time per context).
    current: Mutex<Option<QueryTrace>>,
    /// Completed query traces, in completion order.
    finished: Mutex<Vec<QueryTrace>>,
}

impl ObsContext {
    /// An enabled context with an empty tracer, registry, and trace log.
    pub fn enabled() -> ObsContext {
        ObsContext {
            inner: Some(Arc::new(ObsInner {
                tracer: Tracer::enabled(),
                metrics: MetricsRegistry::new(),
                current: Mutex::new(None),
                finished: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op context: all recording calls compile to a `None` check.
    pub fn disabled() -> ObsContext {
        ObsContext { inner: None }
    }

    /// Whether this context records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a named span; it closes (and records) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            Some(inner) => inner.tracer.span(name),
            None => SpanGuard::noop(),
        }
    }

    /// The span tracer, if enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|i| &i.tracer)
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Add `delta` to the named counter (no-op when disabled).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.inc_counter(name, delta);
        }
    }

    /// Set the named gauge (no-op when disabled).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Record one observation in the named histogram (no-op when disabled).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Start tracing a query. Any previously current trace is finalized
    /// into the finished log first, so a panicking caller cannot lose it.
    pub fn begin_query(&self, query: &str) {
        if let Some(inner) = &self.inner {
            let mut cur = inner.current.lock();
            if let Some(prev) = cur.take() {
                inner.finished.lock().push(prev);
            }
            *cur = Some(QueryTrace::new(query));
        }
    }

    /// Mutate the in-flight query trace (no-op when disabled or when no
    /// query is being traced). This is how instrumented components deep
    /// in the stack attach planner and executor provenance.
    pub fn with_query<F: FnOnce(&mut QueryTrace)>(&self, f: F) {
        if let Some(inner) = &self.inner {
            if let Some(trace) = inner.current.lock().as_mut() {
                f(trace);
            }
        }
    }

    /// Time a named query phase (parse/plan/execute/feedback): runs `f`,
    /// records a span plus a phase entry on the current trace, and
    /// returns `f`'s output. When disabled this is just `f()`.
    pub fn phase<T, F: FnOnce() -> T>(&self, name: &str, f: F) -> T {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let _span = inner.tracer.span(name);
                let start = Instant::now();
                let out = f();
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                if let Some(trace) = inner.current.lock().as_mut() {
                    trace.record_phase(name, elapsed_ns);
                }
                out
            }
        }
    }

    /// Finish the current query trace and move it to the finished log.
    /// Returns a clone of the finalized trace.
    pub fn end_query(&self) -> Option<QueryTrace> {
        let inner = self.inner.as_deref()?;
        let trace = inner.current.lock().take()?;
        inner.finished.lock().push(trace.clone());
        Some(trace)
    }

    /// All finished query traces so far (clones; the log is kept).
    pub fn finished_traces(&self) -> Vec<QueryTrace> {
        match &self.inner {
            Some(inner) => inner.finished.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Drain the finished-trace log, returning the traces.
    pub fn take_finished_traces(&self) -> Vec<QueryTrace> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.finished.lock()),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_is_inert() {
        let obs = ObsContext::disabled();
        assert!(!obs.is_enabled());
        obs.count("lqo.test.counter", 5);
        obs.observe("lqo.test.hist", 1.0);
        obs.begin_query("SELECT 1");
        obs.with_query(|t| t.planner.subproblems += 1);
        let out = obs.phase("plan", || 42);
        assert_eq!(out, 42);
        assert!(obs.end_query().is_none());
        assert!(obs.finished_traces().is_empty());
        assert!(obs.metrics().is_none());
        assert!(obs.tracer().is_none());
        drop(obs.span("anything"));
    }

    #[test]
    fn query_lifecycle_collects_phases_and_provenance() {
        let obs = ObsContext::enabled();
        obs.begin_query("SELECT * FROM t0, t1");
        obs.phase("parse", || ());
        obs.phase("plan", || {
            obs.with_query(|t| {
                t.planner.algo = Some("dp".into());
                t.planner.subproblems = 7;
            });
        });
        obs.with_query(|t| t.driver = Some("BaoDriver".into()));
        let trace = obs.end_query().expect("trace");
        assert_eq!(trace.query, "SELECT * FROM t0, t1");
        assert_eq!(trace.driver.as_deref(), Some("BaoDriver"));
        assert_eq!(trace.planner.algo.as_deref(), Some("dp"));
        assert_eq!(trace.planner.subproblems, 7);
        let names: Vec<_> = trace.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["parse", "plan"]);
        assert_eq!(obs.finished_traces().len(), 1);
        assert_eq!(obs.take_finished_traces().len(), 1);
        assert!(obs.finished_traces().is_empty());
    }

    #[test]
    fn begin_query_flushes_unfinished_predecessor() {
        let obs = ObsContext::enabled();
        obs.begin_query("q1");
        obs.begin_query("q2");
        obs.end_query();
        let all = obs.finished_traces();
        let queries: Vec<_> = all.iter().map(|t| t.query.as_str()).collect();
        assert_eq!(queries, ["q1", "q2"]);
    }

    #[test]
    fn clones_share_state() {
        let obs = ObsContext::enabled();
        let clone = obs.clone();
        clone.count("lqo.shared", 3);
        obs.count("lqo.shared", 4);
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.shared"), Some(7));
    }
}
