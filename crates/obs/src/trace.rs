//! Plan provenance: the per-query [`QueryTrace`] record.
//!
//! One `QueryTrace` tells the story of a single query end to end: the
//! lifecycle phases it went through (parse → plan → execute → feedback),
//! what the planner explored and believed (subproblems, cardinality
//! lookups, cost evaluations, hint set), what the executor measured
//! (per-operator true cardinalities and work units), and which driver —
//! if any — made the planning decision and how long that decision took.

/// A timed lifecycle phase (parse/plan/execute/feedback).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name.
    pub name: String,
    /// Wall time spent in the phase, nanoseconds.
    pub elapsed_ns: u64,
}

/// One cardinality-source lookup made while planning.
#[derive(Debug, Clone, PartialEq)]
pub struct CardLookup {
    /// Bitmask of the tables in the subproblem (`TableSet` raw bits).
    pub tables: u64,
    /// The estimate the planner received, in rows.
    pub est_rows: f64,
}

/// What the planner did and believed for one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlannerTrace {
    /// Join-enumeration algorithm used (`"dp"` or `"greedy"`).
    pub algo: Option<String>,
    /// Number of joint subproblems enumerated.
    pub subproblems: u64,
    /// Number of cost-model evaluations.
    pub cost_evals: u64,
    /// Name of the cardinality source consulted.
    pub card_source: Option<String>,
    /// Every cardinality lookup, in lookup order.
    pub card_lookups: Vec<CardLookup>,
    /// Human-readable rendering of the hint set in force.
    pub hints: Option<String>,
    /// Estimated cost of the chosen plan.
    pub chosen_cost: Option<f64>,
}

impl PlannerTrace {
    /// The estimate recorded for a table set, if one was looked up.
    pub fn estimate_for(&self, tables: u64) -> Option<f64> {
        self.card_lookups
            .iter()
            .rev()
            .find(|l| l.tables == tables)
            .map(|l| l.est_rows)
    }
}

/// One operator finishing during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorEvent {
    /// Operator label (`"HashJoin"`, `"Scan"`, ...).
    pub op: String,
    /// Bitmask of the tables this operator's output covers.
    pub tables: u64,
    /// True output cardinality, in rows.
    pub true_rows: u64,
    /// Planner's estimate for the same table set, if it made one.
    pub est_rows: Option<f64>,
    /// Work units charged to this operator.
    pub work: f64,
}

impl OperatorEvent {
    /// Q-error of the estimate against the true cardinality
    /// (`max(est/true, true/est)`, both floored at one row).
    pub fn q_error(&self) -> Option<f64> {
        let est = self.est_rows?.max(1.0);
        let truth = (self.true_rows as f64).max(1.0);
        Some((est / truth).max(truth / est))
    }
}

/// What the executor measured for one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecTrace {
    /// Operator completions, in completion (bottom-up) order.
    pub operators: Vec<OperatorEvent>,
    /// Whether execution hit its work-unit budget and was cut off.
    pub timeout: bool,
}

/// One guard intervention while processing the query: a contained fault,
/// a breaker decision, or an execution-layer replan.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardEvent {
    /// Guarded component (e.g. `"card:learned"`, `"driver:bao"`, `"exec"`).
    pub component: String,
    /// What went wrong (`"panic"`, `"nan"`, `"deadline"`, ...).
    pub fault: String,
    /// What the guard did about it (`"fallback:<rung>"`, `"replan:native"`).
    pub action: String,
}

/// One cache interaction while processing the query: a plan-cache or
/// inference-cache hit, miss, store, or invalidation observed on this
/// query's path.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEvent {
    /// Which cache (`"plan"` or `"card"`).
    pub cache: String,
    /// What happened (`"hit"`, `"miss"`, `"store"`, `"bypass"`,
    /// `"invalidate"`).
    pub event: String,
    /// Free-form detail (key, epoch, source tag, ...).
    pub detail: String,
}

/// One mid-query re-optimization decision taken at a materialization
/// checkpoint: the executor compared observed vs estimated cardinality
/// at a pipeline breaker and either kept the running plan, spliced in a
/// re-optimized residual sub-plan, or degraded because re-planning
/// itself failed or ran out of budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptEvent {
    /// Bitmask of the tables materialized at the checkpoint
    /// (`TableSet` raw bits).
    pub tables: u64,
    /// Observed output cardinality at the checkpoint, in rows.
    pub observed_rows: u64,
    /// The planner's estimate for the same table set.
    pub est_rows: f64,
    /// Q-error that triggered the decision
    /// (`max(est/obs, obs/est)`, both floored at one row).
    pub q_error: f64,
    /// What happened: `"switch"`, `"keep:cost"`, `"keep:budget"`,
    /// `"noop:identical"`, or `"degrade:<fault>"`.
    pub action: String,
    /// Work units spent re-planning (bounded by the reopt guard budget).
    pub replan_work: f64,
    /// Re-costed residual cost of the running plan, when re-planning got
    /// far enough to compute it.
    pub old_cost: Option<f64>,
    /// Cost of the re-optimized residual sub-plan, when one was produced.
    pub new_cost: Option<f64>,
}

/// Final result facts, recorded when the query finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Result cardinality.
    pub count: u64,
    /// Total work units spent.
    pub work: f64,
    /// End-to-end wall time, nanoseconds.
    pub wall_ns: u64,
}

/// Default bound on each per-trace event vector (guard/cache/reopt).
/// Generous for any single query; what it prevents is a pathological
/// long-running session (a stuck retry loop, a chatty cache) growing
/// one trace without limit.
pub const DEFAULT_EVENT_CAP: usize = 512;

/// The full per-query observability record.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The query text (or a stable name for generated workloads).
    pub query: String,
    /// Name of the driver that made the planning decision, if any.
    pub driver: Option<String>,
    /// Wall time the driver spent deciding, nanoseconds.
    pub decision_ns: Option<u64>,
    /// Lifecycle phases, in completion order.
    pub phases: Vec<PhaseTiming>,
    /// Planner provenance.
    pub planner: PlannerTrace,
    /// Executor measurements.
    pub exec: ExecTrace,
    /// Guard interventions (contained faults, fallbacks, replans), in
    /// occurrence order. Empty when every component behaved.
    pub guard: Vec<GuardEvent>,
    /// Cache interactions (plan/inference cache hits, misses, stores,
    /// invalidations), in occurrence order. Empty when no cache is
    /// attached.
    pub cache: Vec<CacheEvent>,
    /// Mid-query re-optimization decisions, in checkpoint order. Empty
    /// when adaptive re-optimization is disabled or never triggered.
    pub reopt: Vec<ReoptEvent>,
    /// Final outcome, if the query ran to an answer.
    pub outcome: Option<QueryOutcome>,
    /// Bound on each of the `guard`/`cache`/`reopt` vectors; events past
    /// the cap are counted in `events_dropped` instead of stored. Local
    /// recording configuration, not data: excluded from equality and
    /// from the export.
    pub event_cap: usize,
    /// Events discarded because a per-trace vector hit `event_cap`.
    pub events_dropped: u64,
}

// `event_cap` is recording configuration (how much this process was
// willing to store), not an observation — a trace exported and read
// back under a different default must still compare equal. Everything
// else, including `events_dropped`, is data.
impl PartialEq for QueryTrace {
    fn eq(&self, other: &QueryTrace) -> bool {
        self.query == other.query
            && self.driver == other.driver
            && self.decision_ns == other.decision_ns
            && self.phases == other.phases
            && self.planner == other.planner
            && self.exec == other.exec
            && self.guard == other.guard
            && self.cache == other.cache
            && self.reopt == other.reopt
            && self.outcome == other.outcome
            && self.events_dropped == other.events_dropped
    }
}

impl QueryTrace {
    /// A fresh, empty trace for `query`.
    pub fn new(query: &str) -> QueryTrace {
        QueryTrace {
            query: query.to_string(),
            driver: None,
            decision_ns: None,
            phases: Vec::new(),
            planner: PlannerTrace::default(),
            exec: ExecTrace::default(),
            guard: Vec::new(),
            cache: Vec::new(),
            reopt: Vec::new(),
            outcome: None,
            event_cap: DEFAULT_EVENT_CAP,
            events_dropped: 0,
        }
    }

    /// Append a guard event, honouring the per-vector cap.
    pub fn push_guard(&mut self, ev: GuardEvent) {
        if self.guard.len() < self.event_cap {
            self.guard.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Append a cache event, honouring the per-vector cap.
    pub fn push_cache(&mut self, ev: CacheEvent) {
        if self.cache.len() < self.event_cap {
            self.cache.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Append a re-optimization event, honouring the per-vector cap.
    pub fn push_reopt(&mut self, ev: ReoptEvent) {
        if self.reopt.len() < self.event_cap {
            self.reopt.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Append a finished phase.
    pub fn record_phase(&mut self, name: &str, elapsed_ns: u64) {
        self.phases.push(PhaseTiming {
            name: name.to_string(),
            elapsed_ns,
        });
    }

    /// Total nanoseconds across recorded phases.
    pub fn total_phase_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.elapsed_ns).sum()
    }

    /// Fill in `est_rows` on every operator event from the planner's
    /// recorded cardinality lookups (matched by table set). Call once
    /// both sides are complete — typically at `end_query` time.
    pub fn join_estimates(&mut self) {
        for op in &mut self.exec.operators {
            if op.est_rows.is_none() {
                op.est_rows = self.planner.estimate_for(op.tables);
            }
        }
    }

    /// Largest operator q-error in the trace, if any estimate exists.
    pub fn max_q_error(&self) -> Option<f64> {
        self.exec
            .operators
            .iter()
            .filter_map(OperatorEvent::q_error)
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_estimates_matches_by_table_set() {
        let mut t = QueryTrace::new("q");
        t.planner.card_lookups.push(CardLookup {
            tables: 0b011,
            est_rows: 50.0,
        });
        t.planner.card_lookups.push(CardLookup {
            tables: 0b111,
            est_rows: 10.0,
        });
        t.exec.operators.push(OperatorEvent {
            op: "HashJoin".into(),
            tables: 0b011,
            true_rows: 100,
            est_rows: None,
            work: 1.0,
        });
        t.exec.operators.push(OperatorEvent {
            op: "HashJoin".into(),
            tables: 0b111,
            true_rows: 10,
            est_rows: None,
            work: 1.0,
        });
        t.join_estimates();
        assert_eq!(t.exec.operators[0].est_rows, Some(50.0));
        assert_eq!(t.exec.operators[0].q_error(), Some(2.0));
        assert_eq!(t.exec.operators[1].q_error(), Some(1.0));
        assert_eq!(t.max_q_error(), Some(2.0));
    }

    #[test]
    fn q_error_floors_at_one_row() {
        let op = OperatorEvent {
            op: "Scan".into(),
            tables: 1,
            true_rows: 0,
            est_rows: Some(0.25),
            work: 0.0,
        };
        assert_eq!(op.q_error(), Some(1.0));
    }

    #[test]
    fn event_cap_edge_stores_exactly_cap_and_counts_the_rest() {
        let mut t = QueryTrace::new("q");
        t.event_cap = 3;
        for i in 0..5 {
            t.push_guard(GuardEvent {
                component: format!("c{i}"),
                fault: "f".into(),
                action: "a".into(),
            });
        }
        assert_eq!(t.guard.len(), 3);
        assert_eq!(t.events_dropped, 2);
        // The cap is per vector: other vectors still accept events.
        t.push_cache(CacheEvent {
            cache: "plan".into(),
            event: "hit".into(),
            detail: String::new(),
        });
        assert_eq!(t.cache.len(), 1);
        assert_eq!(t.events_dropped, 2);
        // Exactly at the cap nothing is dropped.
        let mut exact = QueryTrace::new("q");
        exact.event_cap = 2;
        for _ in 0..2 {
            exact.push_reopt(ReoptEvent {
                tables: 1,
                observed_rows: 1,
                est_rows: 1.0,
                q_error: 1.0,
                action: "keep:cost".into(),
                replan_work: 0.0,
                old_cost: None,
                new_cost: None,
            });
        }
        assert_eq!(exact.reopt.len(), 2);
        assert_eq!(exact.events_dropped, 0);
    }

    #[test]
    fn equality_ignores_cap_but_not_dropped_count() {
        let mut a = QueryTrace::new("q");
        let mut b = QueryTrace::new("q");
        b.event_cap = 7;
        assert_eq!(a, b);
        a.events_dropped = 1;
        assert_ne!(a, b);
    }

    #[test]
    fn later_lookup_wins() {
        let mut p = PlannerTrace::default();
        p.card_lookups.push(CardLookup {
            tables: 1,
            est_rows: 5.0,
        });
        p.card_lookups.push(CardLookup {
            tables: 1,
            est_rows: 9.0,
        });
        assert_eq!(p.estimate_for(1), Some(9.0));
        assert_eq!(p.estimate_for(2), None);
    }
}
