//! Metrics: named counters, gauges, and log-bucketed histograms.
//!
//! A [`MetricsRegistry`] is a plain value (no global state) guarded by
//! `parking_lot` mutexes, so one registry can be shared across the stack
//! through an `ObsContext`. Histograms bucket by powers of two, which is
//! cheap, monotonic, and wide enough to cover nanosecond latencies and
//! work-unit counts with one scheme.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Smallest histogram exponent: the first finite bucket is `(0, 2^MIN_EXP]`.
pub const HIST_MIN_EXP: i32 = -20;
/// Largest histogram exponent: the last finite bucket is
/// `(2^(MAX_EXP-1), 2^MAX_EXP]`; larger values overflow.
pub const HIST_MAX_EXP: i32 = 64;

/// Number of buckets: one underflow (`v <= 0`), one per exponent in
/// `[HIST_MIN_EXP, HIST_MAX_EXP]`, one overflow.
pub const HIST_BUCKETS: usize = (HIST_MAX_EXP - HIST_MIN_EXP + 1) as usize + 2;

/// A log₂-bucketed histogram with exact totals.
///
/// Bucket layout (`i` is the bucket index):
/// * `i == 0`: underflow — `v <= 0` (and NaN).
/// * `1 <= i <= N`: `v` in `(2^(e-1), 2^e]` where
///   `e = HIST_MIN_EXP + (i - 1)`; the first of these also catches every
///   positive value below `2^HIST_MIN_EXP`.
/// * `i == N + 1`: overflow — `v > 2^HIST_MAX_EXP`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0; // underflow: zero, negative, NaN
        }
        // Smallest exponent e in [HIST_MIN_EXP, HIST_MAX_EXP] with
        // value <= 2^e. Powers of two are exact in f64, so boundary
        // values land deterministically in the lower bucket.
        let exps = HIST_MIN_EXP..=HIST_MAX_EXP;
        for (i, e) in exps.enumerate() {
            if value <= pow2(e) {
                return i + 1;
            }
        }
        HIST_BUCKETS - 1 // overflow
    }

    /// The inclusive upper bound of bucket `i` (`f64::INFINITY` for the
    /// overflow bucket, `0.0` for underflow).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else if i >= HIST_BUCKETS - 1 {
            f64::INFINITY
        } else {
            pow2(HIST_MIN_EXP + (i as i32 - 1))
        }
    }

    /// The exclusive lower bound of bucket `i`. The first finite bucket
    /// catches every positive value below its upper bound, so its lower
    /// bound is `0.0`; the underflow bucket has no lower bound.
    pub fn bucket_lower_bound(i: usize) -> f64 {
        if i <= 1 {
            if i == 0 {
                f64::NEG_INFINITY
            } else {
                0.0
            }
        } else if i >= HIST_BUCKETS - 1 {
            pow2(HIST_MAX_EXP)
        } else {
            pow2(HIST_MIN_EXP + (i as i32 - 2))
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest finite observation, `None` if none.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation, `None` if none.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Per-bucket counts (including under/overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`), `None` if empty. Bucketed, so an upper estimate
    /// within one power of two of the true quantile.
    pub fn quantile_upper(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(f64::INFINITY)
    }

    /// The `q`-quantile with within-bucket linear interpolation, `None`
    /// if empty. The `k`-th of `c` observations in bucket `(lo, hi]` maps
    /// to `lo + (k/c)·(hi − lo)`, and the result is clamped to the exact
    /// observed `[min, max]` — so a histogram of identical values reports
    /// that value at every quantile, and quantiles are monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let value = if i == 0 {
                    0.0 // underflow: v <= 0, reported as the bound
                } else if i == HIST_BUCKETS - 1 {
                    // Overflow: no finite upper bound to interpolate to.
                    return Some(if self.max.is_finite() {
                        self.max
                    } else {
                        f64::INFINITY
                    });
                } else {
                    let lo = Self::bucket_lower_bound(i);
                    let hi = Self::bucket_upper_bound(i);
                    let frac = (target - seen) as f64 / c as f64;
                    lo + frac * (hi - lo)
                };
                return Some(if self.min.is_finite() && self.max.is_finite() {
                    value.clamp(self.min.min(self.max), self.max)
                } else {
                    value
                });
            }
            seen += c;
        }
        Some(f64::INFINITY)
    }

    /// Merge another histogram into this one: bucket counts add, totals
    /// and extrema combine. `a.merge(&b)` equals recording every
    /// observation of `b` into `a`.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

fn pow2(e: i32) -> f64 {
    // Exact for the exponent range used here.
    (2.0f64).powi(e)
}

/// An immutable snapshot of a registry, for reporting.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → histogram, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock();
        match c.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                c.insert(name.to_string(), delta);
            }
        }
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Record `value` in the named histogram (created on first use).
    pub fn observe(&self, name: &str, value: f64) {
        let mut h = self.histograms.lock();
        match h.get_mut(name) {
            Some(hist) => hist.record(value),
            None => {
                let mut hist = Histogram::new();
                hist.record(value);
                h.insert(name.to_string(), hist);
            }
        }
    }

    /// Capture a point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.inc_counter("lqo.exec.queries", 1);
        reg.inc_counter("lqo.exec.queries", 2);
        reg.set_gauge("lqo.plan.last_cost", 12.5);
        reg.set_gauge("lqo.plan.last_cost", 99.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lqo.exec.queries"), Some(3));
        assert_eq!(snap.gauge("lqo.plan.last_cost"), Some(99.0));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_totals() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 107.0);
        assert_eq!(h.mean(), Some(26.75));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3.0); // bucket (2, 4]
        }
        h.record(1000.0); // bucket (512, 1024]
        assert_eq!(h.quantile_upper(0.5), Some(4.0));
        assert_eq!(h.quantile_upper(1.0), Some(1024.0));
        assert_eq!(Histogram::new().quantile_upper(0.5), None);
    }

    #[test]
    fn interpolated_quantiles_pin_known_sample() {
        // 1..=64: bucket boundaries are powers of two, so within-bucket
        // linear interpolation lands exactly on the nearest-rank values.
        let mut h = Histogram::new();
        for i in 1..=64 {
            h.record(i as f64);
        }
        // p50: rank 32 closes bucket (16, 32] -> exactly 32.
        assert_eq!(h.quantile(0.5), Some(32.0));
        // p95: rank 61 is the 29th of 32 samples in (32, 64] -> 61.
        assert_eq!(h.quantile(0.95), Some(61.0));
        assert_eq!(h.quantile(1.0), Some(64.0));
        // Versus the old upper-bound report, a full power of two high.
        assert_eq!(h.quantile_upper(0.5), Some(32.0));
        assert_eq!(h.quantile_upper(0.95), Some(64.0));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn constant_samples_report_their_value_at_every_quantile() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(3.0); // bucket (2, 4]: interpolation clamps to max
        }
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(3.0), "q={q}");
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for i in 1..HIST_BUCKETS - 1 {
            let lo = Histogram::bucket_lower_bound(i);
            let hi = Histogram::bucket_upper_bound(i);
            assert!(lo < hi, "bucket {i}: {lo} >= {hi}");
            if i > 1 {
                assert_eq!(Histogram::bucket_upper_bound(i - 1), lo);
            }
        }
        assert_eq!(Histogram::bucket_lower_bound(1), 0.0);
        assert!(Histogram::bucket_upper_bound(HIST_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        // Prep for concurrent serving: N threads hammering the same
        // registry must lose nothing — counter totals, histogram counts,
        // and histogram sums are all exact.
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 1000;
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        reg.inc_counter("lqo.shared.counter", 1);
                        reg.inc_counter(&format!("lqo.thread.{t}"), 2);
                        // Integer values ≤ 2^53 sum exactly in f64, so
                        // the histogram sum has one correct answer.
                        reg.observe("lqo.shared.hist", (i % 16) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("lqo.shared.counter"),
            Some(THREADS as u64 * PER_THREAD)
        );
        for t in 0..THREADS {
            assert_eq!(
                snap.counter(&format!("lqo.thread.{t}")),
                Some(2 * PER_THREAD)
            );
        }
        let h = snap.histogram("lqo.shared.hist").unwrap();
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        let per_thread_sum: f64 = (0..PER_THREAD).map(|i| (i % 16) as f64).sum();
        assert_eq!(h.sum(), per_thread_sum * THREADS as f64);
        // Bucket counts account for every observation.
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0.5, 3.0, 17.0, 900.0] {
            a.record(v);
            both.record(v);
        }
        for v in [-1.0, 2.0, 64.0] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 7);
    }
}
