//! Metrics: named counters, gauges, and log-bucketed histograms.
//!
//! A [`MetricsRegistry`] is a plain value (no global state) guarded by
//! `parking_lot` mutexes, so one registry can be shared across the stack
//! through an `ObsContext`. Histograms bucket by powers of two, which is
//! cheap, monotonic, and wide enough to cover nanosecond latencies and
//! work-unit counts with one scheme.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Smallest histogram exponent: the first finite bucket is `(0, 2^MIN_EXP]`.
pub const HIST_MIN_EXP: i32 = -20;
/// Largest histogram exponent: the last finite bucket is
/// `(2^(MAX_EXP-1), 2^MAX_EXP]`; larger values overflow.
pub const HIST_MAX_EXP: i32 = 64;

/// Number of buckets: one underflow (`v <= 0`), one per exponent in
/// `[HIST_MIN_EXP, HIST_MAX_EXP]`, one overflow.
pub const HIST_BUCKETS: usize = (HIST_MAX_EXP - HIST_MIN_EXP + 1) as usize + 2;

/// A log₂-bucketed histogram with exact totals.
///
/// Bucket layout (`i` is the bucket index):
/// * `i == 0`: underflow — `v <= 0` (and NaN).
/// * `1 <= i <= N`: `v` in `(2^(e-1), 2^e]` where
///   `e = HIST_MIN_EXP + (i - 1)`; the first of these also catches every
///   positive value below `2^HIST_MIN_EXP`.
/// * `i == N + 1`: overflow — `v > 2^HIST_MAX_EXP`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0; // underflow: zero, negative, NaN
        }
        // Smallest exponent e in [HIST_MIN_EXP, HIST_MAX_EXP] with
        // value <= 2^e. Powers of two are exact in f64, so boundary
        // values land deterministically in the lower bucket.
        let exps = HIST_MIN_EXP..=HIST_MAX_EXP;
        for (i, e) in exps.enumerate() {
            if value <= pow2(e) {
                return i + 1;
            }
        }
        HIST_BUCKETS - 1 // overflow
    }

    /// The inclusive upper bound of bucket `i` (`f64::INFINITY` for the
    /// overflow bucket, `0.0` for underflow).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else if i >= HIST_BUCKETS - 1 {
            f64::INFINITY
        } else {
            pow2(HIST_MIN_EXP + (i as i32 - 1))
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest finite observation, `None` if none.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation, `None` if none.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Per-bucket counts (including under/overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`), `None` if empty. Bucketed, so an upper estimate
    /// within one power of two of the true quantile.
    pub fn quantile_upper(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(f64::INFINITY)
    }
}

fn pow2(e: i32) -> f64 {
    // Exact for the exponent range used here.
    (2.0f64).powi(e)
}

/// An immutable snapshot of a registry, for reporting.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → histogram, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock();
        match c.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                c.insert(name.to_string(), delta);
            }
        }
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Record `value` in the named histogram (created on first use).
    pub fn observe(&self, name: &str, value: f64) {
        let mut h = self.histograms.lock();
        match h.get_mut(name) {
            Some(hist) => hist.record(value),
            None => {
                let mut hist = Histogram::new();
                hist.record(value);
                h.insert(name.to_string(), hist);
            }
        }
    }

    /// Capture a point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.inc_counter("lqo.exec.queries", 1);
        reg.inc_counter("lqo.exec.queries", 2);
        reg.set_gauge("lqo.plan.last_cost", 12.5);
        reg.set_gauge("lqo.plan.last_cost", 99.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lqo.exec.queries"), Some(3));
        assert_eq!(snap.gauge("lqo.plan.last_cost"), Some(99.0));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_totals() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 107.0);
        assert_eq!(h.mean(), Some(26.75));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3.0); // bucket (2, 4]
        }
        h.record(1000.0); // bucket (512, 1024]
        assert_eq!(h.quantile_upper(0.5), Some(4.0));
        assert_eq!(h.quantile_upper(1.0), Some(1024.0));
        assert_eq!(Histogram::new().quantile_upper(0.5), None);
    }
}
