//! Span tracing: monotonic timing of named, nested regions.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; a span starts when the guard is
//! created and ends when it drops. Nesting is tracked per thread — a span
//! opened while another span from the same tracer is live on the same
//! thread records that span as its parent. Spans from different threads
//! are independent roots (or nest within that thread's own stack), so a
//! tracer can be shared freely across threads.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One closed span, with times in nanoseconds since the tracer's epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer (1-based, allocation order).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the tracer epoch, nanoseconds.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    closed: Mutex<Vec<SpanRecord>>,
}

thread_local! {
    /// Per-thread stack of open span ids, segregated by tracer identity
    /// so two tracers interleaved on one thread do not cross-parent.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Collects spans. Cloning shares the underlying log.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A fresh tracer whose epoch is "now".
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                closed: Mutex::new(Vec::new()),
            }),
        }
    }

    fn key(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Open a span; it closes when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let key = self.key();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|(k, _)| *k == key).map(|(_, id)| *id);
            s.push((key, id));
            parent
        });
        SpanGuard {
            live: Some(LiveSpan {
                tracer: self.inner.clone(),
                key,
                id,
                parent,
                name: name.to_string(),
                start_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            }),
        }
    }

    /// All spans closed so far, in closing order.
    pub fn closed_spans(&self) -> Vec<SpanRecord> {
        self.inner.closed.lock().clone()
    }

    /// Number of spans closed so far.
    pub fn closed_count(&self) -> usize {
        self.inner.closed.lock().len()
    }
}

struct LiveSpan {
    tracer: Arc<TracerInner>,
    key: usize,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
}

/// RAII guard: the span it represents ends when this drops. The no-op
/// variant (from a disabled context) holds nothing and does nothing.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// A guard that records nothing — the disabled-tracer fast path.
    pub fn noop() -> SpanGuard {
        SpanGuard { live: None }
    }

    /// Whether this guard will record a span on drop.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Usually the top of the stack; search defensively in case
            // guards are dropped out of order.
            if let Some(pos) = s
                .iter()
                .rposition(|&(k, id)| k == live.key && id == live.id)
            {
                s.remove(pos);
            }
        });
        let end_ns = live.tracer.epoch.elapsed().as_nanos() as u64;
        live.tracer.closed.lock().push(SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            start_ns: live.start_ns,
            end_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let tracer = Tracer::enabled();
        {
            let _outer = tracer.span("outer");
            {
                let _inner = tracer.span("inner");
            }
            let _sibling = tracer.span("sibling");
        }
        let spans = tracer.closed_spans();
        assert_eq!(spans.len(), 3);
        // Closed in order: inner, sibling, outer.
        let inner = &spans[0];
        let sibling = &spans[1];
        let outer = &spans[2];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn two_tracers_do_not_cross_parent() {
        let a = Tracer::enabled();
        let b = Tracer::enabled();
        let _ga = a.span("a-root");
        let gb = b.span("b-root");
        drop(gb);
        let b_spans = b.closed_spans();
        assert_eq!(b_spans.len(), 1);
        assert_eq!(b_spans[0].parent, None);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let g = SpanGuard::noop();
        assert!(!g.is_recording());
        drop(g);
    }
}
