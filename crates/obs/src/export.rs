//! JSONL export and import of [`QueryTrace`]s.
//!
//! One trace per line, stable field names, lossless for every field —
//! the round trip `parse_jsonl(write_jsonl(traces)) == traces` holds and
//! is covered by tests.

use crate::json::{parse, Value};
use crate::metrics::{Histogram, MetricsSnapshot};

/// Schema version stamped on every exported trace line and metrics
/// snapshot. Bump when a field changes meaning or is removed; adding
/// optional fields does not require a bump. Readers accept absent
/// versions (pre-versioning exports) and any version up to this one.
/// The full schema registry lives in DESIGN.md §13.
pub const TRACE_SCHEMA_VERSION: u64 = 1;
use crate::trace::{
    CacheEvent, CardLookup, ExecTrace, GuardEvent, OperatorEvent, PhaseTiming, PlannerTrace,
    QueryOutcome, QueryTrace, ReoptEvent,
};

fn u64_value(v: u64) -> Value {
    // Table masks and counters fit i64 in practice; saturate defensively.
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn opt_str(v: &Option<String>) -> Value {
    match v {
        Some(s) => Value::Str(s.clone()),
        None => Value::Null,
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(f) => Value::Float(f),
        None => Value::Null,
    }
}

/// Encode one trace as a JSON object.
pub fn trace_to_json(t: &QueryTrace) -> Value {
    let phases = t
        .phases
        .iter()
        .map(|p| {
            Value::Obj(vec![
                ("name".into(), Value::Str(p.name.clone())),
                ("elapsed_ns".into(), u64_value(p.elapsed_ns)),
            ])
        })
        .collect();
    let lookups = t
        .planner
        .card_lookups
        .iter()
        .map(|l| {
            Value::Obj(vec![
                ("tables".into(), u64_value(l.tables)),
                ("est_rows".into(), Value::Float(l.est_rows)),
            ])
        })
        .collect();
    let planner = Value::Obj(vec![
        ("algo".into(), opt_str(&t.planner.algo)),
        ("subproblems".into(), u64_value(t.planner.subproblems)),
        ("cost_evals".into(), u64_value(t.planner.cost_evals)),
        ("card_source".into(), opt_str(&t.planner.card_source)),
        ("card_lookups".into(), Value::Arr(lookups)),
        ("hints".into(), opt_str(&t.planner.hints)),
        ("chosen_cost".into(), opt_f64(t.planner.chosen_cost)),
    ]);
    let operators = t
        .exec
        .operators
        .iter()
        .map(|o| {
            Value::Obj(vec![
                ("op".into(), Value::Str(o.op.clone())),
                ("tables".into(), u64_value(o.tables)),
                ("true_rows".into(), u64_value(o.true_rows)),
                ("est_rows".into(), opt_f64(o.est_rows)),
                ("work".into(), Value::Float(o.work)),
            ])
        })
        .collect();
    let exec = Value::Obj(vec![
        ("operators".into(), Value::Arr(operators)),
        ("timeout".into(), Value::Bool(t.exec.timeout)),
    ]);
    let guard = t
        .guard
        .iter()
        .map(|g| {
            Value::Obj(vec![
                ("component".into(), Value::Str(g.component.clone())),
                ("fault".into(), Value::Str(g.fault.clone())),
                ("action".into(), Value::Str(g.action.clone())),
            ])
        })
        .collect();
    let cache = t
        .cache
        .iter()
        .map(|c| {
            Value::Obj(vec![
                ("cache".into(), Value::Str(c.cache.clone())),
                ("event".into(), Value::Str(c.event.clone())),
                ("detail".into(), Value::Str(c.detail.clone())),
            ])
        })
        .collect();
    let reopt = t
        .reopt
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("tables".into(), u64_value(r.tables)),
                ("observed_rows".into(), u64_value(r.observed_rows)),
                ("est_rows".into(), Value::Float(r.est_rows)),
                ("q_error".into(), Value::Float(r.q_error)),
                ("action".into(), Value::Str(r.action.clone())),
                ("replan_work".into(), Value::Float(r.replan_work)),
                ("old_cost".into(), opt_f64(r.old_cost)),
                ("new_cost".into(), opt_f64(r.new_cost)),
            ])
        })
        .collect();
    let outcome = match &t.outcome {
        Some(o) => Value::Obj(vec![
            ("count".into(), u64_value(o.count)),
            ("work".into(), Value::Float(o.work)),
            ("wall_ns".into(), u64_value(o.wall_ns)),
        ]),
        None => Value::Null,
    };
    Value::Obj(vec![
        ("schema_version".into(), u64_value(TRACE_SCHEMA_VERSION)),
        ("query".into(), Value::Str(t.query.clone())),
        ("driver".into(), opt_str(&t.driver)),
        (
            "decision_ns".into(),
            match t.decision_ns {
                Some(ns) => u64_value(ns),
                None => Value::Null,
            },
        ),
        ("phases".into(), Value::Arr(phases)),
        ("planner".into(), planner),
        ("exec".into(), exec),
        ("guard".into(), Value::Arr(guard)),
        ("cache".into(), Value::Arr(cache)),
        ("reopt".into(), Value::Arr(reopt)),
        ("events_dropped".into(), u64_value(t.events_dropped)),
        ("outcome".into(), outcome),
    ])
}

fn str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn opt_str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Decode one trace from a JSON object; `None` on any shape mismatch or
/// on a schema version newer than this reader understands. Absent
/// versions (pre-versioning exports) are accepted.
pub fn trace_from_json(v: &Value) -> Option<QueryTrace> {
    if let Some(ver) = v.get("schema_version").and_then(Value::as_u64) {
        if ver > TRACE_SCHEMA_VERSION {
            return None;
        }
    }
    let phases = v
        .get("phases")?
        .as_arr()?
        .iter()
        .map(|p| {
            Some(PhaseTiming {
                name: str_field(p, "name")?,
                elapsed_ns: p.get("elapsed_ns")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let pl = v.get("planner")?;
    let card_lookups = pl
        .get("card_lookups")?
        .as_arr()?
        .iter()
        .map(|l| {
            Some(CardLookup {
                tables: l.get("tables")?.as_u64()?,
                est_rows: l.get("est_rows")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let planner = PlannerTrace {
        algo: opt_str_field(pl, "algo"),
        subproblems: pl.get("subproblems")?.as_u64()?,
        cost_evals: pl.get("cost_evals")?.as_u64()?,
        card_source: opt_str_field(pl, "card_source"),
        card_lookups,
        hints: opt_str_field(pl, "hints"),
        chosen_cost: pl.get("chosen_cost").and_then(Value::as_f64),
    };
    let ex = v.get("exec")?;
    let operators = ex
        .get("operators")?
        .as_arr()?
        .iter()
        .map(|o| {
            Some(OperatorEvent {
                op: str_field(o, "op")?,
                tables: o.get("tables")?.as_u64()?,
                true_rows: o.get("true_rows")?.as_u64()?,
                est_rows: o.get("est_rows").and_then(Value::as_f64),
                work: o.get("work")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let exec = ExecTrace {
        operators,
        timeout: ex.get("timeout")?.as_bool()?,
    };
    let guard = v
        .get("guard")?
        .as_arr()?
        .iter()
        .map(|g| {
            Some(GuardEvent {
                component: str_field(g, "component")?,
                fault: str_field(g, "fault")?,
                action: str_field(g, "action")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    // Absent in traces exported before cache events existed: read as
    // empty rather than failing the whole parse.
    let cache = match v.get("cache") {
        Some(arr) => arr
            .as_arr()?
            .iter()
            .map(|c| {
                Some(CacheEvent {
                    cache: str_field(c, "cache")?,
                    event: str_field(c, "event")?,
                    detail: str_field(c, "detail")?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        None => Vec::new(),
    };
    // Likewise absent in traces exported before adaptive re-optimization
    // existed: read as empty rather than failing the whole parse.
    let reopt = match v.get("reopt") {
        Some(arr) => arr
            .as_arr()?
            .iter()
            .map(|r| {
                Some(ReoptEvent {
                    tables: r.get("tables")?.as_u64()?,
                    observed_rows: r.get("observed_rows")?.as_u64()?,
                    est_rows: r.get("est_rows")?.as_f64()?,
                    q_error: r.get("q_error")?.as_f64()?,
                    action: str_field(r, "action")?,
                    replan_work: r.get("replan_work")?.as_f64()?,
                    old_cost: r.get("old_cost").and_then(Value::as_f64),
                    new_cost: r.get("new_cost").and_then(Value::as_f64),
                })
            })
            .collect::<Option<Vec<_>>>()?,
        None => Vec::new(),
    };
    let outcome = match v.get("outcome")? {
        Value::Null => None,
        o => Some(QueryOutcome {
            count: o.get("count")?.as_u64()?,
            work: o.get("work")?.as_f64()?,
            wall_ns: o.get("wall_ns")?.as_u64()?,
        }),
    };
    Some(QueryTrace {
        query: str_field(v, "query")?,
        driver: opt_str_field(v, "driver"),
        decision_ns: v.get("decision_ns").and_then(Value::as_u64),
        phases,
        planner,
        exec,
        guard,
        cache,
        reopt,
        outcome,
        event_cap: crate::trace::DEFAULT_EVENT_CAP,
        // Absent in traces exported before event caps existed.
        events_dropped: v.get("events_dropped").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// Encode a histogram as a JSON object: totals, interpolated quantiles,
/// and every populated bucket with its *boundaries* (`lo` exclusive,
/// `hi` inclusive; `null` stands for an unbounded edge) so consumers can
/// re-bin or render without knowing the log₂ layout.
pub fn histogram_to_json(h: &Histogram) -> Value {
    let bound = |b: f64| {
        if b.is_finite() {
            Value::Float(b)
        } else {
            Value::Null
        }
    };
    let buckets = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            Value::Obj(vec![
                ("lo".into(), bound(Histogram::bucket_lower_bound(i))),
                ("hi".into(), bound(Histogram::bucket_upper_bound(i))),
                ("count".into(), u64_value(c)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("count".into(), u64_value(h.count())),
        ("sum".into(), Value::Float(h.sum())),
        ("min".into(), opt_f64(h.min())),
        ("max".into(), opt_f64(h.max())),
        ("p50".into(), opt_f64(h.quantile(0.5))),
        ("p95".into(), opt_f64(h.quantile(0.95))),
        ("p99".into(), opt_f64(h.quantile(0.99))),
        ("buckets".into(), Value::Arr(buckets)),
    ])
}

/// Encode a whole metrics snapshot as one JSON object
/// (`counters`/`gauges`/`histograms` keyed by metric name), histograms
/// via [`histogram_to_json`].
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> Value {
    Value::Obj(vec![
        ("schema_version".into(), u64_value(TRACE_SCHEMA_VERSION)),
        (
            "counters".into(),
            Value::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), u64_value(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Value::Obj(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Float(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms".into(),
            Value::Obj(
                snap.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), histogram_to_json(h)))
                    .collect(),
            ),
        ),
    ])
}

/// Serialize traces as JSONL: one compact JSON object per line.
pub fn write_jsonl(traces: &[QueryTrace]) -> String {
    let mut out = String::new();
    for t in traces {
        out.push_str(&trace_to_json(t).to_compact());
        out.push('\n');
    }
    out
}

/// Parse a JSONL document produced by [`write_jsonl`]. Blank lines are
/// skipped; a malformed line makes the whole parse fail.
pub fn parse_jsonl(input: &str) -> Option<Vec<QueryTrace>> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| trace_from_json(&parse(l)?))
        .collect()
}

/// Crash-safe file write: the content is produced into a sibling temp
/// file which is atomically renamed over `path` only after a successful
/// write, so a panic or error mid-export can never leave a torn file —
/// readers see either the previous complete content or the new one.
/// On any error the temp file is removed and the destination is
/// untouched.
pub fn atomic_write_with<F>(path: &std::path::Path, produce: F) -> std::io::Result<()>
where
    F: FnOnce(&mut dyn std::io::Write) -> std::io::Result<()>,
{
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    // Temp name derived from the destination (same directory, so the
    // rename cannot cross filesystems and stays atomic). The pid keeps
    // concurrent exporters from clobbering each other's temp.
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "export".to_string());
    tmp_name.push_str(&format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        produce(&mut file)?;
        use std::io::Write;
        file.flush()?;
        file.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write_with`] for ready-made string content.
pub fn atomic_write(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    atomic_write_with(path, |w| w.write_all(contents.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        let mut t = QueryTrace::new("SELECT * FROM t0, t1 WHERE t0.a = t1.b");
        t.driver = Some("BaoDriver".into());
        t.decision_ns = Some(1_234_567);
        t.record_phase("parse", 10_000);
        t.record_phase("plan", 2_000_000);
        t.record_phase("execute", 9_000_000);
        t.planner.algo = Some("dp".into());
        t.planner.subproblems = 6;
        t.planner.cost_evals = 14;
        t.planner.card_source = Some("true".into());
        t.planner.hints = Some("algos=hash,nl dp_limit=12".into());
        t.planner.chosen_cost = Some(512.25);
        t.planner.card_lookups.push(CardLookup {
            tables: 0b11,
            est_rows: 42.5,
        });
        t.exec.operators.push(OperatorEvent {
            op: "HashJoin".into(),
            tables: 0b11,
            true_rows: 40,
            est_rows: Some(42.5),
            work: 123.0,
        });
        t.exec.timeout = false;
        t.guard.push(GuardEvent {
            component: "card:learned".into(),
            fault: "nan".into(),
            action: "fallback:traditional".into(),
        });
        t.cache.push(CacheEvent {
            cache: "plan".into(),
            event: "hit".into(),
            detail: "epoch=3".into(),
        });
        t.reopt.push(ReoptEvent {
            tables: 0b11,
            observed_rows: 4000,
            est_rows: 40.0,
            q_error: 100.0,
            action: "switch".into(),
            replan_work: 12.5,
            old_cost: Some(9000.0),
            new_cost: Some(800.0),
        });
        t.outcome = Some(QueryOutcome {
            count: 40,
            work: 321.5,
            wall_ns: 11_000_000,
        });
        t
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let mut minimal = QueryTrace::new("bare");
        minimal.exec.timeout = true;
        let traces = vec![sample_trace(), minimal];
        let text = write_jsonl(&traces);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parse");
        assert_eq!(back, traces);
    }

    #[test]
    fn histogram_json_carries_bucket_boundaries() {
        let mut h = Histogram::new();
        for i in 1..=64 {
            h.record(i as f64);
        }
        let v = histogram_to_json(&h);
        assert_eq!(v.get("count").unwrap().as_u64(), Some(64));
        assert_eq!(v.get("p50").unwrap().as_f64(), Some(32.0));
        assert_eq!(v.get("p95").unwrap().as_f64(), Some(61.0));
        let buckets = v.get("buckets").unwrap().as_arr().unwrap();
        // 1..=64 spans buckets (0.5,1], (1,2], ..., (32,64]: seven.
        assert_eq!(buckets.len(), 7);
        let total: u64 = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, 64);
        let last = buckets.last().unwrap();
        assert_eq!(last.get("lo").unwrap().as_f64(), Some(32.0));
        assert_eq!(last.get("hi").unwrap().as_f64(), Some(64.0));
        // Adjacent buckets tile: each lo equals the previous hi.
        for w in buckets.windows(2) {
            assert_eq!(
                w[0].get("hi").unwrap().as_f64(),
                w[1].get("lo").unwrap().as_f64()
            );
        }
    }

    #[test]
    fn snapshot_json_lists_all_metric_kinds() {
        use crate::metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.inc_counter("lqo.exec.queries", 3);
        reg.set_gauge("lqo.watch.health.card", 1.0);
        reg.observe("lqo.card.qerror", 2.0);
        let v = snapshot_to_json(&reg.snapshot());
        let text = v.to_compact();
        assert!(crate::json::parse(&text).is_some());
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("lqo.exec.queries")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert!(v
            .get("histograms")
            .unwrap()
            .get("lqo.card.qerror")
            .unwrap()
            .get("buckets")
            .is_some());
    }

    #[test]
    fn traces_without_cache_field_still_parse() {
        // Pre-cache exports had no "cache" array; they must round-trip
        // to an empty event list, not a parse failure.
        let mut with = sample_trace();
        let text = trace_to_json(&with).to_compact().replace(
            ",\"cache\":[{\"cache\":\"plan\",\"event\":\"hit\",\"detail\":\"epoch=3\"}]",
            "",
        );
        assert!(!text.contains("\"cache\""), "field not stripped: {text}");
        let back = trace_from_json(&parse(&text).unwrap()).unwrap();
        with.cache.clear();
        assert_eq!(back, with);
    }

    #[test]
    fn traces_without_reopt_field_still_parse() {
        // Pre-reopt exports had no "reopt" array; they must round-trip
        // to an empty event list, not a parse failure.
        let mut with = sample_trace();
        let json = trace_to_json(&with).to_compact();
        let needle = ",\"reopt\":[";
        let start = json.find(needle).expect("reopt field present");
        let end = json[start..].find("}]").map(|i| start + i + 2).unwrap();
        let text = format!("{}{}", &json[..start], &json[end..]);
        assert!(!text.contains("\"reopt\""), "field not stripped: {text}");
        let back = trace_from_json(&parse(&text).unwrap()).unwrap();
        with.reopt.clear();
        assert_eq!(back, with);
    }

    #[test]
    fn schema_version_stamped_and_gated() {
        let t = sample_trace();
        let v = trace_to_json(&t);
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(TRACE_SCHEMA_VERSION)
        );
        // Unversioned (legacy) lines still parse; future versions do not.
        let text = v.to_compact();
        let legacy = text.replace(&format!("\"schema_version\":{TRACE_SCHEMA_VERSION},"), "");
        assert!(!legacy.contains("schema_version"));
        assert_eq!(trace_from_json(&parse(&legacy).unwrap()).unwrap(), t);
        let future = text.replace(
            &format!("\"schema_version\":{TRACE_SCHEMA_VERSION},"),
            &format!("\"schema_version\":{},", TRACE_SCHEMA_VERSION + 1),
        );
        assert!(trace_from_json(&parse(&future).unwrap()).is_none());
        // Metrics snapshots carry the same stamp.
        let snap = snapshot_to_json(&crate::metrics::MetricsRegistry::new().snapshot());
        assert_eq!(
            snap.get("schema_version").unwrap().as_u64(),
            Some(TRACE_SCHEMA_VERSION)
        );
    }

    #[test]
    fn events_dropped_round_trips_and_absent_reads_zero() {
        let mut t = sample_trace();
        t.events_dropped = 4;
        let line = trace_to_json(&t).to_compact();
        assert!(line.contains("\"events_dropped\":4"));
        let back = trace_from_json(&parse(&line).unwrap()).unwrap();
        assert_eq!(back.events_dropped, 4);
        assert_eq!(back, t);
        // Pre-cap exports lack the field entirely: reads as zero.
        let absent = line.replace("\"events_dropped\":4,", "");
        let old = trace_from_json(&parse(&absent).unwrap()).unwrap();
        assert_eq!(old.events_dropped, 0);
    }

    fn scratch_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lqo-obs-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn atomic_write_replaces_content_atomically() {
        let path = scratch_path("traces.jsonl");
        atomic_write(&path, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        atomic_write(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_with_injected_fault_leaves_original_intact() {
        let path = scratch_path("faulty.jsonl");
        atomic_write(&path, "intact\n").unwrap();
        // Serialization fault halfway through producing the new content:
        // some bytes are written, then the producer errors out.
        let err = atomic_write_with(&path, |w| {
            w.write_all(b"torn half-line with no newline")?;
            Err(std::io::Error::other("injected serialization fault"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "injected serialization fault");
        // The destination still holds the previous complete content and
        // no temp file is left behind.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "intact\n");
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blank_lines_skipped_bad_lines_fail() {
        let text = write_jsonl(&[sample_trace()]) + "\n\n";
        assert_eq!(parse_jsonl(&text).unwrap().len(), 1);
        assert!(parse_jsonl("not json\n").is_none());
        assert!(parse_jsonl("{\"query\":\"x\"}\n").is_none());
    }
}
