//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! Maps the registry's three metric kinds onto the Prometheus data
//! model so a future serving layer is scrapeable without changing how
//! components record:
//!
//! * counters → `<name>_total` with `# TYPE ... counter`;
//! * gauges → `<name>` with `# TYPE ... gauge`;
//! * histograms → cumulative `<name>_bucket{le="..."}` series derived
//!   from the log₂ buckets, plus `<name>_sum` and `<name>_count`.
//!
//! Output is fully deterministic: metric families in name order (the
//! snapshot is name-sorted), bucket labels in ascending `le` order, and
//! a fixed float rendering — so the exposition is golden-file testable.
//! Only populated buckets are emitted (the log₂ layout has 87 buckets,
//! most empty); the mandatory `le="+Inf"` bucket is always present, and
//! cumulative counts are preserved exactly, so any Prometheus-side
//! quantile estimate sees the same distribution the registry held.
//!
//! Metric names are mangled to the exposition charset: every character
//! outside `[a-zA-Z0-9_:]` becomes `_` (`lqo.exec.queries` →
//! `lqo_exec_queries_total`).

use crate::metrics::{Histogram, MetricsSnapshot};

/// Mangle a registry metric name into a legal Prometheus metric name.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Deterministic float rendering for sample values and `le` bounds.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        // `Display` for f64 is the shortest representation that round
        // trips, which is stable across runs and platforms.
        format!("{v}")
    }
}

/// Render `snap` in the Prometheus text exposition format (version
/// 0.0.4: `# TYPE` comments plus `name{labels} value` samples).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname}_total counter\n"));
        out.push_str(&format!("{pname}_total {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        out.push_str(&format!("{pname} {}\n", fmt_f64(*value)));
    }
    for (name, hist) in &snap.histograms {
        let pname = prom_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &c) in hist.bucket_counts().iter().enumerate() {
            cumulative += c;
            if c == 0 {
                continue;
            }
            if i == hist.bucket_counts().len() - 1 {
                continue; // overflow is covered by +Inf below
            }
            let le = fmt_f64(Histogram::bucket_upper_bound(i));
            out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
        out.push_str(&format!("{pname}_sum {}\n", fmt_f64(hist.sum())));
        out.push_str(&format!("{pname}_count {}\n", hist.count()));
    }
    out
}

/// One parsed exposition sample: mangled metric name, optional `le`
/// label, value. Used by the round-trip tests; not a general parser.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The sample's full name (including `_total`/`_bucket`/... suffix).
    pub name: String,
    /// The `le` label, for `_bucket` samples.
    pub le: Option<String>,
    /// The sample value.
    pub value: f64,
}

/// Parse text produced by [`render_prometheus`] back into samples;
/// `None` on any malformed non-comment line.
pub fn parse_prometheus(text: &str) -> Option<Vec<PromSample>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line.rsplit_once(' ')?;
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().ok()?,
        };
        let (name, le) = match name_part.split_once('{') {
            None => (name_part.to_string(), None),
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}')?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))?;
                (name.to_string(), Some(le.to_string()))
            }
        };
        out.push(PromSample { name, le, value });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.inc_counter("lqo.exec.queries", 42);
        reg.inc_counter("lqo.guard.breaker_opens", 3);
        reg.set_gauge("lqo.watch.health", 1.0);
        reg.set_gauge("lqo.cache.fill", 0.375);
        for v in [0.5, 3.0, 3.5, 900.0, 1e40] {
            reg.observe("lqo.exec.work_units", v);
        }
        reg
    }

    #[test]
    fn exposition_shape_and_mangling() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE lqo_exec_queries_total counter\n"));
        assert!(text.contains("lqo_exec_queries_total 42\n"));
        assert!(text.contains("# TYPE lqo_cache_fill gauge\n"));
        assert!(text.contains("lqo_cache_fill 0.375\n"));
        assert!(text.contains("# TYPE lqo_exec_work_units histogram\n"));
        assert!(text.contains("lqo_exec_work_units_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("lqo_exec_work_units_count 5\n"));
        // No unmangled dots survive in sample names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unmangled name: {name}");
        }
    }

    #[test]
    fn every_registered_metric_round_trips() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let samples = parse_prometheus(&render_prometheus(&snap)).expect("parse");
        // Counters: exact values under the _total name.
        for (name, v) in &snap.counters {
            let s = samples
                .iter()
                .find(|s| s.name == format!("{}_total", prom_name(name)))
                .unwrap_or_else(|| panic!("missing counter {name}"));
            assert_eq!(s.value, *v as f64);
        }
        // Gauges: exact f64.
        for (name, v) in &snap.gauges {
            let s = samples
                .iter()
                .find(|s| s.name == prom_name(name))
                .unwrap_or_else(|| panic!("missing gauge {name}"));
            assert_eq!(s.value.to_bits(), v.to_bits());
        }
        // Histograms: count, sum, and the full cumulative distribution.
        for (name, hist) in &snap.histograms {
            let pname = prom_name(name);
            let count = samples
                .iter()
                .find(|s| s.name == format!("{pname}_count"))
                .unwrap();
            assert_eq!(count.value, hist.count() as f64);
            let sum = samples
                .iter()
                .find(|s| s.name == format!("{pname}_sum"))
                .unwrap();
            assert_eq!(sum.value.to_bits(), hist.sum().to_bits());
            let buckets: Vec<_> = samples
                .iter()
                .filter(|s| s.name == format!("{pname}_bucket"))
                .collect();
            assert!(buckets.iter().any(|b| b.le.as_deref() == Some("+Inf")));
            // Cumulative counts reconstruct the per-bucket distribution.
            let mut cumulative = 0u64;
            for (i, &c) in hist.bucket_counts().iter().enumerate() {
                cumulative += c;
                if c == 0 || i == hist.bucket_counts().len() - 1 {
                    continue;
                }
                let le = fmt_f64(Histogram::bucket_upper_bound(i));
                let b = buckets
                    .iter()
                    .find(|b| b.le.as_deref() == Some(le.as_str()))
                    .unwrap_or_else(|| panic!("missing bucket le={le}"));
                assert_eq!(b.value, cumulative as f64);
            }
        }
    }

    #[test]
    fn bucket_le_labels_are_ascending() {
        let text = render_prometheus(&sample_registry().snapshot());
        let les: Vec<f64> = parse_prometheus(&text)
            .unwrap()
            .into_iter()
            .filter(|s| s.name.ends_with("_bucket"))
            .map(|s| match s.le.as_deref() {
                Some("+Inf") => f64::INFINITY,
                Some(v) => v.parse().unwrap(),
                None => unreachable!(),
            })
            .collect();
        for w in les.windows(2) {
            assert!(w[0] < w[1], "le order violated: {} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn name_mangling_handles_leading_digits_and_symbols() {
        assert_eq!(prom_name("lqo.exec.queries"), "lqo_exec_queries");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name("a-b c:d_e2"), "a_b_c:d_e2");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let text = render_prometheus(&MetricsRegistry::new().snapshot());
        assert!(text.is_empty());
        assert_eq!(parse_prometheus(&text), Some(Vec::new()));
    }
}
