//! Human-readable rendering: an EXPLAIN ANALYZE-style view of a
//! [`QueryTrace`] and a fixed-width table for a [`MetricsSnapshot`].

use crate::metrics::MetricsSnapshot;
use crate::trace::QueryTrace;

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_tables(mask: u64) -> String {
    let ids: Vec<String> = (0..64)
        .filter(|i| mask >> i & 1 == 1)
        .map(|i| format!("t{i}"))
        .collect();
    format!("{{{}}}", ids.join(","))
}

/// Render a trace as indented text, in the spirit of EXPLAIN ANALYZE:
/// a query header with driver attribution, the phase timeline with
/// planner provenance inline, then per-operator estimated-vs-true rows.
pub fn render_trace(t: &QueryTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("Query: {}\n", t.query));
    if let Some(driver) = &t.driver {
        let decision = t
            .decision_ns
            .map(|ns| format!(", decision={}", fmt_ns(ns)))
            .unwrap_or_default();
        out.push_str(&format!("  driver: {driver}{decision}\n"));
    }
    for phase in &t.phases {
        out.push_str(&format!(
            "  {:<10} {:>12}",
            phase.name,
            fmt_ns(phase.elapsed_ns)
        ));
        if phase.name == "plan" {
            let p = &t.planner;
            let mut notes = Vec::new();
            if let Some(algo) = &p.algo {
                notes.push(format!("algo={algo}"));
            }
            if p.subproblems > 0 {
                notes.push(format!("subproblems={}", p.subproblems));
            }
            if p.cost_evals > 0 {
                notes.push(format!("cost_evals={}", p.cost_evals));
            }
            if let Some(src) = &p.card_source {
                notes.push(format!("card={src}"));
            }
            if let Some(cost) = p.chosen_cost {
                notes.push(format!("cost={cost:.1}"));
            }
            if !notes.is_empty() {
                out.push_str(&format!("  [{}]", notes.join(", ")));
            }
        }
        out.push('\n');
    }
    if let Some(hints) = &t.planner.hints {
        out.push_str(&format!("  hints: {hints}\n"));
    }
    if !t.exec.operators.is_empty() {
        out.push_str("  operators (est vs true):\n");
        for op in &t.exec.operators {
            let est = op
                .est_rows
                .map(|e| format!("{e:.1}"))
                .unwrap_or_else(|| "-".into());
            let q = op
                .q_error()
                .map(|q| format!("  q={q:.2}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {:<10} {:<12} est={:<12} true={:<10} work={:.1}{}\n",
                op.op,
                fmt_tables(op.tables),
                est,
                op.true_rows,
                op.work,
                q
            ));
        }
    }
    if !t.guard.is_empty() {
        out.push_str("  guard interventions:\n");
        for g in &t.guard {
            out.push_str(&format!(
                "    {:<20} fault={:<14} -> {}\n",
                g.component, g.fault, g.action
            ));
        }
    }
    if !t.cache.is_empty() {
        out.push_str("  cache events:\n");
        for c in &t.cache {
            out.push_str(&format!(
                "    {:<6} {:<12} {}\n",
                c.cache, c.event, c.detail
            ));
        }
    }
    if !t.reopt.is_empty() {
        out.push_str("  reopt checkpoints:\n");
        for r in &t.reopt {
            let costs = match (r.old_cost, r.new_cost) {
                (Some(old), Some(new)) => format!("  old={old:.1} new={new:.1}"),
                _ => String::new(),
            };
            out.push_str(&format!(
                "    {:<12} obs={:<10} est={:<12.1} q={:<8.2} -> {:<14} replan_work={:.1}{}\n",
                fmt_tables(r.tables),
                r.observed_rows,
                r.est_rows,
                r.q_error,
                r.action,
                r.replan_work,
                costs
            ));
        }
    }
    if t.exec.timeout {
        out.push_str("  ** execution hit its work budget (timeout) **\n");
    }
    if let Some(o) = &t.outcome {
        out.push_str(&format!(
            "  result: {} rows, {:.1} work units, {}\n",
            o.count,
            o.work,
            fmt_ns(o.wall_ns)
        ));
    }
    out
}

/// Render a metrics snapshot as a fixed-width text table: counters,
/// gauges, then histogram summaries (count/mean/p50/p99/max).
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<36} {v:>14}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<36} {v:>14.3}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        out.push_str(&format!(
            "  {:<36} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            "name", "count", "mean", "p50", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {:<36} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                name,
                h.count(),
                fmt(h.mean()),
                fmt(h.quantile(0.5)),
                fmt(h.quantile(0.99)),
                fmt(h.max()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::{
        CacheEvent, CardLookup, GuardEvent, OperatorEvent, QueryOutcome, ReoptEvent,
    };

    #[test]
    fn trace_rendering_mentions_key_facts() {
        let mut t = QueryTrace::new("q7");
        t.driver = Some("LeroDriver".into());
        t.decision_ns = Some(2_000_000);
        t.record_phase("parse", 1_000);
        t.record_phase("plan", 3_000_000);
        t.record_phase("execute", 40_000_000);
        t.planner.algo = Some("dp".into());
        t.planner.subproblems = 11;
        t.planner.card_lookups.push(CardLookup {
            tables: 0b101,
            est_rows: 20.0,
        });
        t.exec.operators.push(OperatorEvent {
            op: "HashJoin".into(),
            tables: 0b101,
            true_rows: 80,
            est_rows: Some(20.0),
            work: 64.0,
        });
        t.exec.timeout = true;
        t.guard.push(GuardEvent {
            component: "card:learned".into(),
            fault: "deadline".into(),
            action: "fallback:traditional".into(),
        });
        t.cache.push(CacheEvent {
            cache: "card".into(),
            event: "hit".into(),
            detail: "saved=5".into(),
        });
        t.reopt.push(ReoptEvent {
            tables: 0b101,
            observed_rows: 80,
            est_rows: 20.0,
            q_error: 4.0,
            action: "switch".into(),
            replan_work: 7.5,
            old_cost: Some(640.0),
            new_cost: Some(320.0),
        });
        t.outcome = Some(QueryOutcome {
            count: 80,
            work: 99.0,
            wall_ns: 44_000_000,
        });
        let text = render_trace(&t);
        for needle in [
            "Query: q7",
            "LeroDriver",
            "decision=2.00 ms",
            "algo=dp",
            "subproblems=11",
            "{t0,t2}",
            "true=80",
            "q=4.00",
            "guard interventions",
            "fault=deadline",
            "fallback:traditional",
            "cache events",
            "saved=5",
            "reopt checkpoints",
            "switch",
            "replan_work=7.5",
            "timeout",
            "80 rows",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn metrics_table_lists_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.inc_counter("lqo.exec.queries", 9);
        reg.set_gauge("lqo.plan.last_cost", 5.5);
        reg.observe("lqo.card.qerror", 2.0);
        let text = render_metrics(&reg.snapshot());
        assert!(text.contains("lqo.exec.queries"));
        assert!(text.contains("lqo.plan.last_cost"));
        assert!(text.contains("lqo.card.qerror"));
        assert!(text.contains("p99"));
    }
}
