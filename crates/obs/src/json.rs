//! A minimal JSON value, writer, and parser.
//!
//! `lqo-obs` sits below every other crate in the stack and deliberately
//! carries no serialization dependency, so it ships its own ~small JSON
//! implementation for the JSONL trace exporter ([`crate::export`]).
//! Numbers are kept split into integer and float variants so `u64`
//! cardinalities survive a round trip exactly.

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (single line — JSONL-safe).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float/int distinction through a round trip.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
pub fn parse(input: &str) -> Option<Value> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Option<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).ok()?;
    if text.is_empty() || text == "-" {
        return None;
    }
    if is_float {
        text.parse::<f64>().ok().map(Value::Float)
    } else {
        text.parse::<i64>().ok().map(Value::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Value::Obj(vec![
            ("q".into(), Value::Str("SELECT \"x\"\n".into())),
            ("n".into(), Value::Int(42)),
            ("f".into(), Value::Float(2.5)),
            ("whole".into(), Value::Float(3.0)),
            ("neg".into(), Value::Int(-7)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Bool(false)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = v.to_compact();
        assert!(!text.contains('\n'), "compact output must be JSONL-safe");
        assert_eq!(parse(&text), Some(v));
    }

    #[test]
    fn int_float_distinction_survives() {
        let text = Value::Arr(vec![Value::Int(3), Value::Float(3.0)]).to_compact();
        assert_eq!(text, "[3,3.0]");
        let back = parse(&text).unwrap();
        assert_eq!(back.as_arr().unwrap()[0], Value::Int(3));
        assert_eq!(back.as_arr().unwrap()[1], Value::Float(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse(""), None);
        assert_eq!(parse("{"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse("1 2"), None);
        assert_eq!(parse("{\"a\" 1}"), None);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            parse("\"a\\u0041\\n\""),
            Some(Value::Str("aA\n".to_string()))
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_compact(), "null");
    }
}
