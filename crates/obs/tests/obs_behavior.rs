//! Behavioral tests for lqo-obs: histogram bucket boundaries, nested and
//! concurrent span correctness, JSONL trace round-trips, and the
//! disabled-context no-op guarantees.

use lqo_obs::export::{parse_jsonl, write_jsonl};
use lqo_obs::metrics::{Histogram, HIST_BUCKETS, HIST_MAX_EXP, HIST_MIN_EXP};
use lqo_obs::span::Tracer;
use lqo_obs::trace::{CardLookup, OperatorEvent, QueryOutcome, QueryTrace};
use lqo_obs::ObsContext;
use std::sync::Arc;

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    // Bucket i (1-based over exponents) covers (2^(e-1), 2^e].
    for e in [-3, 0, 1, 10, 40] {
        let bound = (2.0f64).powi(e);
        let at = Histogram::bucket_index(bound);
        let above = Histogram::bucket_index(bound * (1.0 + 1e-12));
        let below = Histogram::bucket_index(bound * (1.0 - 1e-12));
        assert_eq!(
            at,
            (e - HIST_MIN_EXP) as usize + 1,
            "2^{e} must land in its own bucket"
        );
        assert_eq!(above, at + 1, "just above 2^{e} goes to the next bucket");
        assert_eq!(below, at, "just below 2^{e} stays in 2^{e}'s bucket");
    }
}

#[test]
fn histogram_extreme_values() {
    // Zero, negatives, and NaN go to the underflow bucket.
    assert_eq!(Histogram::bucket_index(0.0), 0);
    assert_eq!(Histogram::bucket_index(-5.0), 0);
    assert_eq!(Histogram::bucket_index(f64::NAN), 0);
    // Positive values below the smallest boundary collapse into the
    // first finite bucket.
    assert_eq!(Histogram::bucket_index(f64::MIN_POSITIVE), 1);
    // Values beyond 2^MAX_EXP overflow.
    let over = (2.0f64).powi(HIST_MAX_EXP) * 2.0;
    assert_eq!(Histogram::bucket_index(over), HIST_BUCKETS - 1);
    assert_eq!(Histogram::bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
    // Recording non-finite values must not poison the totals.
    let mut h = Histogram::new();
    h.record(f64::INFINITY);
    h.record(f64::NAN);
    h.record(8.0);
    assert_eq!(h.count(), 3);
    assert_eq!(h.sum(), 8.0);
    assert_eq!(h.min(), Some(8.0));
    assert_eq!(h.max(), Some(8.0));
}

#[test]
fn histogram_bucket_upper_bound_inverts_index() {
    for (value, expect_upper) in [(3.0, 4.0), (4.0, 4.0), (4.0001, 8.0), (0.75, 1.0)] {
        let i = Histogram::bucket_index(value);
        assert_eq!(
            Histogram::bucket_upper_bound(i),
            expect_upper,
            "value {value}"
        );
        assert!(value <= Histogram::bucket_upper_bound(i));
    }
    assert_eq!(Histogram::bucket_upper_bound(0), 0.0);
    assert_eq!(
        Histogram::bucket_upper_bound(HIST_BUCKETS - 1),
        f64::INFINITY
    );
}

#[test]
fn nested_spans_record_parent_chain() {
    let tracer = Tracer::enabled();
    {
        let _a = tracer.span("a");
        {
            let _b = tracer.span("b");
            let _c = tracer.span("c");
        }
    }
    let spans = tracer.closed_spans();
    assert_eq!(spans.len(), 3);
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    let (a, b, c) = (by_name("a"), by_name("b"), by_name("c"));
    assert_eq!(a.parent, None);
    assert_eq!(b.parent, Some(a.id));
    assert_eq!(c.parent, Some(b.id));
    assert!(a.start_ns <= b.start_ns && b.start_ns <= c.start_ns);
    assert!(c.end_ns <= a.end_ns);
}

#[test]
fn concurrent_spans_stay_per_thread() {
    let tracer = Tracer::enabled();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                let _outer = tracer.span(&format!("outer-{i}"));
                for j in 0..50 {
                    let _inner = tracer.span(&format!("inner-{i}-{j}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let spans = tracer.closed_spans();
    assert_eq!(spans.len(), 8 * 51);
    // Every inner span's parent must be the outer span of ITS thread,
    // never one from another thread.
    for i in 0..8 {
        let outer = spans
            .iter()
            .find(|s| s.name == format!("outer-{i}"))
            .unwrap();
        assert_eq!(outer.parent, None);
        for s in spans
            .iter()
            .filter(|s| s.name.starts_with(&format!("inner-{i}-")))
        {
            assert_eq!(s.parent, Some(outer.id), "span {} cross-parented", s.name);
        }
    }
}

#[test]
fn jsonl_round_trip_many_traces() {
    let mut traces = Vec::new();
    for i in 0..10 {
        let mut t = QueryTrace::new(&format!("SELECT {i} FROM \"weird\ntable\""));
        t.driver = (i % 2 == 0).then(|| format!("driver-{i}"));
        t.decision_ns = Some(i * 1000);
        t.record_phase("parse", i);
        t.record_phase("plan", i * 7);
        t.planner.algo = Some(if i % 2 == 0 { "dp" } else { "greedy" }.into());
        t.planner.subproblems = i * i;
        t.planner.cost_evals = i + 1;
        t.planner.card_source = Some("injected".into());
        t.planner.chosen_cost = Some(i as f64 * 0.5);
        t.planner.card_lookups.push(CardLookup {
            tables: 1 << i,
            est_rows: i as f64 + 0.25,
        });
        t.exec.operators.push(OperatorEvent {
            op: "MergeJoin".into(),
            tables: 1 << i,
            true_rows: i * 11,
            est_rows: (i > 4).then_some(3.5),
            work: i as f64 * 2.0,
        });
        t.exec.timeout = i == 9;
        t.outcome = (i != 3).then(|| QueryOutcome {
            count: i,
            work: i as f64,
            wall_ns: i * 999,
        });
        traces.push(t);
    }
    let text = write_jsonl(&traces);
    assert_eq!(text.lines().count(), traces.len());
    assert_eq!(parse_jsonl(&text).expect("round trip"), traces);
}

#[test]
fn disabled_context_records_nothing_and_costs_no_allocation() {
    let obs = ObsContext::disabled();
    // A disabled context is a None — clones stay inert.
    let clone = obs.clone();
    assert!(!clone.is_enabled());
    // All write paths are no-ops.
    clone.begin_query("q");
    clone.count("lqo.x", 1);
    clone.gauge("lqo.g", 1.0);
    clone.observe("lqo.h", 1.0);
    let span = clone.span("s");
    assert!(!span.is_recording());
    drop(span);
    let mut ran = false;
    let out = clone.phase("plan", || {
        ran = true;
        7
    });
    assert!(ran, "phase must still run the closure");
    assert_eq!(out, 7);
    clone.with_query(|_| panic!("must not be called when disabled"));
    assert!(clone.end_query().is_none());
    assert!(clone.finished_traces().is_empty());
}

#[test]
fn enabled_context_is_shareable_across_threads() {
    let obs = Arc::new(ObsContext::enabled());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let obs = obs.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    obs.count("lqo.threads.ops", 1);
                    obs.observe("lqo.threads.latency", i as f64 + 1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = obs.metrics().unwrap().snapshot();
    assert_eq!(snap.counter("lqo.threads.ops"), Some(400));
    assert_eq!(snap.histogram("lqo.threads.latency").unwrap().count(), 400);
}
