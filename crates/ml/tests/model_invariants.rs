//! Property tests on the probabilistic models: invariants that must hold
//! for any training data — normalization, monotonicity under mask
//! widening, and point-mass consistency.

use proptest::prelude::*;

use lqo_ml::bayesnet::BayesNet;
use lqo_ml::metrics::q_error;
use lqo_ml::spn::{Spn, SpnConfig};

prop_compose! {
    /// Random discrete rows over fixed small domains [3, 4, 2].
    fn rows()(data in prop::collection::vec((0usize..3, 0usize..4, 0usize..2), 20..200))
        -> Vec<Vec<usize>> {
        data.into_iter().map(|(a, b, c)| vec![a, b, c]).collect()
    }
}

const DOMAINS: [usize; 3] = [3, 4, 2];

fn full_masks() -> Vec<Vec<bool>> {
    DOMAINS.iter().map(|&d| vec![true; d]).collect()
}

prop_compose! {
    /// A random non-empty mask set over the domains.
    fn masks()(bits in prop::collection::vec(prop::bool::ANY, 9)) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let mut off = 0;
        for &d in &DOMAINS {
            let mut m: Vec<bool> = bits[off..off + d].to_vec();
            if m.iter().all(|&b| !b) {
                m[0] = true; // keep masks satisfiable per-variable
            }
            out.push(m);
            off += d;
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// SPNs and Bayes nets are normalized and bounded for any data.
    #[test]
    fn distributions_are_normalized(rows in rows(), masks in masks()) {
        let spn = Spn::fit(&rows, &DOMAINS, &SpnConfig::default());
        let bn = BayesNet::fit(&rows, &DOMAINS, 0.3);
        prop_assert!((spn.prob(&full_masks()) - 1.0).abs() < 1e-9);
        prop_assert!((bn.prob(&full_masks()) - 1.0).abs() < 1e-9);
        for p in [spn.prob(&masks), bn.prob(&masks)] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
        }
    }

    /// Widening a mask never lowers the probability (monotonicity).
    #[test]
    fn probability_is_monotone_in_masks(rows in rows(), masks in masks()) {
        let spn = Spn::fit(&rows, &DOMAINS, &SpnConfig::default());
        let bn = BayesNet::fit(&rows, &DOMAINS, 0.3);
        // Widen: allow everything on variable 1.
        let mut wider = masks.clone();
        wider[1] = vec![true; DOMAINS[1]];
        prop_assert!(spn.prob(&wider) + 1e-12 >= spn.prob(&masks));
        prop_assert!(bn.prob(&wider) + 1e-12 >= bn.prob(&masks));
    }

    /// Point probabilities sum to (about) 1 over the whole domain.
    #[test]
    fn point_masses_sum_to_one(rows in rows()) {
        let spn = Spn::fit(&rows, &DOMAINS, &SpnConfig::default());
        let bn = BayesNet::fit(&rows, &DOMAINS, 0.3);
        let mut spn_total = 0.0;
        let mut bn_total = 0.0;
        for a in 0..DOMAINS[0] {
            for b in 0..DOMAINS[1] {
                for c in 0..DOMAINS[2] {
                    spn_total += spn.prob_point(&[a, b, c]);
                    bn_total += bn.prob_point(&[a, b, c]);
                }
            }
        }
        prop_assert!((spn_total - 1.0).abs() < 1e-6, "spn total {spn_total}");
        prop_assert!((bn_total - 1.0).abs() < 1e-6, "bn total {bn_total}");
    }

    /// Q-error is symmetric and at least 1.
    #[test]
    fn q_error_properties(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let q = q_error(a, b);
        prop_assert!(q >= 1.0);
        prop_assert!((q - q_error(b, a)).abs() < 1e-9);
    }
}
