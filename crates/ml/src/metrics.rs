//! Evaluation metrics shared by the experiments: q-error, correlation
//! coefficients and ranking accuracy.

/// Q-error of an estimate against the truth: `max(est/true, true/est)`,
/// with both sides floored at 1 tuple (the standard convention, so empty
/// results do not produce infinities).
///
/// Total on degenerate inputs: non-finite estimates or truths (NaN/±∞
/// from a misbehaving estimator) are treated as `f64::MAX` — the worst
/// representable miss — so the result is always a finite value `>= 1`
/// and never poisons a workload summary with NaN/∞.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let e = if estimate.is_finite() {
        estimate.max(1.0)
    } else {
        f64::MAX
    };
    let t = if truth.is_finite() {
        truth.max(1.0)
    } else {
        f64::MAX
    };
    (e / t).max(t / e)
}

/// Percentile of a sample (linear interpolation), `p` in `\[0, 100\]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty());
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (of positive values; non-positive values floored at
/// `1e-12`).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-18 || vy < 1e-18 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Ranks with ties broken by average rank.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Fraction of pairs `(i, j)` whose order under `scores` matches their
/// order under `truth` (pairwise ranking accuracy; ties in truth skipped).
pub fn pairwise_rank_accuracy(scores: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..scores.len() {
        for j in i + 1..scores.len() {
            if truth[i] == truth[j] {
                continue;
            }
            total += 1;
            if (scores[i] < scores[j]) == (truth[i] < truth[j]) {
                correct += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetry_and_floor() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
        // Zero truth is floored, not infinite.
        assert_eq!(q_error(10.0, 0.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn q_error_total_on_degenerate_inputs() {
        // Negative inputs are floored like zeros.
        assert_eq!(q_error(-5.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, -5.0), 10.0);
        // Non-finite inputs map to the worst representable miss: the
        // result is finite, >= 1, and never NaN.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for good in [0.0, 1.0, 1e12] {
                for (e, t) in [(bad, good), (good, bad)] {
                    let q = q_error(e, t);
                    assert!(q.is_finite() && q >= 1.0, "q_error({e}, {t}) = {q}");
                }
            }
            assert_eq!(q_error(bad, bad), 1.0);
        }
        // A summary over a batch containing one bad sample stays finite.
        let batch = [q_error(f64::NAN, 50.0), q_error(2.0, 1.0)];
        assert!(mean(&batch).is_finite());
    }

    #[test]
    fn percentile_interpolation() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        assert_eq!(percentile(&v, 90.0), 4.6);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &vec![3.0; 50]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        // Monotone but nonlinear: Spearman 1, Pearson < 1.
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = vec![1.0, 1.0, 2.0, 3.0];
        let ys = vec![10.0, 10.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_accuracy() {
        let truth = vec![1.0, 2.0, 3.0];
        assert_eq!(pairwise_rank_accuracy(&[10.0, 20.0, 30.0], &truth), 1.0);
        assert_eq!(pairwise_rank_accuracy(&[30.0, 20.0, 10.0], &truth), 0.0);
        // Ties in truth are skipped.
        assert_eq!(pairwise_rank_accuracy(&[1.0, 2.0], &[5.0, 5.0]), 1.0);
    }
}
