//! Multi-dimensional Gaussian kernel density estimation with diagonal
//! bandwidth (Scott's rule) — the Heimel/Kiefer KDE selectivity estimators.

use crate::gmm::normal_cdf;

/// A KDE over sample points.
#[derive(Debug, Clone)]
pub struct Kde {
    points: Vec<Vec<f64>>,
    bandwidth: Vec<f64>,
}

impl Kde {
    /// Fit on sample points with Scott's-rule per-dimension bandwidth
    /// `h_d = sigma_d * n^(-1/(d+4))`.
    pub fn fit(points: Vec<Vec<f64>>) -> Kde {
        assert!(!points.is_empty());
        let n = points.len() as f64;
        let d = points[0].len();
        let mut bandwidth = Vec::with_capacity(d);
        for dim in 0..d {
            let mean = points.iter().map(|p| p[dim]).sum::<f64>() / n;
            let var = points.iter().map(|p| (p[dim] - mean).powi(2)).sum::<f64>() / n;
            let sigma = var.sqrt().max(1e-6);
            bandwidth.push(sigma * n.powf(-1.0 / (d as f64 + 4.0)));
        }
        Kde { points, bandwidth }
    }

    /// Fit with explicit bandwidths (bandwidth-optimized variants tune
    /// these against observed queries).
    pub fn with_bandwidth(points: Vec<Vec<f64>>, bandwidth: Vec<f64>) -> Kde {
        assert!(!points.is_empty());
        assert_eq!(points[0].len(), bandwidth.len());
        Kde { points, bandwidth }
    }

    /// Number of kernel centers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Current bandwidths.
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// Estimated probability of the axis-aligned box `[lo, hi]` (inclusive):
    /// the average over kernels of the product of per-dimension Gaussian
    /// masses.
    pub fn prob_box(&self, lo: &[f64], hi: &[f64]) -> f64 {
        assert_eq!(lo.len(), self.bandwidth.len());
        assert_eq!(hi.len(), self.bandwidth.len());
        let mut total = 0.0;
        for p in &self.points {
            let mut mass = 1.0;
            for dim in 0..p.len() {
                let h = self.bandwidth[dim];
                let m = normal_cdf((hi[dim] - p[dim]) / h) - normal_cdf((lo[dim] - p[dim]) / h);
                mass *= m.max(0.0);
                if mass == 0.0 {
                    break;
                }
            }
            total += mass;
        }
        (total / self.points.len() as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn full_box_is_near_one() {
        let kde = Kde::fit(uniform_points(500, 2, 1));
        let p = kde.prob_box(&[-10.0, -10.0], &[10.0, 10.0]);
        assert!(p > 0.999);
    }

    #[test]
    fn half_box_on_uniform() {
        let kde = Kde::fit(uniform_points(2000, 1, 2));
        let p = kde.prob_box(&[-10.0], &[0.5]);
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn correlated_2d_box() {
        // Points on the diagonal: P(x < 0.5 AND y < 0.5) ≈ 0.5, not 0.25.
        let points: Vec<Vec<f64>> = (0..1000)
            .map(|i| {
                let v = i as f64 / 1000.0;
                vec![v, v]
            })
            .collect();
        let kde = Kde::fit(points);
        let p = kde.prob_box(&[-10.0, -10.0], &[0.5, 0.5]);
        assert!(p > 0.4, "p = {p}");
        assert!(p < 0.6);
    }

    #[test]
    fn empty_region_near_zero() {
        let kde = Kde::fit(uniform_points(500, 2, 3));
        let p = kde.prob_box(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(p < 0.01);
    }

    #[test]
    fn explicit_bandwidth_is_used() {
        let points = vec![vec![0.0]; 10];
        let kde = Kde::with_bandwidth(points, vec![2.0]);
        assert_eq!(kde.bandwidth(), &[2.0]);
        // With h=2, about 38% of mass lies within ±1.
        let p = kde.prob_box(&[-1.0], &[1.0]);
        assert!((p - 0.383).abs() < 0.01, "p = {p}");
        assert_eq!(kde.len(), 10);
    }
}
