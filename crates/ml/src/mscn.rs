//! Multi-set convolutional networks (Kipf et al., CIDR 2019): one shared
//! MLP encoder per input-set type (tables, joins, predicates), average
//! pooling within each set, concatenation, and a dense output head — the
//! canonical deep query-driven cardinality estimator.

use crate::mlp::{Activation, Mlp, MlpConfig};

/// MSCN hyper-parameters.
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Input feature dimension of each set type (e.g. `[t, j, p]` for
    /// table, join and predicate sets).
    pub set_dims: Vec<usize>,
    /// Hidden width of each set encoder (also its output width).
    pub hidden: usize,
    /// Hidden width of the output head.
    pub head_hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl MscnConfig {
    /// Default shape.
    pub fn new(set_dims: Vec<usize>) -> MscnConfig {
        MscnConfig {
            set_dims,
            hidden: 32,
            head_hidden: 32,
            learning_rate: 1e-3,
            seed: 13,
        }
    }
}

/// A multi-set convolutional network with a scalar head.
pub struct Mscn {
    encoders: Vec<Mlp>,
    head: Mlp,
    hidden: usize,
}

impl Mscn {
    /// Initialize the network.
    pub fn new(cfg: MscnConfig) -> Mscn {
        assert!(!cfg.set_dims.is_empty());
        let encoders: Vec<Mlp> = cfg
            .set_dims
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Mlp::new(MlpConfig {
                    learning_rate: cfg.learning_rate,
                    activation: Activation::Relu,
                    seed: cfg.seed ^ (i as u64 + 1),
                    ..MlpConfig::new(vec![d, cfg.hidden, cfg.hidden])
                })
            })
            .collect();
        let head = Mlp::new(MlpConfig {
            learning_rate: cfg.learning_rate,
            activation: Activation::Relu,
            seed: cfg.seed ^ 0xBEEF,
            ..MlpConfig::new(vec![cfg.set_dims.len() * cfg.hidden, cfg.head_hidden, 1])
        });
        Mscn {
            encoders,
            head,
            hidden: cfg.hidden,
        }
    }

    /// Number of set types.
    pub fn num_sets(&self) -> usize {
        self.encoders.len()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.encoders.iter().map(Mlp::num_params).sum::<usize>() + self.head.num_params()
    }

    /// Pooled encoding of all sets, concatenated.
    fn pool(&self, sets: &[Vec<Vec<f64>>]) -> Vec<f64> {
        assert_eq!(sets.len(), self.encoders.len());
        let mut pooled = Vec::with_capacity(self.encoders.len() * self.hidden);
        for (enc, set) in self.encoders.iter().zip(sets) {
            let mut avg = vec![0.0; self.hidden];
            if !set.is_empty() {
                for item in set {
                    let h = enc.predict(item);
                    for (a, &v) in avg.iter_mut().zip(&h) {
                        *a += v;
                    }
                }
                for a in &mut avg {
                    *a /= set.len() as f64;
                }
            }
            pooled.extend(avg);
        }
        pooled
    }

    /// Predicted scalar for one sample (a slice of sets, one per type).
    pub fn predict(&self, sets: &[Vec<Vec<f64>>]) -> f64 {
        self.head.predict_scalar(&self.pool(sets))
    }

    /// One Adam step of squared-error regression over a batch. Returns the
    /// batch MSE before the update.
    pub fn train_batch(&mut self, samples: &[(&[Vec<Vec<f64>>], f64)]) -> f64 {
        let mut head_buf = self.head.zero_grads();
        let mut enc_bufs: Vec<_> = self.encoders.iter().map(Mlp::zero_grads).collect();
        let mut loss = 0.0;
        for (sets, y) in samples {
            let pooled = self.pool(sets);
            let cache = self.head.forward_cache(&pooled);
            let pred = cache.acts.last().unwrap()[0];
            loss += (pred - y) * (pred - y);
            let grad_pooled = self
                .head
                .backward(&cache, vec![2.0 * (pred - y)], &mut head_buf);
            Mlp::bump_count(&mut head_buf);
            // Distribute the pooled gradient back through each encoder.
            for (k, (enc, set)) in self.encoders.iter().zip(sets.iter()).enumerate() {
                if set.is_empty() {
                    continue;
                }
                let g = &grad_pooled[k * self.hidden..(k + 1) * self.hidden];
                let scale = 1.0 / set.len() as f64;
                for item in set {
                    let c = enc.forward_cache(item);
                    let gi: Vec<f64> = g.iter().map(|&v| v * scale).collect();
                    enc.backward(&c, gi, &mut enc_bufs[k]);
                    Mlp::bump_count(&mut enc_bufs[k]);
                }
            }
        }
        self.head.step(head_buf);
        for (enc, buf) in self.encoders.iter_mut().zip(enc_bufs) {
            enc.step(buf);
        }
        loss / samples.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Target = (sum of first components of set 0) - (count of set 1) / 4.
    fn sample(i: usize) -> (Vec<Vec<Vec<f64>>>, f64) {
        let n0 = 1 + i % 3;
        let n1 = i % 4;
        let set0: Vec<Vec<f64>> = (0..n0)
            .map(|j| vec![((i + j) % 5) as f64 / 5.0, 1.0])
            .collect();
        let set1: Vec<Vec<f64>> = (0..n1).map(|j| vec![(j % 2) as f64]).collect();
        let y = set0.iter().map(|v| v[0]).sum::<f64>() - n1 as f64 / 4.0;
        (vec![set0, set1], y)
    }

    #[test]
    fn learns_set_function() {
        let mut net = Mscn::new(MscnConfig {
            learning_rate: 3e-3,
            ..MscnConfig::new(vec![2, 1])
        });
        let data: Vec<(Vec<Vec<Vec<f64>>>, f64)> = (0..40).map(sample).collect();
        let mut loss = f64::INFINITY;
        for _ in 0..400 {
            let batch: Vec<(&[Vec<Vec<f64>>], f64)> =
                data.iter().map(|(s, y)| (s.as_slice(), *y)).collect();
            loss = net.train_batch(&batch);
        }
        assert!(loss < 0.05, "mscn loss {loss}");
    }

    #[test]
    fn empty_sets_are_handled() {
        let net = Mscn::new(MscnConfig::new(vec![2, 1]));
        let sets: Vec<Vec<Vec<f64>>> = vec![vec![], vec![]];
        assert!(net.predict(&sets).is_finite());
    }

    #[test]
    fn permutation_invariance() {
        let net = Mscn::new(MscnConfig::new(vec![2]));
        let a = vec![vec![vec![0.1, 0.9], vec![0.7, 0.3], vec![0.5, 0.5]]];
        let b = vec![vec![vec![0.5, 0.5], vec![0.1, 0.9], vec![0.7, 0.3]]];
        assert!((net.predict(&a) - net.predict(&b)).abs() < 1e-12);
    }

    #[test]
    fn shapes() {
        let net = Mscn::new(MscnConfig::new(vec![3, 4, 5]));
        assert_eq!(net.num_sets(), 3);
        assert!(net.num_params() > 0);
    }
}
