//! k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used for SPN row splits and for Eraser's plan-cluster stage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Run k-means with k-means++ initialization. `k` is clamped to the
    /// number of rows. Deterministic given the seed.
    pub fn fit(xs: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeans {
        assert!(!xs.is_empty());
        let k = k.clamp(1, xs.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(xs[rng.gen_range(0..xs.len())].clone());
        while centroids.len() < k {
            let d2: Vec<f64> = xs
                .iter()
                .map(|x| {
                    centroids
                        .iter()
                        .map(|c| dist2(x, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 1e-18 {
                // All points identical to some centroid: duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut r = rng.gen_range(0.0..total);
            let mut chosen = 0;
            for (i, &d) in d2.iter().enumerate() {
                if r < d {
                    chosen = i;
                    break;
                }
                r -= d;
            }
            centroids.push(xs[chosen].clone());
        }

        let mut assignments = vec![0usize; xs.len()];
        for _ in 0..max_iter {
            // Assign.
            let mut changed = false;
            for (i, x) in xs.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| dist2(x, &centroids[a]).total_cmp(&dist2(x, &centroids[b])))
                    .unwrap();
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update.
            let d = xs[0].len();
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (x, &a) in xs.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(x) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f64;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
            if !changed {
                break;
            }
        }
        KMeans {
            centroids,
            assignments,
        }
    }

    /// Nearest centroid of a new point.
    pub fn assign(&self, x: &[f64]) -> usize {
        (0..self.centroids.len())
            .min_by(|&a, &b| dist2(x, &self.centroids[a]).total_cmp(&dist2(x, &self.centroids[b])))
            .unwrap()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut xs = Vec::new();
        for i in 0..50 {
            xs.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            xs.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        xs
    }

    #[test]
    fn separates_two_blobs() {
        let xs = two_blobs();
        let km = KMeans::fit(&xs, 2, 50, 1);
        // All even rows (blob A) in one cluster, all odd in the other.
        let a = km.assignments[0];
        assert!(km.assignments.iter().step_by(2).all(|&c| c == a));
        assert!(km.assignments.iter().skip(1).step_by(2).all(|&c| c != a));
    }

    #[test]
    fn assign_new_points() {
        let xs = two_blobs();
        let km = KMeans::fit(&xs, 2, 50, 1);
        assert_eq!(km.assign(&[0.5, 0.5]), km.assignments[0]);
        assert_eq!(km.assign(&[9.5, 9.5]), km.assignments[1]);
    }

    #[test]
    fn k_clamped_to_rows() {
        let xs = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&xs, 10, 10, 0);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn identical_points_do_not_panic() {
        let xs = vec![vec![3.0, 3.0]; 20];
        let km = KMeans::fit(&xs, 3, 10, 0);
        assert!(km.assignments.iter().all(|&a| a < km.k()));
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = two_blobs();
        let a = KMeans::fit(&xs, 2, 50, 9);
        let b = KMeans::fit(&xs, 2, 50, 9);
        assert_eq!(a.assignments, b.assignments);
    }
}
