//! Dense multi-layer perceptrons with manual backprop and Adam.
//!
//! Supports three training heads used across the learned-QO literature:
//! squared-error regression (cost/cardinality models), softmax
//! classification (autoregressive conditionals), and pairwise logistic
//! ranking (Lero/LEON-style plan comparators).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::linalg::{axpy, Matrix};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *activated* value.
    #[inline]
    fn grad_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Layer sizes including input and output, e.g. `\[16, 64, 64, 1\]`.
    pub layers: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl MlpConfig {
    /// A sensible default configuration for the given shape.
    pub fn new(layers: Vec<usize>) -> MlpConfig {
        MlpConfig {
            layers,
            activation: Activation::Relu,
            learning_rate: 1e-3,
            l2: 1e-5,
            seed: 7,
        }
    }
}

struct AdamState {
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
    t: u64,
}

/// Forward-pass cache used by backprop.
pub(crate) struct Cache {
    /// `acts\[0\]` is the input; `acts[l+1]` the activated output of layer l.
    pub(crate) acts: Vec<Vec<f64>>,
}

/// Accumulated gradients over a batch.
pub(crate) struct GradBuf {
    dw: Vec<Matrix>,
    db: Vec<Vec<f64>>,
    count: usize,
}

/// A dense feed-forward network.
pub struct Mlp {
    cfg: MlpConfig,
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
    adam: AdamState,
}

impl Mlp {
    /// Initialize with Xavier weights.
    pub fn new(cfg: MlpConfig) -> Mlp {
        assert!(cfg.layers.len() >= 2, "need at least input and output");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in cfg.layers.windows(2) {
            weights.push(Matrix::xavier(w[1], w[0], &mut rng));
            biases.push(vec![0.0; w[1]]);
        }
        let adam = AdamState {
            m_w: weights
                .iter()
                .map(|w| Matrix::zeros(w.rows, w.cols))
                .collect(),
            v_w: weights
                .iter()
                .map(|w| Matrix::zeros(w.rows, w.cols))
                .collect(),
            m_b: biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            v_b: biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            t: 0,
        };
        Mlp {
            cfg,
            weights,
            biases,
            adam,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.cfg.layers[0]
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        *self.cfg.layers.last().unwrap()
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights
            .iter()
            .map(|w| w.data.len())
            .chain(self.biases.iter().map(|b| b.len()))
            .sum()
    }

    pub(crate) fn forward_cache(&self, x: &[f64]) -> Cache {
        debug_assert_eq!(x.len(), self.input_dim());
        let last = self.weights.len() - 1;
        let mut acts = Vec::with_capacity(self.weights.len() + 1);
        acts.push(x.to_vec());
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = w.matvec(acts.last().unwrap());
            axpy(1.0, b, &mut z);
            if l < last {
                for v in &mut z {
                    *v = self.cfg.activation.apply(*v);
                }
            }
            acts.push(z);
        }
        Cache { acts }
    }

    /// Raw (linear-output) forward pass.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        let mut cache = self.forward_cache(x);
        cache.acts.pop().expect("non-empty activation stack")
    }

    /// First output of the raw forward pass.
    pub fn predict_scalar(&self, x: &[f64]) -> f64 {
        self.predict(x)[0]
    }

    /// Softmax probabilities over the output layer.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax(&self.predict(x))
    }

    /// Activation after layer `layer` (1-based; `layers.len()-1` is the
    /// output). Exposes bottleneck codes of auto-encoders.
    pub fn hidden_activation(&self, x: &[f64], layer: usize) -> Vec<f64> {
        let cache = self.forward_cache(x);
        cache.acts[layer.min(cache.acts.len() - 1)].clone()
    }

    pub(crate) fn zero_grads(&self) -> GradBuf {
        GradBuf {
            dw: self
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows, w.cols))
                .collect(),
            db: self.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            count: 0,
        }
    }

    /// Backprop `grad_out` (dL/d raw-output) through the cached forward
    /// pass, accumulating parameter gradients. Returns the gradient with
    /// respect to the network input (needed when the MLP is the head of a
    /// larger model, e.g. tree convolution).
    pub(crate) fn backward(
        &self,
        cache: &Cache,
        mut grad: Vec<f64>,
        buf: &mut GradBuf,
    ) -> Vec<f64> {
        let last = self.weights.len() - 1;
        for l in (0..self.weights.len()).rev() {
            if l < last {
                // Through the activation of layer l.
                for (g, &y) in grad.iter_mut().zip(&cache.acts[l + 1]) {
                    *g *= self.cfg.activation.grad_from_output(y);
                }
            }
            buf.dw[l].add_outer(1.0, &grad, &cache.acts[l]);
            axpy(1.0, &grad, &mut buf.db[l]);
            grad = self.weights[l].matvec_t(&grad);
        }
        grad
    }

    pub(crate) fn bump_count(buf: &mut GradBuf) {
        buf.count += 1;
    }

    pub(crate) fn step(&mut self, buf: GradBuf) {
        if buf.count == 0 {
            return;
        }
        let scale = 1.0 / buf.count as f64;
        let lr = self.cfg.learning_rate;
        let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8);
        self.adam.t += 1;
        let t = self.adam.t as i32;
        let corr1 = 1.0 - b1.powi(t);
        let corr2 = 1.0 - b2.powi(t);
        for l in 0..self.weights.len() {
            for i in 0..self.weights[l].data.len() {
                let g = buf.dw[l].data[i] * scale + self.cfg.l2 * self.weights[l].data[i];
                let m = &mut self.adam.m_w[l].data[i];
                *m = b1 * *m + (1.0 - b1) * g;
                let v = &mut self.adam.v_w[l].data[i];
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / corr1;
                let vhat = *v / corr2;
                self.weights[l].data[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            for i in 0..self.biases[l].len() {
                let g = buf.db[l][i] * scale;
                let m = &mut self.adam.m_b[l][i];
                *m = b1 * *m + (1.0 - b1) * g;
                let v = &mut self.adam.v_b[l][i];
                *v = b2 * *v + (1.0 - b2) * g * g;
                self.biases[l][i] -= lr * (*m / corr1) / ((*v / corr2).sqrt() + eps);
            }
        }
    }

    /// One Adam step on a regression batch (squared error, vector targets).
    /// Returns the mean squared error of the batch before the update.
    pub fn train_batch(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        let mut buf = self.zero_grads();
        let mut loss = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let cache = self.forward_cache(x);
            let out = cache.acts.last().unwrap();
            let grad: Vec<f64> = out
                .iter()
                .zip(y)
                .map(|(&o, &t)| {
                    loss += (o - t) * (o - t);
                    2.0 * (o - t)
                })
                .collect();
            self.backward(&cache, grad, &mut buf);
            buf.count += 1;
        }
        let n = xs.len().max(1) as f64;
        self.step(buf);
        loss / n
    }

    /// Scalar-target convenience wrapper around [`Mlp::train_batch`].
    pub fn train_scalar_batch(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let targets: Vec<Vec<f64>> = ys.iter().map(|&y| vec![y]).collect();
        self.train_batch(xs, &targets)
    }

    /// One Adam step on a softmax cross-entropy batch (`ys` are class
    /// indices). Returns mean cross-entropy before the update.
    pub fn train_softmax_batch(&mut self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        let mut buf = self.zero_grads();
        let mut loss = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let cache = self.forward_cache(x);
            let probs = softmax(cache.acts.last().unwrap());
            loss -= probs[y].max(1e-12).ln();
            let mut grad = probs;
            grad[y] -= 1.0;
            self.backward(&cache, grad, &mut buf);
            buf.count += 1;
        }
        self.step(buf);
        loss / xs.len().max(1) as f64
    }

    /// One Adam step on a pairwise-ranking batch: each element is
    /// `(a, b, y)` with `y = +1` when `a` should score higher than `b`.
    /// The first output unit is the score. Returns mean logistic loss.
    pub fn train_pairwise_batch(&mut self, pairs: &[(Vec<f64>, Vec<f64>, f64)]) -> f64 {
        let mut buf = self.zero_grads();
        let mut loss = 0.0;
        for (a, b, y) in pairs {
            let ca = self.forward_cache(a);
            let cb = self.forward_cache(b);
            let sa = ca.acts.last().unwrap()[0];
            let sb = cb.acts.last().unwrap()[0];
            let margin = y * (sa - sb);
            loss += (1.0 + (-margin).exp()).ln();
            // dL/d(sa - sb) = -y * sigmoid(-margin)
            let g = -y / (1.0 + margin.exp());
            let mut ga = vec![0.0; self.output_dim()];
            ga[0] = g;
            let mut gb = vec![0.0; self.output_dim()];
            gb[0] = -g;
            self.backward(&ca, ga, &mut buf);
            self.backward(&cb, gb, &mut buf);
            buf.count += 2;
        }
        self.step(buf);
        loss / pairs.len().max(1) as f64
    }

    /// Mini-batch regression training loop with shuffling. Returns the
    /// final epoch's mean loss.
    pub fn fit_regression(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        let mut last = f64::NAN;
        for _ in 0..epochs {
            idx.shuffle(&mut rng);
            let mut total = 0.0;
            let mut batches = 0usize;
            for chunk in idx.chunks(batch_size.max(1)) {
                let bx: Vec<Vec<f64>> = chunk.iter().map(|&i| xs[i].clone()).collect();
                let by: Vec<f64> = chunk.iter().map(|&i| ys[i]).collect();
                total += self.train_scalar_batch(&bx, &by);
                batches += 1;
            }
            last = total / batches.max(1) as f64;
        }
        last
    }
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let mut mlp = Mlp::new(MlpConfig {
            learning_rate: 5e-3,
            ..MlpConfig::new(vec![2, 16, 1])
        });
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, (i % 7) as f64 / 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 0.5).collect();
        let loss = mlp.fit_regression(&xs, &ys, 300, 32, 1);
        assert!(loss < 0.01, "final loss {loss}");
        let pred = mlp.predict_scalar(&[0.5, 0.5]);
        assert!((pred - 1.0).abs() < 0.25, "pred {pred}");
    }

    #[test]
    fn learns_nonlinear_xor() {
        let mut mlp = Mlp::new(MlpConfig {
            learning_rate: 1e-2,
            activation: Activation::Tanh,
            ..MlpConfig::new(vec![2, 16, 16, 1])
        });
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0.0, 1.0, 1.0, 0.0];
        let loss = mlp.fit_regression(&xs, &ys, 800, 4, 2);
        assert!(loss < 0.02, "xor loss {loss}");
    }

    #[test]
    fn softmax_classification_converges() {
        // Two linearly separable classes.
        let mut mlp = Mlp::new(MlpConfig {
            learning_rate: 1e-2,
            ..MlpConfig::new(vec![2, 16, 2])
        });
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let c = i % 2;
                vec![c as f64 + (i as f64 % 10.0) * 0.01, 1.0 - c as f64]
            })
            .collect();
        let ys: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let mut loss = f64::INFINITY;
        for _ in 0..200 {
            loss = mlp.train_softmax_batch(&xs, &ys);
        }
        assert!(loss < 0.1, "ce loss {loss}");
        let p = mlp.predict_proba(&xs[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.8);
    }

    #[test]
    fn pairwise_ranking_orders_scores() {
        let mut mlp = Mlp::new(MlpConfig {
            learning_rate: 1e-2,
            ..MlpConfig::new(vec![1, 8, 1])
        });
        // Inputs with larger value should rank higher.
        let pairs: Vec<(Vec<f64>, Vec<f64>, f64)> = (0..50)
            .map(|i| {
                let a = (i % 10) as f64 / 10.0 + 0.3;
                let b = (i % 10) as f64 / 10.0;
                (vec![a], vec![b], 1.0)
            })
            .collect();
        for _ in 0..300 {
            mlp.train_pairwise_batch(&pairs);
        }
        assert!(mlp.predict_scalar(&[0.9]) > mlp.predict_scalar(&[0.1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
        let p = softmax(&[-1000.0, 0.0]);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(MlpConfig::new(vec![4, 8, 2]));
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(mlp.predict(&[0.0; 4]).len(), 2);
    }
}
