//! UCT Monte-Carlo tree search over a generic MDP — the search core of
//! SkinnerDB-style online join ordering.

use rand::rngs::StdRng;
use rand::Rng;

/// A deterministic MDP whose terminal states can be evaluated (higher
/// reward = better). `evaluate` may perform a random rollout internally.
pub trait Mdp {
    /// State type.
    type State: Clone;
    /// Action type.
    type Action: Clone + PartialEq;

    /// Available actions (empty = terminal).
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Deterministic transition.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Reward of (a rollout from) `state`. Called on the state reached
    /// after expansion; implementations typically complete the episode
    /// randomly and return the terminal reward.
    fn evaluate(&mut self, state: &Self::State, rng: &mut StdRng) -> f64;
}

struct Node<S, A> {
    state: S,
    visits: f64,
    total: f64,
    /// Expanded children: (action, node index).
    children: Vec<(A, usize)>,
    /// Actions not yet expanded.
    untried: Vec<A>,
    parent: Option<usize>,
}

/// A UCT search tree rooted at one state. Reusable across iterations
/// (SkinnerDB keeps the tree across time slices).
pub struct Uct<M: Mdp> {
    nodes: Vec<Node<M::State, M::Action>>,
    /// Exploration constant.
    pub exploration: f64,
}

impl<M: Mdp> Uct<M> {
    /// New tree rooted at `root` with UCB1 exploration constant `c`.
    pub fn new(env: &M, root: M::State, c: f64) -> Uct<M> {
        let untried = env.actions(&root);
        Uct {
            nodes: vec![Node {
                state: root,
                visits: 0.0,
                total: 0.0,
                children: Vec::new(),
                untried,
                parent: None,
            }],
            exploration: c,
        }
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists and it is unvisited.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].visits == 0.0
    }

    /// Run one select–expand–simulate–backpropagate iteration.
    pub fn iterate(&mut self, env: &mut M, rng: &mut StdRng) {
        // Select.
        let mut cur = 0usize;
        loop {
            if !self.nodes[cur].untried.is_empty() {
                break;
            }
            if self.nodes[cur].children.is_empty() {
                break; // terminal
            }
            let parent_visits = self.nodes[cur].visits.max(1.0);
            let c = self.exploration;
            cur = self.nodes[cur]
                .children
                .iter()
                .map(|&(_, child)| child)
                .max_by(|&a, &b| {
                    let ucb = |i: usize| {
                        let n = &self.nodes[i];
                        if n.visits == 0.0 {
                            f64::INFINITY
                        } else {
                            n.total / n.visits + c * (parent_visits.ln() / n.visits).sqrt()
                        }
                    };
                    ucb(a).total_cmp(&ucb(b))
                })
                .expect("non-empty children");
        }
        // Expand.
        let leaf = if self.nodes[cur].untried.is_empty() {
            cur
        } else {
            let pick = rng.gen_range(0..self.nodes[cur].untried.len());
            let action = self.nodes[cur].untried.swap_remove(pick);
            let state = env.step(&self.nodes[cur].state, &action);
            let untried = env.actions(&state);
            self.nodes.push(Node {
                state,
                visits: 0.0,
                total: 0.0,
                children: Vec::new(),
                untried,
                parent: Some(cur),
            });
            let idx = self.nodes.len() - 1;
            self.nodes[cur].children.push((action, idx));
            idx
        };
        // Simulate.
        let reward = env.evaluate(&self.nodes[leaf].state.clone(), rng);
        // Backpropagate.
        let mut node = Some(leaf);
        while let Some(i) = node {
            self.nodes[i].visits += 1.0;
            self.nodes[i].total += reward;
            node = self.nodes[i].parent;
        }
    }

    /// Run `iterations` search iterations.
    pub fn search(&mut self, env: &mut M, iterations: usize, rng: &mut StdRng) {
        for _ in 0..iterations {
            self.iterate(env, rng);
        }
    }

    /// The most-visited action at the root (the standard UCT
    /// recommendation), or `None` when nothing was expanded.
    pub fn best_root_action(&self) -> Option<M::Action> {
        self.nodes[0]
            .children
            .iter()
            .max_by(|a, b| self.nodes[a.1].visits.total_cmp(&self.nodes[b.1].visits))
            .map(|(a, _)| a.clone())
    }

    /// Follow most-visited children from the root to a terminal node,
    /// returning the action sequence (greedy plan extraction).
    pub fn best_path(&self) -> Vec<M::Action> {
        let mut out = Vec::new();
        let mut cur = 0usize;
        while let Some(&(ref a, child)) = self.nodes[cur]
            .children
            .iter()
            .max_by(|a, b| self.nodes[a.1].visits.total_cmp(&self.nodes[b.1].visits))
        {
            out.push(a.clone());
            cur = child;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Pick 3 digits left to right; reward = the number formed. Optimal
    /// play always picks 9.
    struct DigitGame;

    impl Mdp for DigitGame {
        type State = Vec<u8>;
        type Action = u8;

        fn actions(&self, s: &Vec<u8>) -> Vec<u8> {
            if s.len() >= 3 {
                vec![]
            } else {
                (0..10).collect()
            }
        }

        fn step(&self, s: &Vec<u8>, a: &u8) -> Vec<u8> {
            let mut next = s.clone();
            next.push(*a);
            next
        }

        fn evaluate(&mut self, s: &Vec<u8>, rng: &mut StdRng) -> f64 {
            let mut digits = s.clone();
            while digits.len() < 3 {
                digits.push(rng.gen_range(0..10));
            }
            digits.iter().fold(0.0, |acc, &d| acc * 10.0 + d as f64) / 999.0
        }
    }

    #[test]
    fn uct_finds_best_first_digit() {
        let mut env = DigitGame;
        let mut rng = StdRng::seed_from_u64(3);
        let mut uct = Uct::new(&env, vec![], 0.7);
        uct.search(&mut env, 3000, &mut rng);
        assert_eq!(uct.best_root_action(), Some(9));
    }

    #[test]
    fn best_path_reaches_terminal() {
        let mut env = DigitGame;
        let mut rng = StdRng::seed_from_u64(4);
        let mut uct = Uct::new(&env, vec![], 0.7);
        uct.search(&mut env, 5000, &mut rng);
        let path = uct.best_path();
        assert!(path.len() <= 3);
        assert_eq!(path[0], 9);
    }

    #[test]
    fn tree_grows_monotonically() {
        let mut env = DigitGame;
        let mut rng = StdRng::seed_from_u64(5);
        let mut uct = Uct::new(&env, vec![], 1.0);
        assert!(uct.is_empty());
        let mut prev = uct.len();
        for _ in 0..10 {
            uct.iterate(&mut env, &mut rng);
            assert!(uct.len() >= prev);
            prev = uct.len();
        }
        assert!(!uct.is_empty());
    }

    #[test]
    fn terminal_root_is_harmless() {
        let mut env = DigitGame;
        let mut rng = StdRng::seed_from_u64(6);
        let mut uct = Uct::new(&env, vec![9, 9, 9], 0.7);
        uct.search(&mut env, 10, &mut rng);
        assert_eq!(uct.best_root_action(), None);
        assert!(uct.best_path().is_empty());
    }
}
