//! Minimal dense linear algebra: row-major matrices and vector helpers.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = A x` (matrix–vector product).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (yc, &a) in y.iter_mut().zip(self.row(r)) {
                *yc += a * xr;
            }
        }
        y
    }

    /// Rank-1 update `A += alpha * u vᵀ`.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        debug_assert_eq!(u.len(), self.rows);
        debug_assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            let s = alpha * u[r];
            if s == 0.0 {
                continue;
            }
            for (a, &vc) in self.row_mut(r).iter_mut().zip(v) {
                *a += s * vc;
            }
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Solve the square linear system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when `A` is (numerically) singular.
/// Used by ridge regression and QuickSel's mixture-weight fit; systems are
/// small (≤ a few hundred unknowns).
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.rows;
    if a.cols != n || b.len() != n {
        return None;
    }
    for col in 0..n {
        // Pivot.
        let pivot =
            (col..n).max_by(|&i, &j| a.get(i, col).abs().total_cmp(&a.get(j, col).abs()))?;
        if a.get(pivot, col).abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot, c));
                a.set(pivot, c, tmp);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for r in col + 1..n {
            let f = a.get(r, col) / a.get(col, col);
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(r, c) - f * a.get(col, c);
                a.set(r, c, v);
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in col + 1..n {
            s -= a.get(col, c) * x[c];
        }
        x[col] = s / a.get(col, col);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_transpose() {
        let mut a = Matrix::zeros(2, 3);
        a.set(0, 0, 1.0);
        a.set(0, 2, 2.0);
        a.set(1, 1, 3.0);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(a.matvec_t(&[1.0, 2.0]), vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn outer_update() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(a.data, vec![6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn solve_known_system() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_with_pivoting() {
        // Leading zero forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0 / 30.0f64).sqrt();
        assert!(a.data.iter().all(|&v| v.abs() <= bound));
        // Not all identical.
        assert!(a.data.iter().any(|&v| v != a.data[0]));
    }
}
