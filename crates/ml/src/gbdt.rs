//! Gradient-boosted regression trees (XGBoost-style squared-loss boosting,
//! the workhorse of Dutt et al. 2020's lightweight selectivity models).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree::{RegressionTree, TreeConfig};

/// GBDT hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree induction parameters.
    pub tree: TreeConfig,
    /// Seed for any feature subsampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 50,
            learning_rate: 0.2,
            tree: TreeConfig {
                max_depth: 4,
                min_samples_split: 8,
                max_features: None,
            },
            seed: 11,
        }
    }
}

/// A fitted gradient-boosted ensemble for squared loss.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl Gbdt {
    /// Fit with squared loss: each round fits a tree to the residuals.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &GbdtConfig) -> Gbdt {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut pred = vec![base; ys.len()];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            let residuals: Vec<f64> = ys.iter().zip(&pred).map(|(&y, &p)| y - p).collect();
            let tree = RegressionTree::fit(xs, &residuals, &cfg.tree, &mut rng);
            for (p, x) in pred.iter_mut().zip(xs) {
                *p += cfg.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            learning_rate: cfg.learning_rate,
            trees,
        }
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of boosting rounds fitted.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when no trees were fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Total number of tree nodes (model-size metric).
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.num_nodes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_smooth_nonlinear_function() {
        let xs: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::PI * 2.0).sin())
            .collect();
        let model = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| (model.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn boosting_improves_over_single_tree() {
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        let shallow = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                n_trees: 1,
                learning_rate: 1.0,
                ..Default::default()
            },
        );
        let boosted = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        let mse = |m: &Gbdt| {
            xs.iter()
                .zip(&ys)
                .map(|(x, &y)| (m.predict(x) - y).powi(2))
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(mse(&boosted) < mse(&shallow) * 0.5);
    }

    #[test]
    fn constant_target() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 20];
        let model = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        assert!((model.predict(&[3.0]) - 7.0).abs() < 1e-6);
        assert!(model.num_nodes() >= model.len());
    }
}
