//! Recursive neural networks over binary trees: a bottom-up encoder
//! `h(node) = tanh(W · [x_node; h_left; h_right])` with a linear scalar
//! head on the root embedding — the Tree-LSTM-style end-to-end plan
//! encoders of Sun & Li (2019) and RTOS, with the gating simplified to a
//! plain recurrent cell (documented substitution).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::linalg::{dot, Matrix};
use crate::treeconv::FeatTree;

/// TreeRNN hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeRnnConfig {
    /// Per-node input feature dimension.
    pub input_dim: usize,
    /// Hidden (embedding) width.
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl TreeRnnConfig {
    /// Default shape.
    pub fn new(input_dim: usize) -> TreeRnnConfig {
        TreeRnnConfig {
            input_dim,
            hidden: 32,
            learning_rate: 2e-3,
            seed: 19,
        }
    }
}

/// A recursive tree encoder with a scalar head.
pub struct TreeRnn {
    cfg: TreeRnnConfig,
    /// `hidden x (input + 2*hidden)`.
    w: Matrix,
    b: Vec<f64>,
    /// Scalar head on the root embedding.
    head_w: Vec<f64>,
    head_b: f64,
    // Adam state.
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl TreeRnn {
    /// Initialize.
    pub fn new(cfg: TreeRnnConfig) -> TreeRnn {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let w = Matrix::xavier(cfg.hidden, cfg.input_dim + 2 * cfg.hidden, &mut rng);
        let head_w: Vec<f64> = Matrix::xavier(1, cfg.hidden, &mut rng).data;
        let nparams = w.data.len() + cfg.hidden + head_w.len() + 1;
        TreeRnn {
            b: vec![0.0; cfg.hidden],
            head_w,
            head_b: 0.0,
            m: vec![0.0; nparams],
            v: vec![0.0; nparams],
            t: 0,
            w,
            cfg,
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.data.len() + self.b.len() + self.head_w.len() + 1
    }

    /// Bottom-up embeddings of every node (children-first order assumed).
    fn embed_all(&self, tree: &FeatTree) -> Vec<Vec<f64>> {
        let h = self.cfg.hidden;
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(tree.nodes.len());
        for node in &tree.nodes {
            let mut z = vec![0.0; self.cfg.input_dim + 2 * h];
            z[..self.cfg.input_dim].copy_from_slice(&node.feat);
            if let Some(l) = node.left {
                z[self.cfg.input_dim..self.cfg.input_dim + h].copy_from_slice(&out[l]);
            }
            if let Some(r) = node.right {
                z[self.cfg.input_dim + h..].copy_from_slice(&out[r]);
            }
            let mut e = self.w.matvec(&z);
            for (ei, &bi) in e.iter_mut().zip(&self.b) {
                *ei = (*ei + bi).tanh();
            }
            out.push(e);
        }
        out
    }

    /// Root embedding of a tree.
    pub fn embed(&self, tree: &FeatTree) -> Vec<f64> {
        self.embed_all(tree).pop().expect("non-empty tree")
    }

    /// Predicted scalar for a tree.
    pub fn predict(&self, tree: &FeatTree) -> f64 {
        dot(&self.head_w, &self.embed(tree)) + self.head_b
    }

    /// One Adam step of squared-error regression. Returns batch MSE before
    /// the update.
    pub fn train_batch(&mut self, trees: &[&FeatTree], ys: &[f64]) -> f64 {
        assert_eq!(trees.len(), ys.len());
        let h = self.cfg.hidden;
        let d = self.cfg.input_dim;
        let mut dw = vec![0.0; self.w.data.len()];
        let mut db = vec![0.0; h];
        let mut dhw = vec![0.0; h];
        let mut dhb = 0.0;
        let mut loss = 0.0;
        for (tree, &y) in trees.iter().zip(ys) {
            let emb = self.embed_all(tree);
            let root = emb.last().unwrap();
            let pred = dot(&self.head_w, root) + self.head_b;
            let g = 2.0 * (pred - y);
            loss += (pred - y) * (pred - y);
            // Head gradients.
            for (dwi, &ri) in dhw.iter_mut().zip(root) {
                *dwi += g * ri;
            }
            dhb += g;
            // Backprop through the recursion, top-down.
            let n = tree.nodes.len();
            let mut gh: Vec<Vec<f64>> = vec![vec![0.0; h]; n];
            for (gi, &wi) in gh[n - 1].iter_mut().zip(&self.head_w) {
                *gi = g * wi;
            }
            for i in (0..n).rev() {
                // Through tanh.
                let grad: Vec<f64> = gh[i]
                    .iter()
                    .zip(&emb[i])
                    .map(|(&gv, &ev)| gv * (1.0 - ev * ev))
                    .collect();
                if grad.iter().all(|&x| x == 0.0) {
                    continue;
                }
                // Rebuild input z.
                let node = &tree.nodes[i];
                let mut z = vec![0.0; d + 2 * h];
                z[..d].copy_from_slice(&node.feat);
                if let Some(l) = node.left {
                    z[d..d + h].copy_from_slice(&emb[l]);
                }
                if let Some(r) = node.right {
                    z[d + h..].copy_from_slice(&emb[r]);
                }
                for r_i in 0..h {
                    let gr = grad[r_i];
                    if gr == 0.0 {
                        continue;
                    }
                    db[r_i] += gr;
                    let cols = d + 2 * h;
                    for k in 0..cols {
                        dw[r_i * cols + k] += gr * z[k];
                    }
                }
                // Gradients to children embeddings.
                let cols = d + 2 * h;
                if let Some(l) = node.left {
                    for k in 0..h {
                        let mut s = 0.0;
                        for r_i in 0..h {
                            s += grad[r_i] * self.w.data[r_i * cols + d + k];
                        }
                        gh[l][k] += s;
                    }
                }
                if let Some(r) = node.right {
                    for k in 0..h {
                        let mut s = 0.0;
                        for r_i in 0..h {
                            s += grad[r_i] * self.w.data[r_i * cols + d + h + k];
                        }
                        gh[r][k] += s;
                    }
                }
            }
        }
        // Adam over the flattened parameter vector.
        let nb = trees.len().max(1) as f64;
        self.t += 1;
        let lr = self.cfg.learning_rate;
        let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8);
        let corr1 = 1.0 - b1.powi(self.t as i32);
        let corr2 = 1.0 - b2.powi(self.t as i32);
        let update = |idx: usize, param: &mut f64, grad: f64, m: &mut [f64], v: &mut [f64]| {
            let g = grad / nb;
            m[idx] = b1 * m[idx] + (1.0 - b1) * g;
            v[idx] = b2 * v[idx] + (1.0 - b2) * g * g;
            *param -= lr * (m[idx] / corr1) / ((v[idx] / corr2).sqrt() + eps);
        };
        let mut idx = 0usize;
        let (m, v) = (&mut self.m, &mut self.v);
        for (p, g) in self.w.data.iter_mut().zip(&dw) {
            update(idx, p, *g, m, v);
            idx += 1;
        }
        for (p, g) in self.b.iter_mut().zip(&db) {
            update(idx, p, *g, m, v);
            idx += 1;
        }
        for (p, g) in self.head_w.iter_mut().zip(&dhw) {
            update(idx, p, *g, m, v);
            idx += 1;
        }
        update(idx, &mut self.head_b, dhb, m, v);
        loss / nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_tree(vals: &[f64]) -> FeatTree {
        let mut t = FeatTree::new();
        let mut prev = t.leaf(vec![vals[0], 1.0]);
        for &v in &vals[1..] {
            let leaf = t.leaf(vec![v, 1.0]);
            prev = t.internal(vec![0.0, 0.0], prev, leaf);
        }
        t
    }

    #[test]
    fn learns_leaf_sum() {
        let mut net = TreeRnn::new(TreeRnnConfig {
            learning_rate: 5e-3,
            hidden: 16,
            ..TreeRnnConfig::new(2)
        });
        let data: Vec<(FeatTree, f64)> = (0..50)
            .map(|i| {
                let vals: Vec<f64> = (0..2 + i % 3).map(|j| ((i + j) % 4) as f64 / 4.0).collect();
                let y = vals.iter().sum::<f64>() / 3.0;
                (chain_tree(&vals), y)
            })
            .collect();
        let trees: Vec<&FeatTree> = data.iter().map(|(t, _)| t).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        let mut loss = f64::INFINITY;
        for _ in 0..600 {
            loss = net.train_batch(&trees, &ys);
        }
        assert!(loss < 0.01, "treernn loss {loss}");
    }

    #[test]
    fn embeddings_distinguish_structure() {
        let net = TreeRnn::new(TreeRnnConfig::new(2));
        let a = chain_tree(&[0.1, 0.9]);
        let b = chain_tree(&[0.9, 0.1]);
        let ea = net.embed(&a);
        let eb = net.embed(&b);
        assert_eq!(ea.len(), 32);
        assert_ne!(ea, eb);
    }

    #[test]
    fn param_count_matches() {
        let net = TreeRnn::new(TreeRnnConfig::new(3));
        // w: 32 x (3 + 64); b: 32; head: 32 + 1.
        assert_eq!(net.num_params(), 32 * 67 + 32 + 33);
    }
}
