//! Discrete autoregressive density models with progressive sampling —
//! the Naru/NeuroCard family. The joint distribution over binned columns is
//! factorized as `P(x) = Π_i P(x_i | x_<i>)`; each conditional is a small
//! softmax MLP over the one-hot encoding of the prefix, and range queries
//! are answered with Naru's progressive-sampling estimator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mlp::{Activation, Mlp, MlpConfig};

/// Autoregressive model hyper-parameters.
#[derive(Debug, Clone)]
pub struct ArConfig {
    /// Hidden layer width of each conditional network.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Progressive-sampling paths per query.
    pub samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig {
            hidden: 48,
            epochs: 12,
            batch: 64,
            learning_rate: 3e-3,
            samples: 200,
            seed: 23,
        }
    }
}

/// A fitted autoregressive model over discrete columns.
pub struct ArModel {
    domains: Vec<usize>,
    /// Smoothed marginal of the first column.
    marginal0: Vec<f64>,
    /// `nets[i]` predicts column `i+1` from one-hot columns `0..=i`.
    nets: Vec<Mlp>,
    cfg: ArConfig,
}

fn one_hot_prefix(row: &[usize], upto: usize, domains: &[usize]) -> Vec<f64> {
    let dim: usize = domains[..upto].iter().sum();
    let mut x = vec![0.0; dim];
    let mut offset = 0;
    for i in 0..upto {
        x[offset + row[i]] = 1.0;
        offset += domains[i];
    }
    x
}

impl ArModel {
    /// Fit the factorized model by maximum likelihood.
    pub fn fit(rows: &[Vec<usize>], domains: &[usize], cfg: &ArConfig) -> ArModel {
        assert!(!rows.is_empty());
        let d = domains.len();

        // Column 0: smoothed empirical marginal.
        let mut marginal0 = vec![0.5; domains[0]];
        for r in rows {
            marginal0[r[0]] += 1.0;
        }
        let total: f64 = marginal0.iter().sum();
        for m in &mut marginal0 {
            *m /= total;
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut nets = Vec::with_capacity(d.saturating_sub(1));
        for col in 1..d {
            let in_dim: usize = domains[..col].iter().sum();
            let mut net = Mlp::new(MlpConfig {
                learning_rate: cfg.learning_rate,
                activation: Activation::Relu,
                seed: cfg.seed ^ col as u64,
                ..MlpConfig::new(vec![in_dim, cfg.hidden, domains[col]])
            });
            let xs: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| one_hot_prefix(r, col, domains))
                .collect();
            let ys: Vec<usize> = rows.iter().map(|r| r[col]).collect();
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            use rand::seq::SliceRandom;
            for _ in 0..cfg.epochs {
                idx.shuffle(&mut rng);
                for chunk in idx.chunks(cfg.batch) {
                    let bx: Vec<Vec<f64>> = chunk.iter().map(|&i| xs[i].clone()).collect();
                    let by: Vec<usize> = chunk.iter().map(|&i| ys[i]).collect();
                    net.train_softmax_batch(&bx, &by);
                }
            }
            nets.push(net);
        }
        ArModel {
            domains: domains.to_vec(),
            marginal0,
            nets,
            cfg: cfg.clone(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Total trainable parameters (model-size metric).
    pub fn num_params(&self) -> usize {
        self.marginal0.len() + self.nets.iter().map(Mlp::num_params).sum::<usize>()
    }

    /// Conditional distribution of column `col` given the prefix assignment.
    fn conditional(&self, prefix: &[usize], col: usize) -> Vec<f64> {
        if col == 0 {
            return self.marginal0.clone();
        }
        let x = one_hot_prefix(prefix, col, &self.domains);
        self.nets[col - 1].predict_proba(&x)
    }

    /// Progressive-sampling estimate of `P(⋀_i X_i ∈ allowed[i])`.
    pub fn prob(&self, allowed: &[Vec<bool>], rng: &mut StdRng) -> f64 {
        assert_eq!(allowed.len(), self.domains.len());
        let d = self.domains.len();
        let mut total = 0.0;
        let s = self.cfg.samples.max(1);
        for _ in 0..s {
            let mut weight = 1.0;
            let mut assignment = vec![0usize; d];
            for col in 0..d {
                let probs = self.conditional(&assignment, col);
                let mass: f64 = probs
                    .iter()
                    .zip(&allowed[col])
                    .filter(|(_, &a)| a)
                    .map(|(&p, _)| p)
                    .sum();
                if mass <= 0.0 {
                    weight = 0.0;
                    break;
                }
                weight *= mass;
                // Sample the next value from the restricted conditional.
                let mut r = rng.gen_range(0.0..mass);
                let mut chosen = None;
                for (v, (&p, &a)) in probs.iter().zip(&allowed[col]).enumerate() {
                    if !a {
                        continue;
                    }
                    if r < p {
                        chosen = Some(v);
                        break;
                    }
                    r -= p;
                }
                assignment[col] = chosen.unwrap_or_else(|| {
                    // Float round-off: take the last allowed value.
                    allowed[col].iter().rposition(|&a| a).unwrap()
                });
            }
            total += weight;
        }
        total / s as f64
    }

    /// [`ArModel::prob`] with a fresh deterministic RNG.
    pub fn prob_seeded(&self, allowed: &[Vec<bool>], seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        self.prob(allowed, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x1 = x0 deterministically, x2 independent.
    fn data(n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(4);
        let rows = (0..n)
            .map(|_| {
                let a = rng.gen_range(0..4usize);
                vec![a, a, rng.gen_range(0..3usize)]
            })
            .collect();
        (rows, vec![4, 4, 3])
    }

    fn cfg() -> ArConfig {
        ArConfig {
            epochs: 20,
            samples: 300,
            ..Default::default()
        }
    }

    #[test]
    fn full_domain_probability_is_one() {
        let (rows, domains) = data(1500);
        let m = ArModel::fit(&rows, &domains, &cfg());
        let all: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        let p = m.prob_seeded(&all, 1);
        assert!((p - 1.0).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn learns_functional_dependency() {
        let (rows, domains) = data(1500);
        let m = ArModel::fit(&rows, &domains, &cfg());
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![false; d]).collect();
        allowed[0][1] = true;
        allowed[1][1] = true;
        allowed[2] = vec![true; 3];
        let p = m.prob_seeded(&allowed, 2);
        // Truth ≈ 0.25; independence would predict 0.0625.
        assert!(p > 0.15, "p = {p}");
    }

    #[test]
    fn impossible_combination_is_small() {
        let (rows, domains) = data(1500);
        let m = ArModel::fit(&rows, &domains, &cfg());
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![false; d]).collect();
        allowed[0][0] = true;
        allowed[1][3] = true; // never co-occurs with x0 = 0
        allowed[2] = vec![true; 3];
        let p = m.prob_seeded(&allowed, 3);
        assert!(p < 0.05, "p = {p}");
    }

    #[test]
    fn range_query_marginal() {
        let (rows, domains) = data(1500);
        let m = ArModel::fit(&rows, &domains, &cfg());
        // P(x0 in {0, 1}) ≈ 0.5.
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        allowed[0] = vec![true, true, false, false];
        let p = m.prob_seeded(&allowed, 4);
        assert!((p - 0.5).abs() < 0.08, "p = {p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, domains) = data(500);
        let m = ArModel::fit(&rows, &domains, &cfg());
        let all: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        assert_eq!(m.prob_seeded(&all, 9), m.prob_seeded(&all, 9));
    }
}
