//! Chow–Liu tree Bayesian networks over discrete (binned) data, with exact
//! box-probability inference by message passing — the BayesNet [Tzoumas et
//! al.] / BayesCard family of data-driven cardinality estimators.

use std::collections::HashMap;

/// A tree-structured Bayesian network over discrete variables.
#[derive(Debug, Clone)]
pub struct BayesNet {
    domains: Vec<usize>,
    /// Parent of each variable (`None` for the root).
    parents: Vec<Option<usize>>,
    /// Children lists.
    children: Vec<Vec<usize>>,
    /// `cpts[v][p * domain_v + x]` = P(X_v = x | X_parent = p); the root's
    /// table has a single pseudo-parent state.
    cpts: Vec<Vec<f64>>,
    root: usize,
}

/// Pairwise mutual information over discrete columns (`a`, `b` are column
/// indices into `rows`; `da`, `db` their domain sizes). Shared by the
/// Chow–Liu fit and the SPN structure learner's independence tests.
pub fn mutual_information(rows: &[Vec<usize>], a: usize, b: usize, da: usize, db: usize) -> f64 {
    let n = rows.len() as f64;
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut pa = vec![0.0; da];
    let mut pb = vec![0.0; db];
    for r in rows {
        *joint.entry((r[a], r[b])).or_insert(0.0) += 1.0;
        pa[r[a]] += 1.0;
        pb[r[b]] += 1.0;
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c / n;
        let px = pa[x] / n;
        let py = pb[y] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    mi.max(0.0)
}

impl BayesNet {
    /// Fit a Chow–Liu tree: maximum-spanning tree over pairwise mutual
    /// information, then CPTs with Laplace smoothing `alpha`.
    pub fn fit(rows: &[Vec<usize>], domains: &[usize], alpha: f64) -> BayesNet {
        assert!(!rows.is_empty());
        let d = domains.len();
        assert!(rows.iter().all(|r| r.len() == d));

        // Maximum spanning tree over MI (Prim's algorithm).
        let mut in_tree = vec![false; d];
        let mut parents: Vec<Option<usize>> = vec![None; d];
        in_tree[0] = true;
        let mut best_edge: Vec<(f64, usize)> = (0..d)
            .map(|v| {
                if v == 0 {
                    (f64::NEG_INFINITY, 0)
                } else {
                    (mutual_information(rows, 0, v, domains[0], domains[v]), 0)
                }
            })
            .collect();
        for _ in 1..d {
            let v = (0..d)
                .filter(|&v| !in_tree[v])
                .max_by(|&a, &b| best_edge[a].0.total_cmp(&best_edge[b].0))
                .unwrap();
            in_tree[v] = true;
            parents[v] = Some(best_edge[v].1);
            for u in 0..d {
                if !in_tree[u] {
                    let mi = mutual_information(rows, v, u, domains[v], domains[u]);
                    if mi > best_edge[u].0 {
                        best_edge[u] = (mi, v);
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); d];
        for v in 0..d {
            if let Some(p) = parents[v] {
                children[p].push(v);
            }
        }

        // CPTs with Laplace smoothing.
        let mut cpts = Vec::with_capacity(d);
        for v in 0..d {
            let dv = domains[v];
            let dp = parents[v].map_or(1, |p| domains[p]);
            let mut counts = vec![alpha; dp * dv];
            for r in rows {
                let p = parents[v].map_or(0, |pv| r[pv]);
                counts[p * dv + r[v]] += 1.0;
            }
            for p in 0..dp {
                let total: f64 = counts[p * dv..(p + 1) * dv].iter().sum();
                for x in 0..dv {
                    counts[p * dv + x] /= total;
                }
            }
            cpts.push(counts);
        }

        BayesNet {
            domains: domains.to_vec(),
            parents,
            children,
            cpts,
            root: 0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Parent array (testing / inspection).
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// Total CPT entries (model-size metric).
    pub fn num_params(&self) -> usize {
        self.cpts.iter().map(|c| c.len()).sum()
    }

    /// Exact probability that every variable falls in its allowed set:
    /// `P(⋀_v X_v ∈ allowed[v])`, computed by upward message passing in
    /// O(Σ_v |dom(v)|·|dom(parent)|).
    pub fn prob(&self, allowed: &[Vec<bool>]) -> f64 {
        assert_eq!(allowed.len(), self.num_vars());
        // m[v][p] = Σ_{x ∈ allowed(v)} P(x|p) Π_children m_c(x)
        fn message(net: &BayesNet, v: usize, allowed: &[Vec<bool>]) -> Vec<f64> {
            let dv = net.domains[v];
            let dp = net.parents[v].map_or(1, |p| net.domains[p]);
            let child_msgs: Vec<Vec<f64>> = net.children[v]
                .iter()
                .map(|&c| message(net, c, allowed))
                .collect();
            let mut out = vec![0.0; dp];
            for p in 0..dp {
                let mut s = 0.0;
                for x in 0..dv {
                    if !allowed[v][x] {
                        continue;
                    }
                    let mut term = net.cpts[v][p * dv + x];
                    for cm in &child_msgs {
                        term *= cm[x];
                    }
                    s += term;
                }
                out[p] = s;
            }
            out
        }
        message(self, self.root, allowed)[0]
    }

    /// Probability of a full assignment (for likelihood tests).
    pub fn prob_point(&self, point: &[usize]) -> f64 {
        let allowed: Vec<Vec<bool>> = point
            .iter()
            .zip(&self.domains)
            .map(|(&x, &d)| (0..d).map(|i| i == x).collect())
            .collect();
        self.prob(&allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data where x1 = x0 (deterministically) and x2 independent.
    fn dependent_data(n: usize) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|_| {
                let a = rng.gen_range(0..4usize);
                let c = rng.gen_range(0..3usize);
                vec![a, a, c]
            })
            .collect()
    }

    #[test]
    fn chow_liu_links_dependent_pair() {
        let rows = dependent_data(2000);
        let net = BayesNet::fit(&rows, &[4, 4, 3], 0.1);
        // Variable 1 must be attached to variable 0 (max MI), not to 2.
        assert_eq!(net.parents()[1], Some(0));
    }

    #[test]
    fn marginals_sum_to_one() {
        let rows = dependent_data(1000);
        let net = BayesNet::fit(&rows, &[4, 4, 3], 0.1);
        let all = vec![vec![true; 4], vec![true; 4], vec![true; 3]];
        assert!((net.prob(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn captures_functional_dependency() {
        let rows = dependent_data(2000);
        let net = BayesNet::fit(&rows, &[4, 4, 3], 0.01);
        // P(x0 = 1 AND x1 = 1) should be about P(x0 = 1) ≈ 0.25.
        let mut allowed = vec![vec![false; 4], vec![false; 4], vec![true; 3]];
        allowed[0][1] = true;
        allowed[1][1] = true;
        let p = net.prob(&allowed);
        assert!((p - 0.25).abs() < 0.05, "p = {p}");
        // Independence assumption would give 0.0625 — the BN must beat it.
        assert!(p > 0.15);
    }

    #[test]
    fn impossible_combination_near_zero() {
        let rows = dependent_data(2000);
        let net = BayesNet::fit(&rows, &[4, 4, 3], 0.01);
        // x0 = 0 and x1 = 1 never co-occur.
        let mut allowed = vec![vec![false; 4], vec![false; 4], vec![true; 3]];
        allowed[0][0] = true;
        allowed[1][1] = true;
        assert!(net.prob(&allowed) < 0.01);
    }

    #[test]
    fn point_probabilities_match_empirical() {
        let rows = dependent_data(5000);
        let net = BayesNet::fit(&rows, &[4, 4, 3], 0.1);
        let empirical = rows
            .iter()
            .filter(|r| r[0] == 2 && r[1] == 2 && r[2] == 1)
            .count() as f64
            / rows.len() as f64;
        let p = net.prob_point(&[2, 2, 1]);
        assert!((p - empirical).abs() < 0.03, "p {p} vs emp {empirical}");
    }
}
