//! Tabular Q-learning with epsilon-greedy exploration — the learning core
//! of Eddy-RL-style adaptive join processing and the simplest baseline for
//! DQ-style join-order agents.

use std::collections::HashMap;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::Rng;

/// A tabular Q-function over hashable states and actions.
#[derive(Debug, Clone)]
pub struct QTable<S, A>
where
    S: Eq + Hash + Clone,
    A: Eq + Hash + Clone,
{
    q: HashMap<(S, A), f64>,
    /// Learning rate.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
}

impl<S, A> QTable<S, A>
where
    S: Eq + Hash + Clone,
    A: Eq + Hash + Clone,
{
    /// New table with learning rate `alpha` and discount `gamma`.
    pub fn new(alpha: f64, gamma: f64) -> QTable<S, A> {
        QTable {
            q: HashMap::new(),
            alpha,
            gamma,
        }
    }

    /// Current Q-value (0 for unseen pairs).
    pub fn get(&self, s: &S, a: &A) -> f64 {
        self.q.get(&(s.clone(), a.clone())).copied().unwrap_or(0.0)
    }

    /// Max Q over the given actions in state `s` (0 when empty).
    pub fn max_q(&self, s: &S, actions: &[A]) -> f64 {
        if actions.is_empty() {
            return 0.0;
        }
        actions
            .iter()
            .map(|a| self.get(s, a))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Greedy action (ties broken by first occurrence); `None` when the
    /// action list is empty.
    pub fn best_action(&self, s: &S, actions: &[A]) -> Option<A> {
        actions
            .iter()
            .max_by(|a, b| self.get(s, a).total_cmp(&self.get(s, b)))
            .cloned()
    }

    /// Epsilon-greedy action selection.
    pub fn epsilon_greedy(
        &self,
        s: &S,
        actions: &[A],
        epsilon: f64,
        rng: &mut StdRng,
    ) -> Option<A> {
        if actions.is_empty() {
            return None;
        }
        if rng.gen_bool(epsilon.clamp(0.0, 1.0)) {
            Some(actions[rng.gen_range(0..actions.len())].clone())
        } else {
            self.best_action(s, actions)
        }
    }

    /// One Q-learning backup:
    /// `Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a))`.
    /// `next_actions` empty means `s'` is terminal.
    pub fn update(&mut self, s: S, a: A, reward: f64, next: &S, next_actions: &[A]) {
        let target = reward
            + if next_actions.is_empty() {
                0.0
            } else {
                self.gamma * self.max_q(next, next_actions)
            };
        let entry = self.q.entry((s, a)).or_insert(0.0);
        *entry += self.alpha * (target - *entry);
    }

    /// Number of stored state–action values.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A 5-state corridor: move right (+1) to reach the goal at state 4;
    /// moving left (-1) wastes time. Reward 10 at the goal, -1 per step.
    fn corridor_episode(q: &mut QTable<i32, i32>, rng: &mut StdRng, eps: f64) {
        let mut s = 0i32;
        for _ in 0..50 {
            let actions = [-1, 1];
            let a = q.epsilon_greedy(&s, &actions, eps, rng).unwrap();
            let next = (s + a).clamp(0, 4);
            let (r, next_actions): (f64, &[i32]) = if next == 4 {
                (10.0, &[])
            } else {
                (-1.0, &actions)
            };
            q.update(s, a, r, &next, next_actions);
            if next == 4 {
                break;
            }
            s = next;
        }
    }

    #[test]
    fn learns_corridor_policy() {
        let mut q = QTable::new(0.3, 0.95);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            corridor_episode(&mut q, &mut rng, 0.2);
        }
        // Greedy policy must move right from every non-terminal state.
        for s in 0..4 {
            assert_eq!(q.best_action(&s, &[-1, 1]), Some(1), "state {s}");
        }
    }

    #[test]
    fn terminal_update_ignores_future() {
        let mut q = QTable::new(1.0, 0.9);
        q.update(0, 1, 5.0, &1, &[]);
        assert_eq!(q.get(&0, &1), 5.0);
    }

    #[test]
    fn unseen_pairs_default_zero() {
        let q: QTable<u8, u8> = QTable::new(0.1, 0.9);
        assert_eq!(q.get(&0, &0), 0.0);
        assert!(q.is_empty());
        assert_eq!(q.best_action(&0, &[]), None);
    }

    #[test]
    fn epsilon_one_explores() {
        let q: QTable<u8, u8> = QTable::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(q.epsilon_greedy(&0, &[0, 1, 2], 1.0, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
