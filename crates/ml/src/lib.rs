//! # lqo-ml
//!
//! A from-scratch ML substrate for the `learned-qo` framework. The offline
//! build environment has no ML crates, and the survey's methods are defined
//! by their model *structure*, so this crate implements each family
//! directly:
//!
//! * [`mlp`] — dense multi-layer perceptrons with SGD/Adam, regression and
//!   softmax heads (backbone of MSCN-, Naru- and DQ-style models);
//! * [`treeconv`] — tree convolution with dynamic pooling (Neo/Bao-style
//!   plan value networks, Marcus & Papaemmanouil cost models);
//! * [`tree`] and [`gbdt`] — CART regression trees, random forests and
//!   gradient-boosted ensembles (Dutt et al.-style query-driven
//!   estimators);
//! * [`linreg`] — ordinary/ridge least squares (the earliest query-driven
//!   estimators, and QuickSel's mixture weight fit);
//! * [`bayesnet`] — Chow–Liu tree Bayesian networks with exact message
//!   passing (BayesNet/BayesCard-style data-driven estimators);
//! * [`spn`] — sum-product networks learned by recursive row/column
//!   splitting (DeepDB/FLAT-style);
//! * [`autoregressive`] — discrete autoregressive models with progressive
//!   sampling (Naru/NeuroCard-style);
//! * [`kde`] — Gaussian kernel density estimators (Heimel/Kiefer-style);
//! * [`gmm`] — Gaussian mixtures fit by EM;
//! * [`kmeans`] — k-means (SPN row splits, Eraser's plan clustering);
//! * [`qlearn`] — tabular Q-learning (Eddy-RL style);
//! * [`mcts`] — UCT Monte-Carlo tree search (SkinnerDB style);
//! * [`scaler`], [`metrics`], [`linalg`] — shared utilities.

#![warn(missing_docs)]
// Indexed loops over matrix rows/columns are the clearest way to write
// the hand-rolled numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

pub mod autoregressive;
pub mod bayesnet;
pub mod gbdt;
pub mod gmm;
pub mod kde;
pub mod kmeans;
pub mod linalg;
pub mod linreg;
pub mod mcts;
pub mod metrics;
pub mod mlp;
pub mod mscn;
pub mod qlearn;
pub mod scaler;
pub mod spn;
pub mod tree;
pub mod treeconv;
pub mod treernn;

pub use linalg::Matrix;
pub use mlp::{Activation, Mlp, MlpConfig};
pub use scaler::StandardScaler;
