//! Feature scaling.

/// Per-feature standardization to zero mean and unit variance.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fit on rows. Features with zero variance get std 1 (pass-through).
    pub fn fit(xs: &[Vec<f64>]) -> StandardScaler {
        assert!(!xs.is_empty());
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for x in xs {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for x in xs {
            for ((v, &xi), &m) in var.iter_mut().zip(x).zip(&mean) {
                *v += (xi - m) * (xi - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Scale one row.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Scale all rows.
    pub fn transform_all(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Undo scaling of one row.
    pub fn inverse(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| v * s + m)
            .collect()
    }
}

/// Scale a scalar target into `log1p` space and back — the standard label
/// transform for cardinalities and latencies, whose distributions span
/// many orders of magnitude.
pub mod log_label {
    /// `y -> ln(1 + y)`.
    pub fn encode(y: f64) -> f64 {
        (1.0 + y.max(0.0)).ln()
    }

    /// Inverse of [`encode`].
    pub fn decode(z: f64) -> f64 {
        (z.exp() - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 5.0]).collect();
        let s = StandardScaler::fit(&xs);
        let t = s.transform_all(&xs);
        let mean0: f64 = t.iter().map(|x| x[0]).sum::<f64>() / 100.0;
        assert!(mean0.abs() < 1e-9);
        let var0: f64 = t.iter().map(|x| x[0] * x[0]).sum::<f64>() / 100.0;
        assert!((var0 - 1.0).abs() < 1e-9);
        // Constant feature passes through shifted to 0.
        assert!(t.iter().all(|x| x[1].abs() < 1e-9));
    }

    #[test]
    fn inverse_roundtrip() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 8.0], vec![-1.0, 0.0]];
        let s = StandardScaler::fit(&xs);
        for x in &xs {
            let back = s.inverse(&s.transform(x));
            for (a, b) in back.iter().zip(x) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn log_label_roundtrip_and_clamping() {
        for y in [0.0, 1.0, 999.5, 1e12] {
            let z = log_label::encode(y);
            assert!((log_label::decode(z) - y).abs() / (y + 1.0) < 1e-9);
        }
        assert_eq!(log_label::encode(-5.0), 0.0);
        assert_eq!(log_label::decode(-10.0), 0.0);
    }
}
