//! Ordinary / ridge least squares via the normal equations.

use crate::linalg::{solve, Matrix};

/// A fitted linear model `y = wᵀx + b`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearRegression {
    /// Fit with L2 regularization strength `lambda` (0 = OLS). Returns
    /// `None` when the (regularized) normal equations are singular.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<LinearRegression> {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return None;
        }
        let d = xs[0].len() + 1; // +1 for bias
        let mut xtx = Matrix::zeros(d, d);
        let mut xty = vec![0.0; d];
        for (x, &y) in xs.iter().zip(ys) {
            // Augmented feature vector [x, 1].
            for i in 0..d {
                let xi = if i < d - 1 { x[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in 0..d {
                    let xj = if j < d - 1 { x[j] } else { 1.0 };
                    xtx.data[i * d + j] += xi * xj;
                }
            }
        }
        // Ridge term (do not regularize the bias).
        for i in 0..d - 1 {
            xtx.data[i * d + i] += lambda;
        }
        let w = solve(xtx, xty)?;
        let bias = w[d - 1];
        Some(LinearRegression {
            weights: w[..d - 1].to_vec(),
            bias,
        })
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        crate::linalg::dot(&self.weights, x) + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 3.0 * x[1] + 5.0).collect();
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 3.0).abs() < 1e-6);
        assert!((m.bias - 5.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Second feature duplicates the first: OLS is singular, ridge not.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 4.0 * i as f64).collect();
        assert!(LinearRegression::fit(&xs, &ys, 0.0).is_none());
        let m = LinearRegression::fit(&xs, &ys, 1e-3).unwrap();
        assert!((m.predict(&[10.0, 10.0]) - 40.0).abs() < 0.5);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(LinearRegression::fit(&[], &[], 0.0).is_none());
    }
}
