//! Tree convolution networks (Mou et al. 2016), as used by Neo, Bao and
//! plan-structured cost models: per-node convolution over (node, left
//! child, right child) feature triples, stacked, followed by dynamic
//! max+mean pooling and a dense head.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::linalg::Matrix;
use crate::mlp::{Activation, Mlp, MlpConfig};

/// A node of a featurized binary tree. Children are indices into the
/// owning [`FeatTree`]'s node vector and must be smaller than the node's
/// own index (build trees bottom-up).
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Node feature vector (fixed dimension across the tree).
    pub feat: Vec<f64>,
    /// Left child index.
    pub left: Option<usize>,
    /// Right child index.
    pub right: Option<usize>,
}

/// A featurized binary tree in bottom-up (children-first) node order.
#[derive(Debug, Clone, Default)]
pub struct FeatTree {
    /// Nodes; the last node is the root.
    pub nodes: Vec<TreeNode>,
}

impl FeatTree {
    /// Empty tree.
    pub fn new() -> FeatTree {
        FeatTree::default()
    }

    /// Add a leaf, returning its index.
    pub fn leaf(&mut self, feat: Vec<f64>) -> usize {
        self.nodes.push(TreeNode {
            feat,
            left: None,
            right: None,
        });
        self.nodes.len() - 1
    }

    /// Add an internal node over two existing children, returning its index.
    pub fn internal(&mut self, feat: Vec<f64>, left: usize, right: usize) -> usize {
        assert!(left < self.nodes.len() && right < self.nodes.len());
        self.nodes.push(TreeNode {
            feat,
            left: Some(left),
            right: Some(right),
        });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Tree-convolution hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConvConfig {
    /// Per-node input feature dimension.
    pub input_dim: usize,
    /// Output channels of each convolution layer.
    pub channels: Vec<usize>,
    /// Hidden sizes of the dense head (input is `2 * channels.last()`).
    pub head_hidden: Vec<usize>,
    /// Adam learning rate (shared by conv layers and head).
    pub learning_rate: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl TreeConvConfig {
    /// Default shape for plan-value networks.
    pub fn new(input_dim: usize) -> TreeConvConfig {
        TreeConvConfig {
            input_dim,
            channels: vec![32, 16],
            head_hidden: vec![32],
            learning_rate: 1e-3,
            seed: 5,
        }
    }
}

struct ConvLayer {
    w: Matrix, // ch_out x 3*ch_in
    b: Vec<f64>,
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

/// A tree convolution network with a scalar dense head.
pub struct TreeConvNet {
    cfg: TreeConvConfig,
    convs: Vec<ConvLayer>,
    head: Mlp,
    t: u64,
}

struct Forward {
    /// `h[l][i]` = activation of node i after conv layer l (h\[0\] = inputs).
    h: Vec<Vec<Vec<f64>>>,
    pooled: Vec<f64>,
    /// Argmax node per channel of the max-pool half.
    argmax: Vec<usize>,
}

fn adam_update(params: &mut [f64], grads: &[f64], m: &mut [f64], v: &mut [f64], t: u64, lr: f64) {
    let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8);
    let corr1 = 1.0 - b1.powi(t as i32);
    let corr2 = 1.0 - b2.powi(t as i32);
    for i in 0..params.len() {
        let g = grads[i];
        m[i] = b1 * m[i] + (1.0 - b1) * g;
        v[i] = b2 * v[i] + (1.0 - b2) * g * g;
        params[i] -= lr * (m[i] / corr1) / ((v[i] / corr2).sqrt() + eps);
    }
}

impl TreeConvNet {
    /// Initialize the network.
    pub fn new(cfg: TreeConvConfig) -> TreeConvNet {
        assert!(!cfg.channels.is_empty());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut convs = Vec::new();
        let mut ch_in = cfg.input_dim;
        for &ch_out in &cfg.channels {
            let w = Matrix::xavier(ch_out, 3 * ch_in, &mut rng);
            convs.push(ConvLayer {
                m_w: vec![0.0; w.data.len()],
                v_w: vec![0.0; w.data.len()],
                m_b: vec![0.0; ch_out],
                v_b: vec![0.0; ch_out],
                w,
                b: vec![0.0; ch_out],
            });
            ch_in = ch_out;
        }
        let last = *cfg.channels.last().unwrap();
        let mut head_layers = vec![2 * last];
        head_layers.extend_from_slice(&cfg.head_hidden);
        head_layers.push(1);
        let head = Mlp::new(MlpConfig {
            learning_rate: cfg.learning_rate,
            activation: Activation::Relu,
            ..MlpConfig::new(head_layers)
        });
        TreeConvNet {
            cfg,
            convs,
            head,
            t: 0,
        }
    }

    /// Number of trainable parameters (model-size metric).
    pub fn num_params(&self) -> usize {
        self.convs
            .iter()
            .map(|c| c.w.data.len() + c.b.len())
            .sum::<usize>()
            + self.head.num_params()
    }

    fn forward(&self, tree: &FeatTree) -> Forward {
        let n = tree.nodes.len();
        assert!(n > 0, "cannot evaluate an empty tree");
        let mut h: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.convs.len() + 1);
        h.push(tree.nodes.iter().map(|nd| nd.feat.clone()).collect());
        for (l, conv) in self.convs.iter().enumerate() {
            let ch_in = conv.w.cols / 3;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut z = vec![0.0; 3 * ch_in];
                z[..ch_in].copy_from_slice(&h[l][i]);
                if let Some(li) = tree.nodes[i].left {
                    z[ch_in..2 * ch_in].copy_from_slice(&h[l][li]);
                }
                if let Some(ri) = tree.nodes[i].right {
                    z[2 * ch_in..].copy_from_slice(&h[l][ri]);
                }
                let mut y = conv.w.matvec(&z);
                for (yi, &bi) in y.iter_mut().zip(&conv.b) {
                    *yi = (*yi + bi).max(0.0); // ReLU
                }
                out.push(y);
            }
            h.push(out);
        }
        // Dynamic pooling: concat(max, mean) over nodes of the last layer.
        let last = h.last().unwrap();
        let ch = last[0].len();
        let mut maxv = vec![f64::NEG_INFINITY; ch];
        let mut argmax = vec![0usize; ch];
        let mut meanv = vec![0.0; ch];
        for (i, node) in last.iter().enumerate() {
            for c in 0..ch {
                if node[c] > maxv[c] {
                    maxv[c] = node[c];
                    argmax[c] = i;
                }
                meanv[c] += node[c];
            }
        }
        for m in &mut meanv {
            *m /= n as f64;
        }
        let mut pooled = maxv;
        pooled.extend(meanv);
        Forward { h, pooled, argmax }
    }

    /// Predicted scalar value of a tree.
    pub fn predict(&self, tree: &FeatTree) -> f64 {
        self.head.predict_scalar(&self.forward(tree).pooled)
    }

    /// Backprop `grad_out` (dL/d score) through head and conv layers,
    /// accumulating conv-weight gradients into `dws`/`dbs` and head
    /// gradients into `head_buf`.
    fn backward(
        &self,
        tree: &FeatTree,
        fwd: &Forward,
        grad_out: f64,
        dws: &mut [Vec<f64>],
        dbs: &mut [Vec<f64>],
        head_buf: &mut crate::mlp::GradBuf,
    ) {
        let head_cache = self.head.forward_cache(&fwd.pooled);
        let grad_pooled = self.head.backward(&head_cache, vec![grad_out], head_buf);
        Mlp::bump_count(head_buf);

        let n = tree.nodes.len();
        let nlayers = self.convs.len();
        let ch = fwd.h[nlayers][0].len();
        // Gradient wrt the last conv layer's node activations.
        let mut gh: Vec<Vec<f64>> = vec![vec![0.0; ch]; n];
        for c in 0..ch {
            gh[fwd.argmax[c]][c] += grad_pooled[c]; // max half
        }
        for node in gh.iter_mut() {
            for c in 0..ch {
                node[c] += grad_pooled[ch + c] / n as f64; // mean half
            }
        }
        // Conv layers, top down.
        for l in (0..nlayers).rev() {
            let conv = &self.convs[l];
            let ch_in = conv.w.cols / 3;
            let ch_out = conv.w.rows;
            let mut gh_prev: Vec<Vec<f64>> = vec![vec![0.0; ch_in]; n];
            for i in 0..n {
                // Through ReLU: activation > 0.
                let g: Vec<f64> = fwd.h[l + 1][i]
                    .iter()
                    .zip(&gh[i])
                    .map(|(&y, &gy)| if y > 0.0 { gy } else { 0.0 })
                    .collect();
                if g.iter().all(|&x| x == 0.0) {
                    continue;
                }
                // Rebuild the input z of this node.
                let mut z = vec![0.0; 3 * ch_in];
                z[..ch_in].copy_from_slice(&fwd.h[l][i]);
                if let Some(li) = tree.nodes[i].left {
                    z[ch_in..2 * ch_in].copy_from_slice(&fwd.h[l][li]);
                }
                if let Some(ri) = tree.nodes[i].right {
                    z[2 * ch_in..].copy_from_slice(&fwd.h[l][ri]);
                }
                // dW += g ⊗ z; db += g; dz = Wᵀ g.
                for r in 0..ch_out {
                    let gr = g[r];
                    if gr == 0.0 {
                        continue;
                    }
                    dbs[l][r] += gr;
                    let drow = &mut dws[l][r * conv.w.cols..(r + 1) * conv.w.cols];
                    for k in 0..conv.w.cols {
                        drow[k] += gr * z[k];
                    }
                }
                // dz distribution to self / left / right in the layer below.
                let mut dz = vec![0.0; 3 * ch_in];
                for r in 0..ch_out {
                    let gr = g[r];
                    if gr == 0.0 {
                        continue;
                    }
                    let row = &conv.w.data[r * conv.w.cols..(r + 1) * conv.w.cols];
                    for k in 0..3 * ch_in {
                        dz[k] += gr * row[k];
                    }
                }
                for c in 0..ch_in {
                    gh_prev[i][c] += dz[c];
                }
                if let Some(li) = tree.nodes[i].left {
                    for c in 0..ch_in {
                        gh_prev[li][c] += dz[ch_in + c];
                    }
                }
                if let Some(ri) = tree.nodes[i].right {
                    for c in 0..ch_in {
                        gh_prev[ri][c] += dz[2 * ch_in + c];
                    }
                }
            }
            gh = gh_prev;
        }
    }

    fn apply_grads(
        &mut self,
        dws: Vec<Vec<f64>>,
        dbs: Vec<Vec<f64>>,
        head_buf: crate::mlp::GradBuf,
        batch: usize,
    ) {
        self.t += 1;
        let scale = 1.0 / batch.max(1) as f64;
        let lr = self.cfg.learning_rate;
        for (l, conv) in self.convs.iter_mut().enumerate() {
            let gw: Vec<f64> = dws[l].iter().map(|g| g * scale).collect();
            adam_update(
                &mut conv.w.data,
                &gw,
                &mut conv.m_w,
                &mut conv.v_w,
                self.t,
                lr,
            );
            let gb: Vec<f64> = dbs[l].iter().map(|g| g * scale).collect();
            adam_update(&mut conv.b, &gb, &mut conv.m_b, &mut conv.v_b, self.t, lr);
        }
        self.head.step(head_buf);
    }

    /// One Adam step of squared-error regression on a batch of trees.
    /// Returns the batch MSE before the update.
    pub fn train_batch(&mut self, trees: &[&FeatTree], ys: &[f64]) -> f64 {
        assert_eq!(trees.len(), ys.len());
        let mut dws: Vec<Vec<f64>> = self
            .convs
            .iter()
            .map(|c| vec![0.0; c.w.data.len()])
            .collect();
        let mut dbs: Vec<Vec<f64>> = self.convs.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut head_buf = self.head.zero_grads();
        let mut loss = 0.0;
        for (tree, &y) in trees.iter().zip(ys) {
            let fwd = self.forward(tree);
            let pred = self.head.predict_scalar(&fwd.pooled);
            loss += (pred - y) * (pred - y);
            self.backward(
                tree,
                &fwd,
                2.0 * (pred - y),
                &mut dws,
                &mut dbs,
                &mut head_buf,
            );
        }
        let n = trees.len().max(1);
        self.apply_grads(dws, dbs, head_buf, n);
        loss / n as f64
    }

    /// One Adam step of pairwise logistic ranking: `y = +1` when `a`
    /// should score higher than `b`. Returns mean logistic loss.
    pub fn train_pairwise_batch(&mut self, pairs: &[(&FeatTree, &FeatTree, f64)]) -> f64 {
        let mut dws: Vec<Vec<f64>> = self
            .convs
            .iter()
            .map(|c| vec![0.0; c.w.data.len()])
            .collect();
        let mut dbs: Vec<Vec<f64>> = self.convs.iter().map(|c| vec![0.0; c.b.len()]).collect();
        let mut head_buf = self.head.zero_grads();
        let mut loss = 0.0;
        for (a, b, y) in pairs {
            let fa = self.forward(a);
            let fb = self.forward(b);
            let sa = self.head.predict_scalar(&fa.pooled);
            let sb = self.head.predict_scalar(&fb.pooled);
            let margin = y * (sa - sb);
            loss += (1.0 + (-margin).exp()).ln();
            let g = -y / (1.0 + margin.exp());
            self.backward(a, &fa, g, &mut dws, &mut dbs, &mut head_buf);
            self.backward(b, &fb, -g, &mut dws, &mut dbs, &mut head_buf);
        }
        let n = pairs.len().max(1);
        self.apply_grads(dws, dbs, head_buf, 2 * n);
        loss / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree whose value is the sum of leaf features: left-deep chains of
    /// varying depth.
    fn chain_tree(leaf_vals: &[f64]) -> FeatTree {
        let mut t = FeatTree::new();
        let mut prev = t.leaf(vec![leaf_vals[0], 1.0]);
        for &v in &leaf_vals[1..] {
            let leaf = t.leaf(vec![v, 1.0]);
            prev = t.internal(vec![0.0, 0.0], prev, leaf);
        }
        t
    }

    #[test]
    fn builder_orders_children_first() {
        let t = chain_tree(&[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 5);
        for (i, n) in t.nodes.iter().enumerate() {
            if let (Some(l), Some(r)) = (n.left, n.right) {
                assert!(l < i && r < i);
            }
        }
    }

    #[test]
    fn learns_sum_of_leaves() {
        let mut net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 3e-3,
            channels: vec![16],
            head_hidden: vec![16],
            ..TreeConvConfig::new(2)
        });
        // Trees of varying depth whose target is the (scaled) leaf sum.
        let data: Vec<(FeatTree, f64)> = (0..60)
            .map(|i| {
                let vals: Vec<f64> = (0..2 + i % 4).map(|j| ((i + j) % 5) as f64 / 5.0).collect();
                let target = vals.iter().sum::<f64>() / 4.0;
                (chain_tree(&vals), target)
            })
            .collect();
        let trees: Vec<&FeatTree> = data.iter().map(|(t, _)| t).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        let mut loss = f64::INFINITY;
        for _ in 0..400 {
            loss = net.train_batch(&trees, &ys);
        }
        assert!(loss < 0.01, "tree-conv loss {loss}");
    }

    #[test]
    fn pairwise_ranking_on_trees() {
        let mut net = TreeConvNet::new(TreeConvConfig {
            learning_rate: 5e-3,
            channels: vec![8],
            head_hidden: vec![8],
            ..TreeConvConfig::new(2)
        });
        // Bigger leaf value should rank higher.
        let lo = chain_tree(&[0.1, 0.1]);
        let hi = chain_tree(&[0.9, 0.9]);
        let pairs = vec![(&hi, &lo, 1.0)];
        for _ in 0..200 {
            net.train_pairwise_batch(&pairs);
        }
        assert!(net.predict(&hi) > net.predict(&lo));
    }

    #[test]
    fn handles_single_leaf_tree() {
        let net = TreeConvNet::new(TreeConvConfig::new(2));
        let mut t = FeatTree::new();
        t.leaf(vec![0.5, 0.5]);
        let v = net.predict(&t);
        assert!(v.is_finite());
    }

    #[test]
    fn param_count_positive() {
        let net = TreeConvNet::new(TreeConvConfig::new(4));
        assert!(net.num_params() > 100);
    }
}
