//! CART regression trees (variance-reduction splits).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Hyper-parameters for regression-tree induction.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of candidate features per split (`None` = all); used by
    /// random forests.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 8,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit on rows `xs` (all of equal length) and targets `ys`. `rng` is
    /// used only when `max_features` subsamples candidates.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &TreeConfig, rng: &mut StdRng) -> RegressionTree {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit a tree on no data");
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut nodes = Vec::new();
        build(xs, ys, &idx, cfg, 0, &mut nodes, rng);
        RegressionTree { nodes }
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (model-size metric).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn d(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        d(&self.nodes, 0)
    }
}

fn mean(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len().max(1) as f64
}

/// Returns the index of the created node.
fn build(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    cfg: &TreeConfig,
    depth: usize,
    nodes: &mut Vec<Node>,
    rng: &mut StdRng,
) -> usize {
    let node_mean = mean(ys, idx);
    if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        nodes.push(Node::Leaf { value: node_mean });
        return nodes.len() - 1;
    }
    let nfeat = xs[0].len();
    let mut feats: Vec<usize> = (0..nfeat).collect();
    if let Some(k) = cfg.max_features {
        feats.shuffle(rng);
        feats.truncate(k.max(1));
    }

    // Best split by weighted variance (sum of squared errors) reduction.
    let total_sse: f64 = idx.iter().map(|&i| (ys[i] - node_mean).powi(2)).sum();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    for &f in &feats {
        let mut vals: Vec<(f64, f64)> = idx.iter().map(|&i| (xs[i][f], ys[i])).collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Prefix sums for O(n) split evaluation.
        let n = vals.len();
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let total_sum: f64 = vals.iter().map(|v| v.1).sum();
        let total_sumsq: f64 = vals.iter().map(|v| v.1 * v.1).sum();
        for k in 0..n - 1 {
            sum += vals[k].1;
            sumsq += vals[k].1 * vals[k].1;
            if vals[k].0 == vals[k + 1].0 {
                continue; // cannot split between equal values
            }
            let nl = (k + 1) as f64;
            let nr = (n - k - 1) as f64;
            let sse_l = sumsq - sum * sum / nl;
            let sse_r = (total_sumsq - sumsq) - (total_sum - sum).powi(2) / nr;
            let sse = sse_l + sse_r;
            if best.as_ref().is_none_or(|b| sse < b.2) {
                best = Some((f, (vals[k].0 + vals[k + 1].0) / 2.0, sse));
            }
        }
    }
    let Some((feature, threshold, sse)) = best else {
        nodes.push(Node::Leaf { value: node_mean });
        return nodes.len() - 1;
    };
    if sse >= total_sse - 1e-12 {
        // No reduction: stop.
        nodes.push(Node::Leaf { value: node_mean });
        return nodes.len() - 1;
    }
    let (lidx, ridx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| xs[i][feature] <= threshold);
    // Reserve this node's slot, then build children.
    let slot = nodes.len();
    nodes.push(Node::Leaf { value: node_mean });
    let left = build(xs, ys, &lidx, cfg, depth + 1, nodes, rng);
    let right = build(xs, ys, &ridx, cfg, depth + 1, nodes, rng);
    nodes[slot] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

/// A bagged random forest of regression trees ("tree-based ensembles",
/// Dutt et al. 2019).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit `n_trees` trees on bootstrap samples with feature subsampling.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        n_trees: usize,
        cfg: &TreeConfig,
        rng: &mut StdRng,
    ) -> RandomForest {
        use rand::Rng;
        let n = xs.len();
        let nfeat = xs[0].len();
        let cfg = TreeConfig {
            max_features: cfg
                .max_features
                .or(Some(((nfeat as f64).sqrt().ceil() as usize).max(1))),
            ..cfg.clone()
        };
        let trees = (0..n_trees)
            .map(|_| {
                let bidx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let bxs: Vec<Vec<f64>> = bidx.iter().map(|&i| xs[i].clone()).collect();
                let bys: Vec<f64> = bidx.iter().map(|&i| ys[i]).collect();
                RegressionTree::fit(&bxs, &bys, &cfg, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over the ensemble.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len().max(1) as f64
    }

    /// Per-tree predictions (drives Fauce-style uncertainty estimates).
    pub fn predict_all(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(x)).collect()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn tree_learns_step_function() {
        let (xs, ys) = step_data();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        assert!((t.predict(&[0.2]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[0.8]) - 5.0).abs() < 1e-9);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn constant_target_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 50];
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[17.0]), 3.0);
    }

    #[test]
    fn depth_limit_respected() {
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            &TreeConfig {
                max_depth: 3,
                min_samples_split: 2,
                max_features: None,
            },
            &mut rng(),
        );
        assert!(t.depth() <= 3);
    }

    #[test]
    fn two_feature_interaction() {
        // Target depends on the second feature only; the tree must find it.
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 13) as f64, (i % 2) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[1] * 10.0).collect();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        assert!((t.predict(&[6.0, 0.0]) - 0.0).abs() < 1e-6);
        assert!((t.predict(&[6.0, 1.0]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn forest_reduces_to_reasonable_predictions() {
        let (xs, ys) = step_data();
        let f = RandomForest::fit(&xs, &ys, 20, &TreeConfig::default(), &mut rng());
        assert_eq!(f.len(), 20);
        assert!((f.predict(&[0.1]) - 1.0).abs() < 0.8);
        assert!((f.predict(&[0.9]) - 5.0).abs() < 0.8);
        assert_eq!(f.predict_all(&[0.1]).len(), 20);
    }
}
