//! One-dimensional Gaussian mixtures fit by EM, plus a normal-CDF helper
//! shared with the KDE module.

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    // The erf polynomial can overshoot ±1 by ~1e-7 for near-degenerate
    // z; clamp so mixture CDFs stay inside [0, 1].
    (0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))).clamp(0.0, 1.0)
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A 1-D Gaussian mixture model.
#[derive(Debug, Clone)]
pub struct Gmm1d {
    /// Component weights (sum to 1).
    pub weights: Vec<f64>,
    /// Component means.
    pub means: Vec<f64>,
    /// Component standard deviations (floored at a small epsilon).
    pub stds: Vec<f64>,
}

impl Gmm1d {
    /// Fit `k` components with EM for `iters` iterations. Fitting is
    /// deterministic (`_seed` is kept for API stability): means start at
    /// spread quantiles of the data rather than random draws, which can
    /// land inside one mode and collapse EM onto the symmetric saddle at
    /// the global mean.
    pub fn fit(values: &[f64], k: usize, iters: usize, _seed: u64) -> Gmm1d {
        assert!(!values.is_empty());
        let k = k.clamp(1, values.len());
        let n = values.len();

        // Quantile-spread initialization, shared variance.
        let global_mean = values.iter().sum::<f64>() / n as f64;
        let global_var = values
            .iter()
            .map(|v| (v - global_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut means: Vec<f64> = (0..k)
            .map(|c| sorted[(((c as f64 + 0.5) / k as f64) * n as f64) as usize % n])
            .collect();
        let mut stds = vec![(global_var.sqrt()).max(1e-6); k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![vec![0.0; k]; n];
        for _ in 0..iters {
            // E-step.
            for (i, &v) in values.iter().enumerate() {
                let mut total = 0.0;
                for c in 0..k {
                    let z = (v - means[c]) / stds[c];
                    let pdf =
                        (-0.5 * z * z).exp() / (stds[c] * (2.0 * std::f64::consts::PI).sqrt());
                    resp[i][c] = weights[c] * pdf;
                    total += resp[i][c];
                }
                if total <= 1e-300 {
                    for c in 0..k {
                        resp[i][c] = 1.0 / k as f64;
                    }
                } else {
                    for c in 0..k {
                        resp[i][c] /= total;
                    }
                }
            }
            // M-step.
            for c in 0..k {
                let rc: f64 = resp.iter().map(|r| r[c]).sum();
                if rc <= 1e-12 {
                    continue;
                }
                weights[c] = rc / n as f64;
                means[c] = values
                    .iter()
                    .zip(&resp)
                    .map(|(&v, r)| r[c] * v)
                    .sum::<f64>()
                    / rc;
                let var = values
                    .iter()
                    .zip(&resp)
                    .map(|(&v, r)| r[c] * (v - means[c]).powi(2))
                    .sum::<f64>()
                    / rc;
                stds[c] = var.sqrt().max(1e-6);
            }
        }
        Gmm1d {
            weights,
            means,
            stds,
        }
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&w, &m), &s)| {
                let z = (x - m) / s;
                w * (-0.5 * z * z).exp() / (s * (2.0 * std::f64::consts::PI).sqrt())
            })
            .sum()
    }

    /// Mixture CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&w, &m), &s)| w * normal_cdf((x - m) / s))
            .sum::<f64>()
            // Weights sum to 1 only up to roundoff; keep this a probability.
            .clamp(0.0, 1.0)
    }

    /// `P(lo <= X <= hi)`.
    pub fn prob_range(&self, lo: f64, hi: f64) -> f64 {
        (self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    #[test]
    fn erf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn recovers_two_well_separated_modes() {
        let mut rng = StdRng::seed_from_u64(5);
        let n1 = Normal::new(-5.0, 0.5).unwrap();
        let n2 = Normal::new(5.0, 0.5).unwrap();
        let mut values: Vec<f64> = (0..500).map(|_| n1.sample(&mut rng)).collect();
        values.extend((0..500).map(|_| n2.sample(&mut rng)));
        let gmm = Gmm1d::fit(&values, 2, 50, 6);
        let mut means = gmm.means.clone();
        means.sort_by(|a, b| a.total_cmp(b));
        assert!((means[0] + 5.0).abs() < 0.5, "means {means:?}");
        assert!((means[1] - 5.0).abs() < 0.5);
        // Each mode holds roughly half the mass.
        assert!((gmm.prob_range(-7.0, -3.0) - 0.5).abs() < 0.1);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let values: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let gmm = Gmm1d::fit(&values, 3, 30, 7);
        let mut prev = 0.0;
        for i in -5..20 {
            let c = gmm.cdf(i as f64);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!(gmm.prob_range(-100.0, 100.0) > 0.999);
    }

    #[test]
    fn single_component_matches_moments() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64) / 100.0).collect();
        let gmm = Gmm1d::fit(&values, 1, 20, 8);
        assert!((gmm.means[0] - 4.995).abs() < 0.01);
        assert!((gmm.weights[0] - 1.0).abs() < 1e-12);
    }
}
