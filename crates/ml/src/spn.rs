//! Sum-product networks over discrete (binned) data, learned LearnSPN-style
//! by alternating row clustering (sum nodes) and column independence splits
//! (product nodes) — the DeepDB family of data-driven estimators.

use crate::bayesnet::mutual_information;
use crate::kmeans::KMeans;

/// One node of the network.
#[derive(Debug, Clone)]
pub enum SpnNode {
    /// Mixture over row clusters.
    Sum {
        /// `(weight, child)` pairs; weights sum to 1.
        children: Vec<(f64, usize)>,
    },
    /// Factorization over independent column groups.
    Product {
        /// Child node indices.
        children: Vec<usize>,
    },
    /// Univariate histogram leaf.
    Leaf {
        /// Variable index.
        var: usize,
        /// Smoothed bin probabilities.
        dist: Vec<f64>,
    },
    /// Joint histogram leaf over a small group of highly-correlated
    /// variables — the "multi-leaf" extension of FSPN/FLAT.
    JointLeaf {
        /// Variable indices.
        vars: Vec<usize>,
        /// Domain size of each variable.
        dims: Vec<usize>,
        /// Smoothed joint probabilities in row-major order.
        dist: Vec<f64>,
    },
}

/// SPN learning hyper-parameters.
#[derive(Debug, Clone)]
pub struct SpnConfig {
    /// Mutual-information threshold above which two columns are dependent.
    pub mi_threshold: f64,
    /// Stop splitting below this many rows; factorize fully instead.
    pub min_rows: usize,
    /// Number of row clusters per sum node.
    pub n_clusters: usize,
    /// Laplace smoothing for leaf histograms.
    pub alpha: f64,
    /// Maximum recursion depth.
    pub max_depth: usize,
    /// Dependent variable groups of at most this size become joint
    /// histogram leaves instead of being clustered further. `1` disables
    /// joint leaves (plain LearnSPN); `2` gives the FSPN/FLAT behaviour.
    pub max_joint_vars: usize,
    /// Seed for k-means.
    pub seed: u64,
}

impl Default for SpnConfig {
    fn default() -> Self {
        SpnConfig {
            mi_threshold: 0.05,
            min_rows: 64,
            n_clusters: 2,
            alpha: 0.5,
            max_depth: 12,
            max_joint_vars: 1,
            seed: 17,
        }
    }
}

/// A fitted sum-product network.
#[derive(Debug, Clone)]
pub struct Spn {
    nodes: Vec<SpnNode>,
    root: usize,
    domains: Vec<usize>,
}

impl Spn {
    /// Learn an SPN over discrete rows with the given per-column domain
    /// sizes.
    pub fn fit(rows: &[Vec<usize>], domains: &[usize], cfg: &SpnConfig) -> Spn {
        assert!(!rows.is_empty());
        let idx: Vec<usize> = (0..rows.len()).collect();
        let vars: Vec<usize> = (0..domains.len()).collect();
        let mut nodes = Vec::new();
        let root = build(rows, domains, &idx, &vars, cfg, 0, &mut nodes);
        Spn {
            nodes,
            root,
            domains: domains.to_vec(),
        }
    }

    /// Number of nodes (model-size metric).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Probability that every variable lies in its allowed bin set.
    pub fn prob(&self, allowed: &[Vec<bool>]) -> f64 {
        assert_eq!(allowed.len(), self.domains.len());
        self.eval(self.root, allowed)
    }

    /// Probability of a full assignment.
    pub fn prob_point(&self, point: &[usize]) -> f64 {
        let allowed: Vec<Vec<bool>> = point
            .iter()
            .zip(&self.domains)
            .map(|(&x, &d)| (0..d).map(|i| i == x).collect())
            .collect();
        self.prob(&allowed)
    }

    fn eval(&self, node: usize, allowed: &[Vec<bool>]) -> f64 {
        match &self.nodes[node] {
            SpnNode::Leaf { var, dist } => dist
                .iter()
                .zip(&allowed[*var])
                .filter(|(_, &a)| a)
                .map(|(&p, _)| p)
                .sum(),
            SpnNode::JointLeaf { vars, dims, dist } => {
                // Sum over allowed cells of the joint histogram.
                let mut total = 0.0;
                for (cell, &p) in dist.iter().enumerate() {
                    let mut rest = cell;
                    let mut ok = true;
                    for k in (0..vars.len()).rev() {
                        let x = rest % dims[k];
                        rest /= dims[k];
                        if !allowed[vars[k]][x] {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        total += p;
                    }
                }
                total
            }
            SpnNode::Product { children } => {
                children.iter().map(|&c| self.eval(c, allowed)).product()
            }
            SpnNode::Sum { children } => children
                .iter()
                .map(|(w, c)| w * self.eval(*c, allowed))
                .sum(),
        }
    }
}

fn make_leaf(
    rows: &[Vec<usize>],
    idx: &[usize],
    var: usize,
    domain: usize,
    alpha: f64,
    nodes: &mut Vec<SpnNode>,
) -> usize {
    let mut dist = vec![alpha; domain];
    for &i in idx {
        dist[rows[i][var]] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    for d in &mut dist {
        *d /= total;
    }
    nodes.push(SpnNode::Leaf { var, dist });
    nodes.len() - 1
}

fn factorize_fully(
    rows: &[Vec<usize>],
    domains: &[usize],
    idx: &[usize],
    vars: &[usize],
    alpha: f64,
    nodes: &mut Vec<SpnNode>,
) -> usize {
    let children: Vec<usize> = vars
        .iter()
        .map(|&v| make_leaf(rows, idx, v, domains[v], alpha, nodes))
        .collect();
    if children.len() == 1 {
        children[0]
    } else {
        nodes.push(SpnNode::Product { children });
        nodes.len() - 1
    }
}

/// Connected components of the dependency graph over `vars`.
fn dependency_components(
    rows: &[Vec<usize>],
    domains: &[usize],
    idx: &[usize],
    vars: &[usize],
    threshold: f64,
) -> Vec<Vec<usize>> {
    let sub_rows: Vec<Vec<usize>> = idx.iter().map(|&i| rows[i].clone()).collect();
    let k = vars.len();
    let mut adj = vec![Vec::new(); k];
    for a in 0..k {
        for b in a + 1..k {
            let mi = mutual_information(
                &sub_rows,
                vars[a],
                vars[b],
                domains[vars[a]],
                domains[vars[b]],
            );
            if mi > threshold {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
    }
    let mut seen = vec![false; k];
    let mut comps = Vec::new();
    for start in 0..k {
        if seen[start] {
            continue;
        }
        let mut comp = vec![];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            comp.push(vars[v]);
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

fn make_joint_leaf(
    rows: &[Vec<usize>],
    domains: &[usize],
    idx: &[usize],
    vars: &[usize],
    alpha: f64,
    nodes: &mut Vec<SpnNode>,
) -> usize {
    let dims: Vec<usize> = vars.iter().map(|&v| domains[v]).collect();
    let size: usize = dims.iter().product();
    let mut dist = vec![alpha; size];
    for &i in idx {
        let mut cell = 0usize;
        for (k, &v) in vars.iter().enumerate() {
            cell = cell * dims[k] + rows[i][v];
        }
        dist[cell] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    for d in &mut dist {
        *d /= total;
    }
    nodes.push(SpnNode::JointLeaf {
        vars: vars.to_vec(),
        dims,
        dist,
    });
    nodes.len() - 1
}

fn build(
    rows: &[Vec<usize>],
    domains: &[usize],
    idx: &[usize],
    vars: &[usize],
    cfg: &SpnConfig,
    depth: usize,
    nodes: &mut Vec<SpnNode>,
) -> usize {
    if vars.len() == 1 {
        return make_leaf(rows, idx, vars[0], domains[vars[0]], cfg.alpha, nodes);
    }
    if vars.len() <= cfg.max_joint_vars {
        return make_joint_leaf(rows, domains, idx, vars, cfg.alpha, nodes);
    }
    if idx.len() < cfg.min_rows || depth >= cfg.max_depth {
        return factorize_fully(rows, domains, idx, vars, cfg.alpha, nodes);
    }

    // Try a column (product) split first.
    let comps = dependency_components(rows, domains, idx, vars, cfg.mi_threshold);
    if comps.len() > 1 {
        let children: Vec<usize> = comps
            .iter()
            .map(|comp| build(rows, domains, idx, comp, cfg, depth + 1, nodes))
            .collect();
        nodes.push(SpnNode::Product { children });
        return nodes.len() - 1;
    }

    // Otherwise a row (sum) split via k-means on normalized bin values.
    let feats: Vec<Vec<f64>> = idx
        .iter()
        .map(|&i| {
            vars.iter()
                .map(|&v| rows[i][v] as f64 / domains[v].max(1) as f64)
                .collect()
        })
        .collect();
    let km = KMeans::fit(&feats, cfg.n_clusters, 25, cfg.seed ^ depth as u64);
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); km.k()];
    for (pos, &i) in idx.iter().enumerate() {
        clusters[km.assignments[pos]].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    if clusters.len() < 2 {
        // Degenerate clustering: give up and factorize.
        return factorize_fully(rows, domains, idx, vars, cfg.alpha, nodes);
    }
    let total = idx.len() as f64;
    let children: Vec<(f64, usize)> = clusters
        .iter()
        .map(|c| {
            let child = build(rows, domains, c, vars, cfg, depth + 1, nodes);
            (c.len() as f64 / total, child)
        })
        .collect();
    nodes.push(SpnNode::Sum { children });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// x1 = x0 deterministically; x2 independent uniform.
    fn data(n: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(2);
        let rows = (0..n)
            .map(|_| {
                let a = rng.gen_range(0..5usize);
                vec![a, a, rng.gen_range(0..4usize)]
            })
            .collect();
        (rows, vec![5, 5, 4])
    }

    #[test]
    fn normalization() {
        let (rows, domains) = data(1000);
        let spn = Spn::fit(&rows, &domains, &SpnConfig::default());
        let all: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        assert!((spn.prob(&all) - 1.0).abs() < 1e-9);
        assert!(spn.num_nodes() >= 3);
    }

    #[test]
    fn captures_dependency_better_than_independence() {
        let (rows, domains) = data(3000);
        let spn = Spn::fit(&rows, &domains, &SpnConfig::default());
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![false; d]).collect();
        allowed[0][2] = true;
        allowed[1][2] = true;
        allowed[2] = vec![true; 4];
        let p = spn.prob(&allowed);
        // Truth ≈ 0.2; independence would say 0.04.
        assert!(p > 0.12, "p = {p}");
        assert!(p < 0.3);
    }

    #[test]
    fn independent_column_is_factored() {
        let (rows, domains) = data(3000);
        let spn = Spn::fit(&rows, &domains, &SpnConfig::default());
        // Marginal of the independent column should be ~uniform.
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        allowed[2] = vec![false; 4];
        allowed[2][1] = true;
        let p = spn.prob(&allowed);
        assert!((p - 0.25).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn small_input_factorizes() {
        let rows = vec![vec![0, 1], vec![1, 0]];
        let spn = Spn::fit(&rows, &[2, 2], &SpnConfig::default());
        let all = vec![vec![true; 2], vec![true; 2]];
        assert!((spn.prob(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn joint_leaves_capture_dependency_exactly() {
        let (rows, domains) = data(3000);
        let spn = Spn::fit(
            &rows,
            &domains,
            &SpnConfig {
                max_joint_vars: 2,
                ..SpnConfig::default()
            },
        );
        // The x0–x1 pair should end up in a joint leaf: P(x0=2, x1=2) ≈ 0.2.
        let mut allowed: Vec<Vec<bool>> = domains.iter().map(|&d| vec![false; d]).collect();
        allowed[0][2] = true;
        allowed[1][2] = true;
        allowed[2] = vec![true; 4];
        let p = spn.prob(&allowed);
        assert!((p - 0.2).abs() < 0.05, "p = {p}");
        // Normalization still holds with joint leaves.
        let all: Vec<Vec<bool>> = domains.iter().map(|&d| vec![true; d]).collect();
        assert!((spn.prob(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn point_probability_reasonable() {
        let (rows, domains) = data(4000);
        let spn = Spn::fit(&rows, &domains, &SpnConfig::default());
        let emp = rows.iter().filter(|r| r == &&vec![3, 3, 2]).count() as f64 / 4000.0;
        let p = spn.prob_point(&[3, 3, 2]);
        assert!((p - emp).abs() < 0.04, "p {p} vs emp {emp}");
    }
}
