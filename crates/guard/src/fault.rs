//! Deterministic, seeded fault injection for learned components.
//!
//! A [`FaultPlan`] decides — purely from a seed and the per-plan call
//! index — whether each call to a wrapped model misbehaves and how. The
//! same seed always produces the same fault sequence, so every robustness
//! property in this workspace is reproducible offline: a chaos test that
//! fails once fails forever, under the same seed.
//!
//! Faults model the real failure modes of learned estimators and cost
//! models: panics inside inference code, NaN/∞/negative outputs from
//! numerically unstable networks, latency stalls from oversized models or
//! contended accelerators, and silently wrong-by-orders-of-magnitude
//! estimates from distribution drift.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lqo_card::estimator::{CardEstimator, Category};
use lqo_engine::optimizer::CardSource;
use lqo_engine::{SpjQuery, TableSet};

/// One way a learned component can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The model panics mid-inference.
    Panic,
    /// The model returns `NaN`.
    Nan,
    /// The model returns `+∞`.
    Infinite,
    /// The model returns a negative estimate.
    Negative,
    /// The model stalls for the plan's configured stall duration, then
    /// answers correctly — a latency fault, not a value fault.
    Stall,
    /// The model answers wrong by a factor of `10^k` (k may be negative).
    WrongBy(i32),
}

impl FaultKind {
    /// Every kind, with representative wrong-by exponents.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Panic,
        FaultKind::Nan,
        FaultKind::Infinite,
        FaultKind::Negative,
        FaultKind::Stall,
        FaultKind::WrongBy(4),
        FaultKind::WrongBy(-4),
    ];

    /// Short stable label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Nan => "nan",
            FaultKind::Infinite => "inf",
            FaultKind::Negative => "negative",
            FaultKind::Stall => "stall",
            FaultKind::WrongBy(k) if k >= 0 => "wrong-high",
            FaultKind::WrongBy(_) => "wrong-low",
        }
    }

    /// Apply this fault to a correct value. Panics for [`FaultKind::Panic`]
    /// (that is the fault); sleeps for [`FaultKind::Stall`].
    pub fn corrupt(self, value: f64, stall: Duration) -> f64 {
        match self {
            FaultKind::Panic => panic!("injected model fault: panic"),
            FaultKind::Nan => f64::NAN,
            FaultKind::Infinite => f64::INFINITY,
            FaultKind::Negative => -value.abs() - 1.0,
            FaultKind::Stall => {
                std::thread::sleep(stall);
                value
            }
            FaultKind::WrongBy(k) => value * 10f64.powi(k),
        }
    }
}

/// Shape of a fault campaign.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic per-call fault decisions.
    pub seed: u64,
    /// Probability that any single call faults, in `[0, 1]`.
    pub rate: f64,
    /// The kinds to draw from (uniformly, by call hash). Empty = no faults.
    pub kinds: Vec<FaultKind>,
    /// How long a [`FaultKind::Stall`] fault sleeps.
    pub stall: Duration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0x5EED,
            rate: 0.0,
            kinds: FaultKind::ALL.to_vec(),
            stall: Duration::from_millis(2),
        }
    }
}

impl FaultConfig {
    /// A campaign injecting every fault kind at `rate` under `seed`.
    pub fn all_kinds(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            rate,
            ..FaultConfig::default()
        }
    }
}

/// SplitMix64: a fast, well-distributed hash of the (seed, index) pair.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic schedule of faults over a call sequence.
///
/// Each call to [`FaultPlan::next_fault`] consumes one call index; whether
/// that index faults (and with which kind) is a pure function of the seed
/// and the index, so interleaving other work never changes the schedule.
pub struct FaultPlan {
    cfg: FaultConfig,
    calls: AtomicU64,
    faults: AtomicU64,
}

impl FaultPlan {
    /// A plan over a campaign configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            calls: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether call index `idx` faults, and how — without consuming a call.
    pub fn fault_at(&self, idx: u64) -> Option<FaultKind> {
        if self.cfg.kinds.is_empty() || self.cfg.rate <= 0.0 {
            return None;
        }
        let h = splitmix64(self.cfg.seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F));
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.cfg.rate {
            let pick = splitmix64(h) as usize % self.cfg.kinds.len();
            Some(self.cfg.kinds[pick])
        } else {
            None
        }
    }

    /// Consume the next call index and return its fault, if any.
    pub fn next_fault(&self) -> Option<FaultKind> {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self.fault_at(idx);
        if fault.is_some() {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Calls consumed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Corrupt `value` per the next call's scheduled fault (identity when
    /// the call is clean). Panics/stalls exactly as the schedule says.
    pub fn apply(&self, value: f64) -> f64 {
        match self.next_fault() {
            Some(kind) => kind.corrupt(value, self.cfg.stall),
            None => value,
        }
    }
}

/// A [`CardSource`] that injects scheduled faults over an inner source.
pub struct FaultyCardSource {
    inner: std::sync::Arc<dyn CardSource>,
    plan: std::sync::Arc<FaultPlan>,
}

impl FaultyCardSource {
    /// Wrap `inner`, faulting per `plan`.
    pub fn new(
        inner: std::sync::Arc<dyn CardSource>,
        plan: std::sync::Arc<FaultPlan>,
    ) -> FaultyCardSource {
        FaultyCardSource { inner, plan }
    }
}

impl CardSource for FaultyCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        match self.plan.next_fault() {
            // Fault before the inner call so Panic costs nothing.
            Some(kind) => kind.corrupt(
                match kind {
                    FaultKind::Panic => 0.0,
                    _ => self.inner.cardinality(query, set),
                },
                self.plan.cfg.stall,
            ),
            None => self.inner.cardinality(query, set),
        }
    }

    fn name(&self) -> &str {
        "faulty"
    }
}

/// A [`CardEstimator`] that injects scheduled faults over an inner
/// estimator — the chaos harness for the E3/E9 injection pipelines.
pub struct FaultyEstimator {
    inner: std::sync::Arc<dyn CardEstimator>,
    plan: std::sync::Arc<FaultPlan>,
}

impl FaultyEstimator {
    /// Wrap `inner`, faulting per `plan`.
    pub fn new(
        inner: std::sync::Arc<dyn CardEstimator>,
        plan: std::sync::Arc<FaultPlan>,
    ) -> FaultyEstimator {
        FaultyEstimator { inner, plan }
    }
}

impl CardEstimator for FaultyEstimator {
    fn name(&self) -> &'static str {
        "faulty-estimator"
    }

    fn category(&self) -> Category {
        self.inner.category()
    }

    fn technique(&self) -> &'static str {
        self.inner.technique()
    }

    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        match self.plan.next_fault() {
            Some(kind) => kind.corrupt(
                match kind {
                    FaultKind::Panic => 0.0,
                    _ => self.inner.estimate(query, set),
                },
                self.plan.cfg.stall,
            ),
            None => self.inner.estimate(query, set),
        }
    }

    fn model_size(&self) -> usize {
        self.inner.model_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = FaultPlan::new(FaultConfig::all_kinds(7, 0.5));
        let b = FaultPlan::new(FaultConfig::all_kinds(7, 0.5));
        let seq_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_eq!(seq_a, seq_b);
        let c = FaultPlan::new(FaultConfig::all_kinds(8, 0.5));
        let seq_c: Vec<_> = (0..200).map(|_| c.next_fault()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn rate_is_roughly_honored() {
        let plan = FaultPlan::new(FaultConfig::all_kinds(42, 0.2));
        let n = 5000;
        let faults = (0..n).filter(|_| plan.next_fault().is_some()).count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed fault rate {rate}");
        assert_eq!(plan.calls(), n);
        assert_eq!(plan.faults(), faults as u64);
    }

    #[test]
    fn zero_rate_never_faults_full_rate_always_does() {
        let none = FaultPlan::new(FaultConfig::all_kinds(1, 0.0));
        assert!((0..100).all(|_| none.next_fault().is_none()));
        let all = FaultPlan::new(FaultConfig::all_kinds(1, 1.0));
        assert!((0..100).all(|_| all.next_fault().is_some()));
    }

    #[test]
    fn corrupt_produces_each_failure_mode() {
        let stall = Duration::from_millis(0);
        assert!(FaultKind::Nan.corrupt(5.0, stall).is_nan());
        assert_eq!(FaultKind::Infinite.corrupt(5.0, stall), f64::INFINITY);
        assert!(FaultKind::Negative.corrupt(5.0, stall) < 0.0);
        assert_eq!(FaultKind::WrongBy(2).corrupt(5.0, stall), 500.0);
        assert_eq!(FaultKind::WrongBy(-1).corrupt(5.0, stall), 0.5);
        assert_eq!(FaultKind::Stall.corrupt(5.0, stall), 5.0);
        let panicked = std::panic::catch_unwind(|| FaultKind::Panic.corrupt(5.0, stall)).is_err();
        assert!(panicked);
    }
}
