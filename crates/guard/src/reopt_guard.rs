//! The re-optimization guard: bounds how much work mid-query re-planning
//! may consume, and arbitrates keep-vs-switch decisions.
//!
//! Mid-query re-optimization is itself a learned-adjacent risk: a
//! re-planning pass driven by bad calibration could burn more work than
//! it saves, or swap in a worse plan. This guard applies the crate's
//! degradation doctrine to the re-optimizer: re-planning runs under a
//! work-unit allowance carved out of the query's *remaining* execution
//! budget (so a re-plan can never push a query past the budget it
//! already had), and a candidate sub-plan is only adopted when it is
//! strictly cheaper than re-costing the current plan — ties and NaNs
//! keep the plan as-is.

/// Re-optimization guard tuning.
#[derive(Debug, Clone)]
pub struct ReoptGuardConfig {
    /// Hard cap, in work units, on a single re-planning pass.
    pub replan_work_cap: f64,
}

impl Default for ReoptGuardConfig {
    fn default() -> ReoptGuardConfig {
        ReoptGuardConfig {
            replan_work_cap: 5e4,
        }
    }
}

/// Budgets re-planning passes and arbitrates switch decisions.
#[derive(Debug, Clone, Default)]
pub struct ReoptGuard {
    cfg: ReoptGuardConfig,
}

impl ReoptGuard {
    /// A guard with the given tuning.
    pub fn new(cfg: ReoptGuardConfig) -> ReoptGuard {
        ReoptGuard { cfg }
    }

    /// Work-unit allowance for one re-planning pass, given the query's
    /// remaining execution budget (`None` = unbudgeted query). The
    /// allowance never exceeds the remaining budget, so charging replan
    /// work against the query's meter cannot trip it by itself; an
    /// exhausted budget yields a zero allowance and the pass degrades
    /// immediately to plan-as-is.
    pub fn replan_budget(&self, remaining: Option<f64>) -> f64 {
        match remaining {
            Some(rem) => self.cfg.replan_work_cap.min(rem.max(0.0)),
            None => self.cfg.replan_work_cap,
        }
    }

    /// Whether a candidate sub-plan should replace the current one:
    /// strictly cheaper, with NaN on either side keeping the current
    /// plan (total-order comparison, house NaN rule).
    pub fn accepts(&self, current_cost: f64, candidate_cost: f64) -> bool {
        !candidate_cost.is_nan() && candidate_cost.total_cmp(&current_cost).is_lt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowance_is_capped_by_remaining_budget() {
        let g = ReoptGuard::new(ReoptGuardConfig {
            replan_work_cap: 100.0,
        });
        assert_eq!(g.replan_budget(Some(40.0)), 40.0);
        assert_eq!(g.replan_budget(Some(400.0)), 100.0);
        assert_eq!(g.replan_budget(None), 100.0);
    }

    #[test]
    fn exhausted_budget_yields_zero_allowance() {
        let g = ReoptGuard::default();
        assert_eq!(g.replan_budget(Some(0.0)), 0.0);
        assert_eq!(g.replan_budget(Some(-5.0)), 0.0);
    }

    #[test]
    fn accepts_only_strict_improvement() {
        let g = ReoptGuard::default();
        assert!(g.accepts(100.0, 99.0));
        assert!(!g.accepts(100.0, 100.0));
        assert!(!g.accepts(100.0, 101.0));
    }

    #[test]
    fn nan_costs_keep_the_current_plan() {
        let g = ReoptGuard::default();
        assert!(!g.accepts(100.0, f64::NAN));
        // A NaN current cost sorts above every real number under
        // total_cmp, so any finite candidate is accepted — re-costing
        // failure on the current plan must not pin a broken plan.
        assert!(g.accepts(f64::NAN, 100.0));
        assert!(!g.accepts(f64::NAN, f64::NAN));
    }
}
