//! A circuit breaker with call-count cooldowns and exponential backoff.
//!
//! Classic three-state breaker (closed → open → half-open), with one
//! deliberate twist: cooldowns are measured in *calls*, not wall-clock
//! time. A planner makes model calls at a high, workload-dependent rate,
//! and counting calls keeps every breaker trajectory deterministic for a
//! given call sequence — the property the chaos tests and the seeded E9
//! experiment rely on. The backoff doubles the cooldown each time a
//! half-open probe fails, up to a cap, exactly like time-based breakers
//! double their retry interval.

use parking_lot::Mutex;

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive faults (in the closed state) that open the breaker.
    pub failure_threshold: u32,
    /// Base cooldown: calls the breaker stays open before half-opening.
    pub cooldown_calls: u64,
    /// Cap on the backoff exponent: cooldown = `cooldown_calls << level`.
    pub max_backoff_level: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 16,
            max_backoff_level: 6,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls pass through.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next call is a probe.
    HalfOpen,
}

impl BreakerState {
    /// Numeric code for gauges: 0 closed, 1 half-open, 2 open.
    pub fn code(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Open => "open",
        }
    }
}

/// A point-in-time breaker snapshot, cheap to hand to health monitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerStats {
    /// Current state.
    pub state: BreakerState,
    /// Current backoff exponent.
    pub backoff_level: u32,
    /// Lifetime open transitions.
    pub opens: u64,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    backoff_level: u32,
    cooldown_remaining: u64,
    opens: u64,
}

/// A thread-safe per-component circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                backoff_level: 0,
                cooldown_remaining: 0,
                opens: 0,
            }),
        }
    }

    /// Current state (without consuming a call).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Current backoff exponent.
    pub fn backoff_level(&self) -> u32 {
        self.inner.lock().backoff_level
    }

    /// Times the breaker has transitioned to open.
    pub fn opens(&self) -> u64 {
        self.inner.lock().opens
    }

    /// A consistent snapshot of state, backoff level, and open count.
    pub fn stats(&self) -> BreakerStats {
        let g = self.inner.lock();
        BreakerStats {
            state: g.state,
            backoff_level: g.backoff_level,
            opens: g.opens,
        }
    }

    /// Gate one call: `true` means the protected component should be
    /// attempted (closed, or a half-open probe); `false` means skip it and
    /// use the fallback. Rejected calls tick the cooldown down, so the
    /// breaker half-opens after `cooldown_calls << backoff_level`
    /// rejections.
    pub fn allow(&self) -> bool {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                g.cooldown_remaining = g.cooldown_remaining.saturating_sub(1);
                if g.cooldown_remaining == 0 {
                    g.state = BreakerState::HalfOpen;
                }
                false
            }
        }
    }

    /// Report a successful guarded call. A successful half-open probe
    /// closes the breaker and resets the backoff schedule.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        g.consecutive_failures = 0;
        if g.state == BreakerState::HalfOpen {
            g.state = BreakerState::Closed;
            g.backoff_level = 0;
        }
    }

    /// Report a faulted guarded call. In the closed state this counts
    /// toward the failure threshold; a failed half-open probe re-opens
    /// immediately with a doubled cooldown.
    pub fn record_failure(&self) {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.cfg.failure_threshold {
                    Self::open(&self.cfg, &mut g);
                }
            }
            BreakerState::HalfOpen => {
                g.backoff_level = (g.backoff_level + 1).min(self.cfg.max_backoff_level);
                Self::open(&self.cfg, &mut g);
            }
            BreakerState::Open => {}
        }
    }

    fn open(cfg: &BreakerConfig, g: &mut Inner) {
        g.state = BreakerState::Open;
        g.consecutive_failures = 0;
        g.cooldown_remaining = cfg.cooldown_calls << g.backoff_level;
        g.opens += 1;
    }
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_calls: 4,
            max_backoff_level: 2,
        }
    }

    #[test]
    fn opens_after_k_consecutive_failures() {
        let b = CircuitBreaker::new(cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(cfg());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_opens_after_cooldown_and_probe_success_closes() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure();
        }
        // 4 rejected calls tick the cooldown to zero.
        for _ in 0..4 {
            assert!(!b.allow());
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow()); // the probe
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.backoff_level(), 0);
    }

    fn rejections_until_half_open(b: &CircuitBreaker) -> u64 {
        let mut n = 0;
        while b.state() == BreakerState::Open {
            assert!(!b.allow());
            n += 1;
        }
        n
    }

    #[test]
    fn failed_probe_doubles_the_cooldown_up_to_the_cap() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure();
        }
        // Cooldowns: 4 initially, then 8, 16, and capped at 16.
        assert_eq!(rejections_until_half_open(&b), 4);
        for expected in [8u64, 16, 16] {
            assert!(b.allow()); // the probe
            b.record_failure(); // probe fails
            assert_eq!(rejections_until_half_open(&b), expected);
        }
        assert_eq!(b.backoff_level(), 2);
        assert_eq!(b.opens(), 4);
    }

    #[test]
    fn state_codes_for_gauges() {
        assert_eq!(BreakerState::Closed.code(), 0.0);
        assert_eq!(BreakerState::HalfOpen.code(), 1.0);
        assert_eq!(BreakerState::Open.code(), 2.0);
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure();
        }
        let s = b.stats();
        assert_eq!(s.state, BreakerState::Open);
        assert_eq!(s.opens, 1);
        assert_eq!(s.backoff_level, 0);
    }
}
