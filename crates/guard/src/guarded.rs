//! Guarded invocation: run model calls under `catch_unwind`, validate
//! their outputs, enforce inference deadlines, and step down a
//! degradation ladder when a component misbehaves.
//!
//! The containment contract mirrors PilotScope's: learned code may panic,
//! emit garbage, or stall, and the query pipeline still answers — at
//! worst with the native optimizer's plan. Deadlines are enforced
//! *post hoc*: the call runs to completion, its elapsed time is compared
//! to the deadline, and an overrun rejects the result and trips the
//! breaker, so subsequent calls skip the slow component entirely. This is
//! the honest in-process trade-off — we cannot preempt a running model
//! thread, but we can refuse to let a slow model steer more than one
//! plan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lqo_card::estimator::{CardEstimator, Category};
use lqo_engine::optimizer::CardSource;
use lqo_engine::{EngineError, PhysNode, SpjQuery, TableSet};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::trace::GuardEvent;
use lqo_obs::ObsContext;

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};

/// Everything the guard enforces on one component.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Per-call inference deadline (post-hoc; `None` = unlimited).
    pub deadline: Option<Duration>,
    /// Per-query plan-time budget across all guarded calls (`None` =
    /// unlimited). Reset via [`GuardedCardSource::begin_query`].
    pub plan_budget: Option<Duration>,
    /// Sane upper bound on any cardinality estimate, in rows.
    pub max_estimate: f64,
    /// Breaker tuning, applied per guarded rung.
    pub breaker: BreakerConfig,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            deadline: Some(Duration::from_millis(250)),
            plan_budget: Some(Duration::from_secs(2)),
            max_estimate: 1e15,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Why a guarded call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardFault {
    /// The component panicked; the unwind was caught.
    Panicked,
    /// The output was NaN or ±∞.
    NonFinite,
    /// The output was negative where only counts make sense.
    Negative,
    /// The output exceeded the configured sanity bound.
    OutOfBounds,
    /// The call finished after its inference deadline.
    DeadlineExceeded,
    /// The per-query plan-time budget was already exhausted.
    BudgetExhausted,
}

impl GuardFault {
    /// Short stable label for metrics and trace events.
    pub fn label(self) -> &'static str {
        match self {
            GuardFault::Panicked => "panic",
            GuardFault::NonFinite => "non-finite",
            GuardFault::Negative => "negative",
            GuardFault::OutOfBounds => "out-of-bounds",
            GuardFault::DeadlineExceeded => "deadline",
            GuardFault::BudgetExhausted => "budget",
        }
    }

    /// The [`EngineError`] equivalent, for paths that propagate `Result`.
    pub fn to_engine_error(self, component: &str) -> EngineError {
        match self {
            GuardFault::DeadlineExceeded | GuardFault::BudgetExhausted => {
                EngineError::InferenceTimeout {
                    component: component.to_string(),
                }
            }
            other => EngineError::ModelFault {
                component: component.to_string(),
                fault: other.label().to_string(),
            },
        }
    }
}

/// Validate a cardinality-like output: finite, non-negative, bounded.
pub fn validate_estimate(value: f64, cfg: &GuardConfig) -> Result<f64, GuardFault> {
    if !value.is_finite() {
        Err(GuardFault::NonFinite)
    } else if value < 0.0 {
        Err(GuardFault::Negative)
    } else if value > cfg.max_estimate {
        Err(GuardFault::OutOfBounds)
    } else {
        Ok(value)
    }
}

/// Validate a risk-score output: finite (ranking utilities may be
/// negative, so no sign constraint).
pub fn validate_score(value: f64) -> Result<f64, GuardFault> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(GuardFault::NonFinite)
    }
}

/// Run `f` under `catch_unwind`, timing it and enforcing `deadline`
/// post hoc. Returns the value and its latency, or the fault.
pub fn invoke_guarded<T>(
    deadline: Option<Duration>,
    f: impl FnOnce() -> T,
) -> Result<(T, Duration), GuardFault> {
    let start = Instant::now();
    let out = catch_unwind(AssertUnwindSafe(f));
    let elapsed = start.elapsed();
    match out {
        Err(_) => Err(GuardFault::Panicked),
        Ok(_) if deadline.is_some_and(|d| elapsed > d) => Err(GuardFault::DeadlineExceeded),
        Ok(v) => Ok((v, elapsed)),
    }
}

/// A per-query plan-time budget shared by every guarded call made while
/// planning one query.
#[derive(Debug, Default)]
pub struct PlanBudget {
    limit_ns: Option<u64>,
    spent_ns: AtomicU64,
}

impl PlanBudget {
    /// A budget with the given limit (`None` = unlimited).
    pub fn new(limit: Option<Duration>) -> PlanBudget {
        PlanBudget {
            limit_ns: limit.map(|d| d.as_nanos() as u64),
            spent_ns: AtomicU64::new(0),
        }
    }

    /// Start a new query: forget everything spent.
    pub fn reset(&self) {
        self.spent_ns.store(0, Ordering::Relaxed);
    }

    /// Charge one call's latency.
    pub fn charge(&self, elapsed: Duration) {
        self.spent_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Whether the budget is used up.
    pub fn exhausted(&self) -> bool {
        self.limit_ns
            .is_some_and(|l| self.spent_ns.load(Ordering::Relaxed) >= l)
    }

    /// Nanoseconds spent so far.
    pub fn spent_ns(&self) -> u64 {
        self.spent_ns.load(Ordering::Relaxed)
    }
}

/// One step of the degradation ladder.
struct Rung {
    name: String,
    source: Arc<dyn CardSource>,
}

/// A [`CardSource`] that walks a degradation ladder of sources — most
/// learned first, most trusted last. Every rung but the last runs under
/// the full guard (unwind containment, output validation, deadline,
/// breaker); the last rung is the trusted native fallback and is called
/// directly. This is the "learned estimator → hybrid → traditional
/// histogram → native" ladder from the survey's containment story.
pub struct GuardedCardSource {
    component: String,
    rungs: Vec<Rung>,
    breakers: Vec<CircuitBreaker>,
    cfg: GuardConfig,
    budget: PlanBudget,
    obs: ObsContext,
    flight: FlightContext,
    last_rung: AtomicUsize,
}

impl GuardedCardSource {
    /// An empty ladder for a named component (e.g. `"card"`). Add rungs
    /// with [`GuardedCardSource::rung`]; at least one is required before
    /// use.
    pub fn new(component: &str, cfg: GuardConfig, obs: ObsContext) -> GuardedCardSource {
        GuardedCardSource {
            component: component.to_string(),
            rungs: Vec::new(),
            breakers: Vec::new(),
            cfg,
            budget: PlanBudget::default(),
            obs,
            flight: FlightContext::disabled(),
            last_rung: AtomicUsize::new(0),
        }
    }

    /// Attach a flight recorder; guard faults and breaker-open
    /// transitions are published onto the black-box ring (a breaker open
    /// is an incident trigger).
    pub fn with_flight(mut self, flight: FlightContext) -> GuardedCardSource {
        self.flight = flight;
        self
    }

    /// Append a rung. Order matters: first added is tried first; the last
    /// added is the trusted unguarded fallback.
    pub fn rung(mut self, name: &str, source: Arc<dyn CardSource>) -> GuardedCardSource {
        self.rungs.push(Rung {
            name: name.to_string(),
            source,
        });
        self.breakers
            .push(CircuitBreaker::new(self.cfg.breaker.clone()));
        self.budget = PlanBudget::new(self.cfg.plan_budget);
        self
    }

    /// Rung names, ladder order.
    pub fn rung_names(&self) -> Vec<&str> {
        self.rungs.iter().map(|r| r.name.as_str()).collect()
    }

    /// The breaker guarding rung `i`.
    pub fn breaker(&self, i: usize) -> &CircuitBreaker {
        &self.breakers[i]
    }

    /// Index of the rung that answered the most recent lookup.
    pub fn last_rung(&self) -> usize {
        self.last_rung.load(Ordering::Relaxed)
    }

    /// Reset the per-query plan budget; call at the start of each query's
    /// planning.
    pub fn begin_query(&self) {
        self.budget.reset();
    }

    fn record_fault(&self, rung: &str, fault: GuardFault, next: &str) {
        self.obs.count("lqo.guard.faults", 1);
        self.obs
            .count(&format!("lqo.guard.faults.{}", fault.label()), 1);
        self.obs.count("lqo.guard.fallbacks", 1);
        let component = format!("{}:{}", self.component, rung);
        let action = format!("fallback:{next}");
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Guard,
                FlightEvent::Guard {
                    component: component.clone(),
                    fault: fault.label().to_string(),
                    action: action.clone(),
                },
            );
        }
        self.obs.with_query(|t| {
            t.push_guard(GuardEvent {
                component: component.clone(),
                fault: fault.label().to_string(),
                action: action.clone(),
            });
        });
    }

    fn publish_breaker_state(&self, i: usize) {
        let name = format!(
            "lqo.guard.{}.{}.breaker",
            self.component, self.rungs[i].name
        );
        self.obs.gauge(&name, self.breakers[i].state().code());
    }
}

impl CardSource for GuardedCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        assert!(!self.rungs.is_empty(), "GuardedCardSource has no rungs");
        let last = self.rungs.len() - 1;
        for i in 0..last {
            let rung = &self.rungs[i];
            let next = self.rungs[i + 1].name.as_str();
            if self.budget.exhausted() {
                self.record_fault(&rung.name, GuardFault::BudgetExhausted, next);
                continue;
            }
            if !self.breakers[i].allow() {
                self.obs.count("lqo.guard.skips", 1);
                continue;
            }
            let outcome = invoke_guarded(self.cfg.deadline, || rung.source.cardinality(query, set))
                .and_then(|(v, elapsed)| {
                    self.budget.charge(elapsed);
                    self.obs
                        .observe("lqo.guard.deadline_ns", elapsed.as_nanos() as f64);
                    validate_estimate(v, &self.cfg)
                });
            match outcome {
                Ok(v) => {
                    self.breakers[i].record_success();
                    self.publish_breaker_state(i);
                    self.last_rung.store(i, Ordering::Relaxed);
                    self.obs
                        .gauge(&format!("lqo.guard.{}.rung", self.component), i as f64);
                    return v;
                }
                Err(fault) => {
                    let opens_before = self.breakers[i].opens();
                    self.breakers[i].record_failure();
                    if self.breakers[i].opens() > opens_before {
                        self.obs.count("lqo.guard.breaker_opens", 1);
                        if self.flight.is_enabled() {
                            self.flight.publish(
                                Producer::Guard,
                                FlightEvent::Breaker {
                                    component: format!("{}:{}", self.component, rung.name),
                                    state: "open".to_string(),
                                },
                            );
                        }
                    }
                    self.publish_breaker_state(i);
                    self.record_fault(&rung.name, fault, next);
                }
            }
        }
        // The trusted rung: called directly, no guard.
        self.last_rung.store(last, Ordering::Relaxed);
        self.obs
            .gauge(&format!("lqo.guard.{}.rung", self.component), last as f64);
        self.rungs[last].source.cardinality(query, set)
    }

    fn name(&self) -> &str {
        "guarded"
    }
}

/// A [`CardEstimator`] guard: primary model behind the full guard, with a
/// trusted fallback estimator and a breaker. The shape PilotScope's
/// cardinality driver needs — the pushed-down estimates are already
/// validated by the time they reach the optimizer.
pub struct GuardedEstimator {
    component: String,
    primary: Arc<dyn CardEstimator>,
    fallback: Arc<dyn CardEstimator>,
    breaker: CircuitBreaker,
    cfg: GuardConfig,
    obs: ObsContext,
    flight: FlightContext,
}

impl GuardedEstimator {
    /// Guard `primary`, degrading to `fallback`.
    pub fn new(
        component: &str,
        primary: Arc<dyn CardEstimator>,
        fallback: Arc<dyn CardEstimator>,
        cfg: GuardConfig,
        obs: ObsContext,
    ) -> GuardedEstimator {
        let breaker = CircuitBreaker::new(cfg.breaker.clone());
        GuardedEstimator {
            component: component.to_string(),
            primary,
            fallback,
            breaker,
            cfg,
            obs,
            flight: FlightContext::disabled(),
        }
    }

    /// Attach a flight recorder (see [`GuardedCardSource::with_flight`]).
    pub fn with_flight(mut self, flight: FlightContext) -> GuardedEstimator {
        self.flight = flight;
        self
    }

    /// The breaker guarding the primary estimator.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    fn fall_back(&self, query: &SpjQuery, set: TableSet, fault: GuardFault) -> f64 {
        let opens_before = self.breaker.opens();
        self.breaker.record_failure();
        if self.breaker.opens() > opens_before {
            self.obs.count("lqo.guard.breaker_opens", 1);
            if self.flight.is_enabled() {
                self.flight.publish(
                    Producer::Guard,
                    FlightEvent::Breaker {
                        component: self.component.clone(),
                        state: "open".to_string(),
                    },
                );
            }
        }
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Guard,
                FlightEvent::Guard {
                    component: self.component.clone(),
                    fault: fault.label().to_string(),
                    action: "fallback:estimator".to_string(),
                },
            );
        }
        self.obs.count("lqo.guard.faults", 1);
        self.obs
            .count(&format!("lqo.guard.faults.{}", fault.label()), 1);
        self.obs.count("lqo.guard.fallbacks", 1);
        let component = self.component.clone();
        let fault_label = fault.label().to_string();
        self.obs.with_query(|t| {
            t.push_guard(GuardEvent {
                component,
                fault: fault_label,
                action: "fallback:estimator".to_string(),
            });
        });
        self.fallback.estimate(query, set)
    }
}

impl CardEstimator for GuardedEstimator {
    fn name(&self) -> &'static str {
        "guarded-estimator"
    }

    fn category(&self) -> Category {
        self.primary.category()
    }

    fn technique(&self) -> &'static str {
        self.primary.technique()
    }

    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        if !self.breaker.allow() {
            self.obs.count("lqo.guard.skips", 1);
            return self.fallback.estimate(query, set);
        }
        let outcome = invoke_guarded(self.cfg.deadline, || self.primary.estimate(query, set))
            .and_then(|(v, elapsed)| {
                self.obs
                    .observe("lqo.guard.deadline_ns", elapsed.as_nanos() as f64);
                validate_estimate(v, &self.cfg)
            });
        match outcome {
            Ok(v) => {
                self.breaker.record_success();
                v
            }
            Err(fault) => self.fall_back(query, set, fault),
        }
    }

    fn model_size(&self) -> usize {
        self.primary.model_size()
    }

    fn observe(&self, query: &SpjQuery, set: TableSet, true_card: f64) {
        // Feedback is best-effort: a panicking feedback hook is contained
        // and counted, never propagated.
        if catch_unwind(AssertUnwindSafe(|| {
            self.primary.observe(query, set, true_card)
        }))
        .is_err()
        {
            self.obs.count("lqo.guard.faults", 1);
            self.obs.count("lqo.guard.faults.panic", 1);
        }
    }
}

/// A guarded risk model: score/selection calls on the learned model run
/// under the guard; on any fault the trusted fallback model (typically
/// the native cost) answers instead.
pub struct GuardedRiskModel {
    component: String,
    inner: Box<dyn learned_qo::framework::RiskModel>,
    fallback: Box<dyn learned_qo::framework::RiskModel>,
    breaker: CircuitBreaker,
    cfg: GuardConfig,
    obs: ObsContext,
}

impl GuardedRiskModel {
    /// Guard `inner`, degrading to `fallback`.
    pub fn new(
        component: &str,
        inner: Box<dyn learned_qo::framework::RiskModel>,
        fallback: Box<dyn learned_qo::framework::RiskModel>,
        cfg: GuardConfig,
        obs: ObsContext,
    ) -> GuardedRiskModel {
        let breaker = CircuitBreaker::new(cfg.breaker.clone());
        GuardedRiskModel {
            component: component.to_string(),
            inner,
            fallback,
            breaker,
            cfg,
            obs,
        }
    }

    /// The breaker guarding the learned model.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    fn note_fault(&self, fault: GuardFault) {
        let opens_before = self.breaker.opens();
        self.breaker.record_failure();
        if self.breaker.opens() > opens_before {
            self.obs.count("lqo.guard.breaker_opens", 1);
        }
        self.obs.count("lqo.guard.faults", 1);
        self.obs
            .count(&format!("lqo.guard.faults.{}", fault.label()), 1);
        self.obs.count("lqo.guard.fallbacks", 1);
        let component = self.component.clone();
        let fault_label = fault.label().to_string();
        self.obs.with_query(|t| {
            t.push_guard(GuardEvent {
                component,
                fault: fault_label,
                action: "fallback:risk".to_string(),
            });
        });
    }
}

impl learned_qo::framework::RiskModel for GuardedRiskModel {
    fn name(&self) -> &'static str {
        "guarded-risk"
    }

    fn score(&self, query: &SpjQuery, plan: &PhysNode) -> f64 {
        if !self.breaker.allow() {
            self.obs.count("lqo.guard.skips", 1);
            return self.fallback.score(query, plan);
        }
        let outcome = invoke_guarded(self.cfg.deadline, || self.inner.score(query, plan)).and_then(
            |(v, elapsed)| {
                self.obs
                    .observe("lqo.guard.deadline_ns", elapsed.as_nanos() as f64);
                validate_score(v)
            },
        );
        match outcome {
            Ok(v) => {
                self.breaker.record_success();
                v
            }
            Err(fault) => {
                self.note_fault(fault);
                self.fallback.score(query, plan)
            }
        }
    }

    fn train(&mut self, samples: &[learned_qo::framework::ExecutionSample]) {
        // Training faults are contained (and tripped into the breaker):
        // a model that cannot train is a model that should not steer.
        let inner = &mut self.inner;
        if catch_unwind(AssertUnwindSafe(|| inner.train(samples))).is_err() {
            self.note_fault(GuardFault::Panicked);
        }
    }

    fn select(
        &self,
        query: &SpjQuery,
        candidates: &[learned_qo::framework::CandidatePlan],
    ) -> usize {
        if self.breaker.state() == BreakerState::Open {
            // Scores below will all delegate; let the fallback pick
            // directly to avoid N wasted skip counts.
            let _ = self.breaker.allow();
            return self.fallback.select(query, candidates);
        }
        match invoke_guarded(self.cfg.deadline, || self.inner.select(query, candidates)) {
            Ok((idx, _)) if idx < candidates.len() => idx,
            Ok(_) => {
                self.note_fault(GuardFault::OutOfBounds);
                self.fallback.select(query, candidates)
            }
            Err(fault) => {
                self.note_fault(fault);
                self.fallback.select(query, candidates)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_guarded_contains_panics_and_checks_deadlines() {
        let out = invoke_guarded(None, || panic!("boom"));
        assert_eq!(out.unwrap_err(), GuardFault::Panicked);
        let out = invoke_guarded(Some(Duration::from_nanos(1)), || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out.unwrap_err(), GuardFault::DeadlineExceeded);
        let (v, _) = invoke_guarded(Some(Duration::from_secs(10)), || 7).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn validation_rejects_garbage() {
        let cfg = GuardConfig::default();
        assert_eq!(validate_estimate(42.0, &cfg), Ok(42.0));
        assert_eq!(
            validate_estimate(f64::NAN, &cfg),
            Err(GuardFault::NonFinite)
        );
        assert_eq!(
            validate_estimate(f64::INFINITY, &cfg),
            Err(GuardFault::NonFinite)
        );
        assert_eq!(validate_estimate(-3.0, &cfg), Err(GuardFault::Negative));
        assert_eq!(validate_estimate(1e20, &cfg), Err(GuardFault::OutOfBounds));
        assert_eq!(validate_score(-3.0), Ok(-3.0));
        assert_eq!(validate_score(f64::NAN), Err(GuardFault::NonFinite));
    }

    #[test]
    fn plan_budget_charges_and_exhausts() {
        let b = PlanBudget::new(Some(Duration::from_millis(1)));
        assert!(!b.exhausted());
        b.charge(Duration::from_millis(2));
        assert!(b.exhausted());
        b.reset();
        assert!(!b.exhausted());
        let unlimited = PlanBudget::new(None);
        unlimited.charge(Duration::from_secs(3600));
        assert!(!unlimited.exhausted());
    }

    #[test]
    fn guard_faults_map_to_engine_errors() {
        let e = GuardFault::DeadlineExceeded.to_engine_error("card");
        assert!(matches!(e, EngineError::InferenceTimeout { .. }));
        assert!(e.to_string().contains("card"));
        let e = GuardFault::Panicked.to_engine_error("risk");
        assert!(matches!(e, EngineError::ModelFault { .. }));
        assert!(e.to_string().contains("panic"));
    }
}
