//! # lqo-guard
//!
//! The robustness layer of the learned-qo stack: *a broken model
//! degrades, never crashes*.
//!
//! The survey's deployment argument (and the reason systems like Bao
//! steer hints instead of emitting plans, and PilotScope interposes a
//! middleware boundary) is that a learned component must be unable to
//! take the database down with it. This crate makes that an enforced,
//! *testable* invariant with three layers:
//!
//! 1. **Deterministic fault injection** ([`fault`]) — a seeded
//!    [`FaultPlan`] wraps any estimator/cost/risk model and injects
//!    panics, NaN/∞/negative outputs, latency stalls, and
//!    wrong-by-10^k estimates on schedule, so robustness properties are
//!    reproducible offline.
//! 2. **Guarded invocation** ([`guarded`]) — model calls run under
//!    `catch_unwind`, outputs are validated (finite, non-negative,
//!    bounded), and a post-hoc per-call inference deadline plus a
//!    per-query plan-time budget bound how much planning time learned
//!    code may consume.
//! 3. **Circuit breakers + a degradation ladder** ([`breaker`],
//!    [`guarded::GuardedCardSource`]) — per-component breakers (closed →
//!    open on K consecutive faults → half-open probe with exponential
//!    backoff) step the optimizer down learned → hybrid → traditional →
//!    native; and at the execution layer a [`exec_guard::RegressionGuard`]
//!    cancels any plan that exceeds `k ×` the native plan's predicted
//!    work and re-executes with the native plan.
//!
//! Guard activity is observable through `lqo-obs`: `lqo.guard.*`
//! counters (faults by kind, fallbacks, breaker opens, replans), breaker
//! state and active-rung gauges, a `lqo.guard.deadline_ns` latency
//! histogram, and per-query [`lqo_obs::trace::GuardEvent`]s.

#![warn(missing_docs)]

pub mod breaker;
pub mod exec_guard;
pub mod fault;
pub mod guarded;
pub mod reopt_guard;

pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use exec_guard::{GuardedExecution, RegressionGuard, RegressionGuardConfig};
pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultyCardSource, FaultyEstimator};
pub use guarded::{
    GuardConfig, GuardFault, GuardedCardSource, GuardedEstimator, GuardedRiskModel, PlanBudget,
};
pub use reopt_guard::{ReoptGuard, ReoptGuardConfig};
