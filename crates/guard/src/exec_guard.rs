//! The execution-layer regression guard.
//!
//! Planning-time guards cannot catch every bad plan: a validated, finite,
//! in-bounds estimate can still be wrong enough to pick a disastrous join
//! order. The last line of defence is at execution time — run the chosen
//! plan under a work budget of `k ×` the native plan's predicted work
//! (reusing the executor's existing work-budget checkpoints), and when
//! the budget trips, cancel and re-execute with the native plan. This is
//! Bao's timeout containment and Eraser's regression elimination folded
//! into one mechanism.

use lqo_engine::exec::workunits::CostParams;
use lqo_engine::optimizer::{plan_cost, CardSource};
use lqo_engine::{
    Catalog, EngineError, ExecConfig, ExecMode, ExecResult, Executor, PhysNode, Result, SpjQuery,
};
use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::trace::GuardEvent;
use lqo_obs::ObsContext;

/// Regression-guard tuning.
#[derive(Debug, Clone)]
pub struct RegressionGuardConfig {
    /// Budget multiplier: the chosen plan may spend up to `work_factor ×`
    /// the native plan's predicted work before it is cancelled.
    pub work_factor: f64,
    /// Floor on the budget, in work units, so tiny queries are not
    /// cancelled on prediction noise.
    pub min_budget: f64,
}

impl Default for RegressionGuardConfig {
    fn default() -> RegressionGuardConfig {
        RegressionGuardConfig {
            work_factor: 4.0,
            min_budget: 1e4,
        }
    }
}

/// Outcome of a guarded execution.
#[derive(Debug, Clone)]
pub struct GuardedExecution {
    /// The execution result (of the chosen plan, or of the native plan
    /// after a cancellation).
    pub result: ExecResult,
    /// Whether the chosen plan was cancelled and the native plan ran.
    pub replanned: bool,
    /// The work budget the chosen plan ran under.
    pub budget: f64,
}

/// Executes chosen plans under a native-relative work budget, falling
/// back to the native plan on a budget trip.
pub struct RegressionGuard<'a> {
    catalog: &'a Catalog,
    params: CostParams,
    cfg: RegressionGuardConfig,
    obs: ObsContext,
    flight: FlightContext,
    mode: ExecMode,
}

impl<'a> RegressionGuard<'a> {
    /// A guard over a catalog.
    pub fn new(
        catalog: &'a Catalog,
        params: CostParams,
        cfg: RegressionGuardConfig,
        obs: ObsContext,
    ) -> RegressionGuard<'a> {
        RegressionGuard {
            catalog,
            params,
            cfg,
            obs,
            flight: FlightContext::disabled(),
            mode: ExecMode::Serial,
        }
    }

    /// Attach a flight recorder; budget trips and regression cancels are
    /// published onto the black-box ring (a cancel is an incident
    /// trigger).
    pub fn with_flight(mut self, flight: FlightContext) -> RegressionGuard<'a> {
        self.flight = flight;
        self
    }

    /// Execute guarded plans in the given mode. Budget semantics are
    /// unchanged: work accounting is mode-independent (the parallel and
    /// batched executors are byte-identical to serial, with
    /// cancellation-aware morsel dispatch and serial-cadence charge
    /// replay honouring the same budget mid-operator).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> RegressionGuard<'a> {
        self.mode = mode;
        self
    }

    /// The native plan's predicted work and the budget derived from it.
    fn predicted_and_budget(
        &self,
        query: &SpjQuery,
        native: &PhysNode,
        card: &dyn CardSource,
    ) -> Result<(f64, f64)> {
        let predicted = plan_cost(native, query, self.catalog, card, &self.params)?;
        Ok((
            predicted,
            (predicted * self.cfg.work_factor).max(self.cfg.min_budget),
        ))
    }

    /// The budget the guard would grant `chosen` given the native plan's
    /// predicted work under `card`.
    pub fn budget_for(
        &self,
        query: &SpjQuery,
        native: &PhysNode,
        card: &dyn CardSource,
    ) -> Result<f64> {
        self.predicted_and_budget(query, native, card)
            .map(|(_, budget)| budget)
    }

    /// Execute `chosen` under the budget derived from `native`'s predicted
    /// work; on a budget trip, re-execute with `native` (unbudgeted) and
    /// report the replan. `card` is the trusted cardinality source used
    /// for the native prediction.
    pub fn execute(
        &self,
        query: &SpjQuery,
        chosen: &PhysNode,
        native: &PhysNode,
        card: &dyn CardSource,
    ) -> Result<GuardedExecution> {
        let (predicted, budget) = self.predicted_and_budget(query, native, card)?;
        // The native plan is its own budget reference: run it unguarded
        // rather than risk cancelling it on its own prediction error.
        let same_plan = chosen.fingerprint() == native.fingerprint();
        let max_work = if same_plan { None } else { Some(budget) };
        let executor = Executor::new(
            self.catalog,
            ExecConfig {
                max_work,
                mode: self.mode,
                ..Default::default()
            },
        )
        .with_obs(self.obs.clone());
        match executor.execute(query, chosen) {
            Ok(result) => Ok(GuardedExecution {
                result,
                replanned: false,
                budget,
            }),
            Err(EngineError::WorkLimitExceeded { .. }) => {
                self.obs.count("lqo.guard.replans", 1);
                if self.flight.is_enabled() {
                    self.flight.publish(
                        Producer::Guard,
                        FlightEvent::BudgetTrip {
                            component: "exec".to_string(),
                            budget,
                        },
                    );
                    self.flight.publish(
                        Producer::Guard,
                        FlightEvent::Guard {
                            component: "exec".to_string(),
                            fault: "work-regression".to_string(),
                            action: "replan:native".to_string(),
                        },
                    );
                }
                // The cancelled plan burned at least `budget` work units,
                // i.e. at least `ratio ×` the native plan's prediction —
                // record the ratio so recovery tables can attribute how
                // far off the rails the chosen plan was before cancel.
                let ratio = if predicted > 0.0 {
                    budget / predicted
                } else {
                    f64::INFINITY
                };
                self.obs.with_query(|t| {
                    t.push_guard(GuardEvent {
                        component: "exec".to_string(),
                        fault: format!(
                            "work-regression:predicted={predicted:.0}:budget={budget:.0}:ratio={ratio:.2}"
                        ),
                        action: "replan:native".to_string(),
                    });
                });
                let native_exec = Executor::new(
                    self.catalog,
                    ExecConfig {
                        mode: self.mode,
                        ..Default::default()
                    },
                )
                .with_obs(self.obs.clone());
                let result = native_exec.execute(query, native)?;
                Ok(GuardedExecution {
                    result,
                    replanned: true,
                    budget,
                })
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::query::parse_query;
    use lqo_engine::stats::table_stats::CatalogStats;
    use lqo_engine::{Optimizer, TraditionalCardSource};
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, Arc<dyn CardSource>, SpjQuery) {
        let catalog = Arc::new(stats_like(100, 5).unwrap());
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        let card: Arc<dyn CardSource> =
            Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
        let q = parse_query(
            "SELECT COUNT(*) FROM users u, posts p, comments c \
             WHERE u.id = p.owner_user_id AND p.id = c.post_id AND u.reputation > 10",
        )
        .unwrap();
        (catalog, card, q)
    }

    #[test]
    fn native_plan_runs_unbudgeted() {
        let (catalog, card, q) = setup();
        let native = Optimizer::with_defaults(&catalog)
            .optimize_default(&q, card.as_ref())
            .unwrap()
            .plan;
        let guard = RegressionGuard::new(
            &catalog,
            CostParams::default(),
            RegressionGuardConfig::default(),
            ObsContext::disabled(),
        );
        let out = guard.execute(&q, &native, &native, card.as_ref()).unwrap();
        assert!(!out.replanned);
        assert!(out.result.work > 0.0);
    }

    #[test]
    fn parallel_guard_matches_serial_guard() {
        let (catalog, card, q) = setup();
        let native = Optimizer::with_defaults(&catalog)
            .optimize_default(&q, card.as_ref())
            .unwrap()
            .plan;
        let serial = RegressionGuard::new(
            &catalog,
            CostParams::default(),
            RegressionGuardConfig::default(),
            ObsContext::disabled(),
        );
        let parallel = RegressionGuard::new(
            &catalog,
            CostParams::default(),
            RegressionGuardConfig::default(),
            ObsContext::disabled(),
        )
        .with_exec_mode(ExecMode::Parallel { threads: 4 });
        let s = serial.execute(&q, &native, &native, card.as_ref()).unwrap();
        let p = parallel
            .execute(&q, &native, &native, card.as_ref())
            .unwrap();
        assert_eq!(s.result.count, p.result.count);
        assert_eq!(s.result.work.to_bits(), p.result.work.to_bits());
        assert_eq!(s.replanned, p.replanned);
    }

    #[test]
    fn batched_guard_matches_serial_guard() {
        let (catalog, card, q) = setup();
        let native = Optimizer::with_defaults(&catalog)
            .optimize_default(&q, card.as_ref())
            .unwrap()
            .plan;
        let serial = RegressionGuard::new(
            &catalog,
            CostParams::default(),
            RegressionGuardConfig::default(),
            ObsContext::disabled(),
        );
        let s = serial.execute(&q, &native, &native, card.as_ref()).unwrap();
        let modes = [
            ExecMode::Batched { batch_size: 64 },
            ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 64,
            },
        ];
        for mode in modes {
            let batched = RegressionGuard::new(
                &catalog,
                CostParams::default(),
                RegressionGuardConfig::default(),
                ObsContext::disabled(),
            )
            .with_exec_mode(mode);
            let b = batched
                .execute(&q, &native, &native, card.as_ref())
                .unwrap();
            assert_eq!(s.result.count, b.result.count, "{mode}");
            assert_eq!(s.result.work.to_bits(), b.result.work.to_bits(), "{mode}");
            assert_eq!(s.replanned, b.replanned, "{mode}");
        }
    }

    #[test]
    fn pathological_plan_is_cancelled_and_replanned() {
        let (catalog, card, q) = setup();
        let native = Optimizer::with_defaults(&catalog)
            .optimize_default(&q, card.as_ref())
            .unwrap()
            .plan;
        let native_count = Executor::with_defaults(&catalog)
            .execute(&q, &native)
            .unwrap()
            .count;
        // Force the worst join order via a cross-product-heavy greedy run
        // under wildly wrong cardinalities: scale estimates down so the
        // optimizer believes every join is free and picks carelessly.
        let obs = ObsContext::enabled();
        let guard = RegressionGuard::new(
            &catalog,
            CostParams::default(),
            RegressionGuardConfig {
                work_factor: 1.0,
                min_budget: 1.0,
            },
            obs.clone(),
        );
        // A deliberately bad plan: reverse the native join order by
        // building right-deep over the same scans via hints is involved;
        // instead, pick the plan chosen under inverted estimates.
        let lying = lqo_engine::optimizer::ScaledCardSource::new(card.clone(), 1e6);
        let chosen = Optimizer::with_defaults(&catalog)
            .greedy(
                &q,
                &lying,
                &lqo_engine::HintSet {
                    allow_hash: false,
                    allow_merge: false,
                    ..Default::default()
                },
            )
            .unwrap()
            .plan;
        obs.begin_query("regression-guard-test");
        let out = guard.execute(&q, &chosen, &native, card.as_ref()).unwrap();
        let trace = obs.end_query().unwrap();
        // Whatever path was taken, the answer matches the native answer.
        assert_eq!(out.result.count, native_count);
        if out.replanned {
            assert_eq!(
                obs.metrics()
                    .unwrap()
                    .snapshot()
                    .counter("lqo.guard.replans"),
                Some(1)
            );
            let ev = trace
                .guard
                .iter()
                .find(|g| g.component == "exec")
                .expect("cancel records a trace-visible guard event");
            assert!(
                ev.fault.starts_with("work-regression:predicted=") && ev.fault.contains(":ratio="),
                "guard event carries the predicted-work ratio: {}",
                ev.fault
            );
            assert_eq!(ev.action, "replan:native");
        }
    }
}
