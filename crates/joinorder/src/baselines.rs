//! Non-learned baselines wrapping the engine's plan enumerators.

use lqo_engine::query::JoinGraph;
use lqo_engine::{HintSet, JoinTree, Optimizer, Result, SpjQuery};

use crate::env::{require_tables, JoinEnv, JoinOrderSearch};

/// Exhaustive dynamic programming (the optimum under the environment's
/// cardinalities, up to the DP size limit).
#[derive(Debug, Default)]
pub struct DpBaseline {
    /// Restrict to left-deep trees (matches the RL methods' search space).
    pub left_deep_only: bool,
}

impl JoinOrderSearch for DpBaseline {
    fn name(&self) -> &'static str {
        if self.left_deep_only {
            "DP (left-deep)"
        } else {
            "DP (bushy)"
        }
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let optimizer = Optimizer::new(&env.catalog, env.params.clone());
        let hints = HintSet {
            left_deep_only: self.left_deep_only,
            ..HintSet::default()
        };
        let choice = optimizer.optimize(query, env.card.as_ref(), &hints)?;
        Ok(choice.plan.join_tree())
    }
}

/// GOO-style greedy enumeration.
#[derive(Debug, Default)]
pub struct GreedyBaseline;

impl JoinOrderSearch for GreedyBaseline {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let optimizer = Optimizer::new(&env.catalog, env.params.clone());
        let graph = JoinGraph::new(query);
        let _ = graph;
        let choice = optimizer.greedy(query, env.card.as_ref(), &HintSet::default())?;
        Ok(choice.plan.join_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_support::fixture;

    #[test]
    fn dp_never_loses_to_greedy() {
        let (env, queries) = fixture();
        let mut dp = DpBaseline::default();
        let mut greedy = GreedyBaseline;
        for q in &queries {
            let t_dp = dp.find_plan(&env, q).unwrap();
            let t_gr = greedy.find_plan(&env, q).unwrap();
            assert!(env.tree_cost(q, &t_dp) <= env.tree_cost(q, &t_gr) + 1e-9);
        }
    }

    #[test]
    fn search_works_under_erroneous_estimates_too() {
        // The traditional estimator is wrong on skewed joins; plans are
        // worse but must stay valid and executable.
        let (env, queries) = crate::env::test_support::traditional_env();
        let mut dp = DpBaseline::default();
        let mut greedy = GreedyBaseline;
        let ex = lqo_engine::Executor::with_defaults(&env.catalog);
        for q in &queries {
            for tree in [
                dp.find_plan(&env, q).unwrap(),
                greedy.find_plan(&env, q).unwrap(),
            ] {
                let plan = env.assign_operators(q, &tree);
                assert!(ex.execute(q, &plan).is_ok());
            }
        }
    }

    #[test]
    fn left_deep_dp_is_left_deep() {
        let (env, queries) = fixture();
        let mut dp = DpBaseline {
            left_deep_only: true,
        };
        for q in &queries {
            assert!(dp.find_plan(&env, q).unwrap().is_left_deep());
        }
    }
}
