//! Eddy-RL \[58\]: online tabular Q-learning over join orders for a single
//! query — the adaptive-processing view, where the order is adjusted
//! between "episodes" of the same running query using observed
//! intermediate sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lqo_engine::query::JoinGraph;
use lqo_engine::{JoinTree, Result, SpjQuery, TableSet};
use lqo_ml::qlearn::QTable;

use crate::dq::log_cost;
use crate::env::{require_tables, JoinEnv, JoinOrderSearch};

/// The Eddy-RL online learner. Fresh Q-table per query (nothing carries
/// across queries — it is an *adaptive processing* method).
pub struct EddyRl {
    /// Episodes (time slices) spent adapting per query.
    pub episodes: usize,
    /// Exploration rate.
    pub epsilon: f64,
    seed: u64,
}

impl EddyRl {
    /// New learner with the given per-query episode budget.
    pub fn new(episodes: usize) -> EddyRl {
        EddyRl {
            episodes,
            epsilon: 0.3,
            seed: 97,
        }
    }
}

impl JoinOrderSearch for EddyRl {
    fn name(&self) -> &'static str {
        "Eddy-RL"
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let graph = JoinGraph::new(query);
        let n = query.num_tables();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // State = joined-set bitmask; action = next table.
        let mut q: QTable<u64, usize> = QTable::new(0.4, 1.0);
        let mut best: Option<(f64, Vec<usize>)> = None;
        for _ in 0..self.episodes {
            let mut joined = TableSet::EMPTY;
            let mut order = Vec::with_capacity(n);
            let mut total = 0.0;
            while joined.len() < n {
                let cands = env.candidates(query, &graph, joined);
                // Q stores cost-to-go; pick by *negated* value so
                // epsilon-greedy's argmax minimizes cost.
                let neg_cands: Vec<usize> = cands.clone();
                let action = q
                    .epsilon_greedy(&joined.0, &neg_cands, self.epsilon, &mut rng)
                    .expect("non-empty candidates");
                let cost = if joined.is_empty() {
                    0.0
                } else {
                    log_cost(env.step_cost(query, joined, action))
                };
                total += cost;
                let next = joined.insert(action);
                let next_cands: Vec<usize> = if next.len() < n {
                    env.candidates(query, &graph, next)
                } else {
                    Vec::new()
                };
                // Negative cost as reward; max over next = min cost-to-go.
                q.update(joined.0, action, -cost, &next.0, &next_cands);
                order.push(action);
                joined = next;
            }
            if best.as_ref().is_none_or(|(c, _)| total < *c) {
                best = Some((total, order));
            }
        }
        let (_, order) = best.expect("at least one episode ran");
        Ok(JoinTree::left_deep(&order).expect("non-empty order"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::DpBaseline;
    use crate::env::test_support::fixture;

    #[test]
    fn eddy_adapts_within_a_query() {
        let (env, queries) = fixture();
        let mut eddy = EddyRl::new(80);
        let mut dp = DpBaseline {
            left_deep_only: true,
        };
        for q in &queries {
            let t = eddy.find_plan(&env, q).unwrap();
            assert_eq!(t.tables(), q.all_tables());
            let ratio = env.tree_cost(q, &t) / env.tree_cost(q, &dp.find_plan(&env, q).unwrap());
            assert!(ratio < 5.0, "Eddy-RL {ratio}x worse than DP");
        }
    }

    #[test]
    fn more_episodes_do_not_hurt() {
        let (env, queries) = fixture();
        let q = &queries[2];
        let few = EddyRl::new(3).find_plan(&env, q).unwrap();
        let many = EddyRl::new(120).find_plan(&env, q).unwrap();
        assert!(env.tree_cost(q, &many) <= env.tree_cost(q, &few) * 1.5 + 1e-9);
    }
}
