//! SkinnerDB-style online join ordering \[56\]: UCT Monte-Carlo tree search
//! over left-deep orders, where each search iteration plays a "time slice"
//! that evaluates a completed order by its cost under observed (true)
//! cardinalities. Regret is tracked across slices as in the original's
//! regret-bounded analysis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::query::JoinGraph;
use lqo_engine::{JoinTree, Result, SpjQuery, TableSet};
use lqo_ml::mcts::{Mdp, Uct};

use crate::env::{require_tables, JoinEnv, JoinOrderSearch};

/// The join-order MDP: states are left-deep prefixes.
struct OrderMdp<'a> {
    env: &'a JoinEnv,
    query: &'a SpjQuery,
    graph: JoinGraph,
    n: usize,
}

impl OrderMdp<'_> {
    fn order_cost(&self, order: &[usize]) -> f64 {
        let tree = JoinTree::left_deep(order).expect("non-empty order");
        self.env.tree_cost(self.query, &tree)
    }
}

impl Mdp for OrderMdp<'_> {
    type State = Vec<usize>;
    type Action = usize;

    fn actions(&self, state: &Vec<usize>) -> Vec<usize> {
        if state.len() >= self.n {
            return Vec::new();
        }
        let joined = TableSet::from_iter(state.iter().copied());
        self.env.candidates(self.query, &self.graph, joined)
    }

    fn step(&self, state: &Vec<usize>, action: &usize) -> Vec<usize> {
        let mut next = state.clone();
        next.push(*action);
        next
    }

    fn evaluate(&mut self, state: &Vec<usize>, rng: &mut StdRng) -> f64 {
        // Complete the order randomly (one time slice), then score it.
        let mut order = state.clone();
        let mut joined = TableSet::from_iter(order.iter().copied());
        while order.len() < self.n {
            let cands = self.env.candidates(self.query, &self.graph, joined);
            let pick = cands[rng.gen_range(0..cands.len())];
            order.push(pick);
            joined = joined.insert(pick);
        }
        let cost = self.order_cost(&order);
        // Reward in (0, 1]: smaller cost is better.
        1.0 / (1.0 + cost.max(1.0).ln() / 10.0)
    }
}

/// Outcome of a Skinner search: the chosen order plus regret accounting.
#[derive(Debug, Clone)]
pub struct SkinnerReport {
    /// Cost of the returned order.
    pub final_cost: f64,
    /// Cost of the best order seen in any time slice.
    pub best_seen_cost: f64,
    /// Cumulative regret: Σ (slice cost − best final cost) over slices.
    pub cumulative_regret: f64,
    /// Slices executed.
    pub slices: usize,
}

/// SkinnerDB-style UCT search.
pub struct SkinnerMcts {
    /// Time slices (UCT iterations) per query.
    pub slices: usize,
    /// UCB exploration constant.
    pub exploration: f64,
    seed: u64,
    /// Report of the most recent `find_plan` call.
    pub last_report: Option<SkinnerReport>,
}

impl SkinnerMcts {
    /// New search with the given slice budget.
    pub fn new(slices: usize) -> SkinnerMcts {
        SkinnerMcts {
            slices,
            exploration: 0.7,
            seed: 113,
            last_report: None,
        }
    }
}

impl JoinOrderSearch for SkinnerMcts {
    fn name(&self) -> &'static str {
        "Skinner-MCTS"
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let mut mdp = OrderMdp {
            env,
            query,
            graph: JoinGraph::new(query),
            n: query.num_tables(),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut uct = Uct::new(&mdp, Vec::new(), self.exploration);

        // Run slices, tracking per-slice completed-order costs for regret.
        let mut slice_costs = Vec::with_capacity(self.slices);
        for _ in 0..self.slices {
            uct.iterate(&mut mdp, &mut rng);
            // The most recently "played" order is approximated by the
            // current greedy path (the order Skinner would execute next).
            let mut path = uct.best_path();
            if path.len() < mdp.n {
                // Complete greedily by smallest next intermediate.
                let mut joined = TableSet::from_iter(path.iter().copied());
                while path.len() < mdp.n {
                    let cands = env.candidates(query, &mdp.graph, joined);
                    let next = *cands
                        .iter()
                        .min_by(|&&a, &&b| {
                            let ca = env.card.cardinality(query, joined.insert(a));
                            let cb = env.card.cardinality(query, joined.insert(b));
                            ca.total_cmp(&cb)
                        })
                        .unwrap();
                    path.push(next);
                    joined = joined.insert(next);
                }
            }
            slice_costs.push(mdp.order_cost(&path));
        }

        let final_order = {
            let mut path = uct.best_path();
            let mut joined = TableSet::from_iter(path.iter().copied());
            while path.len() < mdp.n {
                let cands = env.candidates(query, &mdp.graph, joined);
                let next = cands[0];
                path.push(next);
                joined = joined.insert(next);
            }
            path
        };
        let final_cost = mdp.order_cost(&final_order);
        let best_seen = slice_costs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(final_cost);
        let regret = slice_costs.iter().map(|&c| (c - final_cost).max(0.0)).sum();
        self.last_report = Some(SkinnerReport {
            final_cost,
            best_seen_cost: best_seen,
            cumulative_regret: regret,
            slices: self.slices,
        });
        Ok(JoinTree::left_deep(&final_order).expect("non-empty order"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::DpBaseline;
    use crate::env::test_support::fixture;

    #[test]
    fn skinner_close_to_dp_with_enough_slices() {
        let (env, queries) = fixture();
        let mut skinner = SkinnerMcts::new(400);
        let mut dp = DpBaseline {
            left_deep_only: true,
        };
        for q in &queries {
            let t = skinner.find_plan(&env, q).unwrap();
            assert_eq!(t.tables(), q.all_tables());
            let ratio = env.tree_cost(q, &t) / env.tree_cost(q, &dp.find_plan(&env, q).unwrap());
            assert!(ratio < 3.0, "Skinner {ratio}x worse than DP");
        }
    }

    #[test]
    fn report_is_populated_and_consistent() {
        let (env, queries) = fixture();
        let mut skinner = SkinnerMcts::new(100);
        skinner.find_plan(&env, &queries[0]).unwrap();
        let r = skinner.last_report.as_ref().unwrap();
        assert_eq!(r.slices, 100);
        assert!(r.best_seen_cost <= r.final_cost + 1e-9);
        assert!(r.cumulative_regret >= 0.0);
    }
}
