//! The shared environment join-order methods search in: operator
//! assignment, tree costing and the search trait.

use std::sync::Arc;

use lqo_engine::exec::workunits::CostParams;
use lqo_engine::optimizer::cost::join_op_cost;
use lqo_engine::optimizer::CardSource;
use lqo_engine::query::JoinGraph;
use lqo_engine::{Catalog, EngineError, JoinAlgo, JoinTree, PhysNode, Result, SpjQuery};

/// Everything a join-order search needs to evaluate candidate orders.
pub struct JoinEnv {
    /// The database.
    pub catalog: Arc<Catalog>,
    /// Cardinality estimates driving the cost evaluation.
    pub card: Arc<dyn CardSource>,
    /// Cost constants.
    pub params: CostParams,
}

impl JoinEnv {
    /// Build an environment.
    pub fn new(catalog: Arc<Catalog>, card: Arc<dyn CardSource>) -> JoinEnv {
        JoinEnv {
            catalog,
            card,
            params: CostParams::default(),
        }
    }

    /// Assign the cheapest physical operator to every join of a logical
    /// tree (cross products get nested loops).
    pub fn assign_operators(&self, query: &SpjQuery, tree: &JoinTree) -> PhysNode {
        match tree {
            JoinTree::Leaf(p) => PhysNode::scan(*p),
            JoinTree::Join(l, r) => {
                let left = self.assign_operators(query, l);
                let right = self.assign_operators(query, r);
                let lrows = self.card.cardinality(query, left.tables());
                let rrows = self.card.cardinality(query, right.tables());
                let out_set = left.tables().union(right.tables());
                let out = self.card.cardinality(query, out_set);
                let has_cond = !query
                    .joins_between(left.tables(), right.tables())
                    .is_empty();
                let algo = if !has_cond {
                    JoinAlgo::NestedLoop
                } else {
                    *JoinAlgo::ALL
                        .iter()
                        .min_by(|&&a, &&b| {
                            let ca = join_op_cost(
                                a,
                                &self.params,
                                lrows,
                                rrows,
                                out,
                                out_set.len(),
                                true,
                            );
                            let cb = join_op_cost(
                                b,
                                &self.params,
                                lrows,
                                rrows,
                                out,
                                out_set.len(),
                                true,
                            );
                            ca.total_cmp(&cb)
                        })
                        .unwrap()
                };
                PhysNode::join(algo, left, right)
            }
        }
    }

    /// Cost of a logical tree under best-operator assignment.
    pub fn tree_cost(&self, query: &SpjQuery, tree: &JoinTree) -> f64 {
        let plan = self.assign_operators(query, tree);
        lqo_engine::optimizer::plan_cost(
            &plan,
            query,
            &self.catalog,
            self.card.as_ref(),
            &self.params,
        )
        .unwrap_or(f64::INFINITY)
    }

    /// Incremental cost of appending table `next` to a left-deep prefix
    /// whose intermediate covers `joined` (used as the per-step RL
    /// reward signal).
    pub fn step_cost(&self, query: &SpjQuery, joined: lqo_engine::TableSet, next: usize) -> f64 {
        let lrows = self.card.cardinality(query, joined);
        let rset = lqo_engine::TableSet::singleton(next);
        let rrows = self.card.cardinality(query, rset);
        let out_set = joined.insert(next);
        let out = self.card.cardinality(query, out_set);
        let has_cond = !query.joins_between(joined, rset).is_empty();
        if has_cond {
            JoinAlgo::ALL
                .iter()
                .map(|&a| join_op_cost(a, &self.params, lrows, rrows, out, out_set.len(), true))
                .fold(f64::INFINITY, f64::min)
        } else {
            join_op_cost(
                JoinAlgo::NestedLoop,
                &self.params,
                lrows,
                rrows,
                out,
                out_set.len(),
                false,
            )
        }
    }

    /// Valid next tables for a left-deep prefix: graph neighbours when any
    /// exist, otherwise all remaining (cross product).
    pub fn candidates(
        &self,
        query: &SpjQuery,
        graph: &JoinGraph,
        joined: lqo_engine::TableSet,
    ) -> Vec<usize> {
        let all = query.all_tables();
        if joined.is_empty() {
            return all.iter().collect();
        }
        let remaining = all.minus(joined);
        let connected: Vec<usize> = graph
            .neighborhood(joined)
            .intersect(remaining)
            .iter()
            .collect();
        if connected.is_empty() {
            remaining.iter().collect()
        } else {
            connected
        }
    }
}

/// A join-order search method.
pub trait JoinOrderSearch {
    /// Method name for reports.
    fn name(&self) -> &'static str;

    /// Offline training over a workload (no-op for online methods and
    /// baselines).
    fn train(&mut self, _env: &JoinEnv, _workload: &[SpjQuery]) {}

    /// Produce a join order for one query.
    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree>;
}

/// Shared helper: error for empty queries.
pub(crate) fn require_tables(query: &SpjQuery) -> Result<()> {
    if query.num_tables() == 0 {
        Err(EngineError::NoPlanFound("query has no tables".into()))
    } else {
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use lqo_engine::datagen::imdb_like;
    use lqo_engine::query::parse_query;
    use lqo_engine::stats::table_stats::CatalogStats;
    use lqo_engine::{TraditionalCardSource, TrueCardOracle, TrueCardSource};

    /// IMDB-like fixture: environment (true cards for determinism) plus a
    /// chain-join workload of 3–5 tables.
    pub fn fixture() -> (JoinEnv, Vec<SpjQuery>) {
        let catalog = Arc::new(imdb_like(120, 5).unwrap());
        let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
        let card: Arc<dyn CardSource> = Arc::new(TrueCardSource::new(oracle));
        let env = JoinEnv::new(catalog, card);
        let queries = vec![
            parse_query(
                "SELECT COUNT(*) FROM title t, cast_info ci, person p \
                 WHERE t.id = ci.movie_id AND ci.person_id = p.id \
                 AND t.production_year > 1980 AND p.gender = 0",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_companies mc, company c, kind k \
                 WHERE t.id = mc.movie_id AND mc.company_id = c.id AND t.kind_id = k.id \
                 AND c.country_code < 10",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword kw, cast_info ci \
                 WHERE t.id = mk.movie_id AND mk.keyword_id = kw.id AND t.id = ci.movie_id \
                 AND kw.category < 5 AND t.votes > 50",
            )
            .unwrap(),
        ];
        (env, queries)
    }

    /// Environment with the traditional (erroneous) estimator.
    pub fn traditional_env() -> (JoinEnv, Vec<SpjQuery>) {
        let (env, queries) = fixture();
        let stats = Arc::new(CatalogStats::build_default(&env.catalog));
        let card: Arc<dyn CardSource> =
            Arc::new(TraditionalCardSource::new(env.catalog.clone(), stats));
        (JoinEnv::new(env.catalog, card), queries)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::fixture;
    use super::*;

    #[test]
    fn operator_assignment_produces_executable_plans() {
        let (env, queries) = fixture();
        for q in &queries {
            let order: Vec<usize> = (0..q.num_tables()).collect();
            let tree = JoinTree::left_deep(&order).unwrap();
            let plan = env.assign_operators(q, &tree);
            assert_eq!(plan.tables(), q.all_tables());
            let ex = lqo_engine::Executor::with_defaults(&env.catalog);
            assert!(ex.execute(q, &plan).is_ok());
        }
    }

    #[test]
    fn tree_cost_is_finite_and_order_sensitive() {
        let (env, queries) = fixture();
        let q = &queries[0];
        let a = env.tree_cost(q, &JoinTree::left_deep(&[0, 1, 2]).unwrap());
        let b = env.tree_cost(q, &JoinTree::left_deep(&[1, 2, 0]).unwrap());
        assert!(a.is_finite() && b.is_finite());
        assert_ne!(a, b);
    }

    #[test]
    fn candidates_respect_connectivity() {
        let (env, queries) = fixture();
        let q = &queries[0]; // chain t - ci - p
        let graph = JoinGraph::new(q);
        let joined = lqo_engine::TableSet::singleton(0); // title
        let cands = env.candidates(q, &graph, joined);
        assert_eq!(cands, vec![1]); // only cast_info connects
        let empty = env.candidates(q, &graph, lqo_engine::TableSet::EMPTY);
        assert_eq!(empty.len(), 3);
    }
}
