//! # lqo-join
//!
//! Learned join-order search (paper §2.1.3):
//!
//! * offline learning — [`DqJoinOrderer`] (DQ-style approximate
//!   Q-learning, \[15\]/\[24\]) and [`RtosLite`] (richer recursive state
//!   encoding, \[73\]);
//! * online learning — [`EddyRl`] (tabular Q-learning during adaptive
//!   processing, \[58\]) and [`SkinnerMcts`] (UCT over join orders with
//!   regret accounting, \[56\]);
//! * exhaustive and greedy baselines wrapping the engine's enumerators.
//!
//! All methods produce a logical [`lqo_engine::JoinTree`]; [`env::JoinEnv`] assigns
//! physical operators and costs trees consistently so the comparison in
//! experiment E6 is apples-to-apples.

#![warn(missing_docs)]

pub mod baselines;
pub mod dq;
pub mod eddy;
pub mod env;
pub mod rtos;
pub mod skinner;

pub use baselines::{DpBaseline, GreedyBaseline};
pub use dq::DqJoinOrderer;
pub use eddy::EddyRl;
pub use env::{JoinEnv, JoinOrderSearch};
pub use rtos::RtosLite;
pub use skinner::SkinnerMcts;
