//! RTOS-lite \[73\]: the same episodic Q-learning loop as DQ, but with a
//! richer state representation standing in for the TreeLSTM join-state
//! encoder — the state carries the (log) cardinality of the current
//! intermediate and the filtered size of every base table, so the network
//! can reason about sizes, not just identities. The TreeLSTM→features
//! substitution is recorded in DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::query::JoinGraph;
use lqo_engine::{JoinTree, Result, SpjQuery, TableSet};
use lqo_ml::mlp::{Mlp, MlpConfig};

use crate::dq::log_cost;
use crate::env::{require_tables, JoinEnv, JoinOrderSearch};

/// The RTOS-lite learner.
pub struct RtosLite {
    episodes: usize,
    max_tables: usize,
    net: Option<Mlp>,
    seed: u64,
}

impl RtosLite {
    /// New untrained learner.
    pub fn new(max_tables: usize, episodes: usize) -> RtosLite {
        RtosLite {
            episodes,
            max_tables,
            net: None,
            seed: 83,
        }
    }

    fn dim(&self) -> usize {
        // joined one-hot + action one-hot + per-table log filtered rows
        // + current intermediate log rows + next intermediate log rows.
        3 * self.max_tables + 2
    }

    fn features(
        &self,
        env: &JoinEnv,
        query: &SpjQuery,
        joined: TableSet,
        action: usize,
    ) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        for p in joined.iter() {
            if p < self.max_tables {
                x[p] = 1.0;
            }
        }
        if action < self.max_tables {
            x[self.max_tables + action] = 1.0;
        }
        for pos in 0..query.num_tables().min(self.max_tables) {
            let rows = env.card.cardinality(query, TableSet::singleton(pos));
            x[2 * self.max_tables + pos] = log_cost(rows);
        }
        let cur = if joined.is_empty() {
            0.0
        } else {
            env.card.cardinality(query, joined)
        };
        x[3 * self.max_tables] = log_cost(cur);
        x[3 * self.max_tables + 1] = log_cost(env.card.cardinality(query, joined.insert(action)));
        x
    }
}

impl JoinOrderSearch for RtosLite {
    fn name(&self) -> &'static str {
        "RTOS-lite"
    }

    fn train(&mut self, env: &JoinEnv, workload: &[SpjQuery]) {
        let mut net = Mlp::new(MlpConfig {
            learning_rate: 3e-3,
            seed: self.seed,
            ..MlpConfig::new(vec![self.dim(), 64, 32, 1])
        });
        let mut rng = StdRng::seed_from_u64(self.seed);
        for ep in 0..self.episodes {
            let eps = 0.5 * (1.0 - ep as f64 / self.episodes as f64);
            for query in workload {
                if query.num_tables() > self.max_tables {
                    continue;
                }
                let graph = JoinGraph::new(query);
                let n = query.num_tables();
                let mut joined = TableSet::EMPTY;
                let mut steps: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n);
                while joined.len() < n {
                    let cands = env.candidates(query, &graph, joined);
                    let action = if rng.gen_bool(eps.clamp(0.0, 1.0)) {
                        cands[rng.gen_range(0..cands.len())]
                    } else {
                        *cands
                            .iter()
                            .min_by(|&&a, &&b| {
                                let qa = net.predict_scalar(&self.features(env, query, joined, a));
                                let qb = net.predict_scalar(&self.features(env, query, joined, b));
                                qa.total_cmp(&qb)
                            })
                            .unwrap()
                    };
                    let r = if joined.is_empty() {
                        0.0
                    } else {
                        log_cost(env.step_cost(query, joined, action))
                    };
                    steps.push((self.features(env, query, joined, action), r));
                    joined = joined.insert(action);
                }
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                let mut future = 0.0;
                for (x, r) in steps.into_iter().rev() {
                    future += r;
                    xs.push(x);
                    ys.push(future);
                }
                net.train_scalar_batch(&xs, &ys);
            }
        }
        self.net = Some(net);
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let graph = JoinGraph::new(query);
        let n = query.num_tables();
        let mut joined = TableSet::EMPTY;
        let mut order = Vec::with_capacity(n);
        while joined.len() < n {
            let cands = env.candidates(query, &graph, joined);
            let next = match &self.net {
                Some(net) => *cands
                    .iter()
                    .min_by(|&&a, &&b| {
                        let qa = net.predict_scalar(&self.features(env, query, joined, a));
                        let qb = net.predict_scalar(&self.features(env, query, joined, b));
                        qa.total_cmp(&qb)
                    })
                    .unwrap(),
                // Untrained: smallest estimated intermediate first.
                None => *cands
                    .iter()
                    .min_by(|&&a, &&b| {
                        let ca = env.card.cardinality(query, joined.insert(a));
                        let cb = env.card.cardinality(query, joined.insert(b));
                        ca.total_cmp(&cb)
                    })
                    .unwrap(),
            };
            order.push(next);
            joined = joined.insert(next);
        }
        Ok(JoinTree::left_deep(&order).expect("non-empty order"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::DpBaseline;
    use crate::env::test_support::fixture;

    #[test]
    fn rtos_competitive_after_training() {
        let (env, queries) = fixture();
        let mut rtos = RtosLite::new(8, 40);
        rtos.train(&env, &queries);
        let mut dp = DpBaseline {
            left_deep_only: true,
        };
        for q in &queries {
            let t = rtos.find_plan(&env, q).unwrap();
            let ratio = env.tree_cost(q, &t) / env.tree_cost(q, &dp.find_plan(&env, q).unwrap());
            assert!(ratio < 8.0, "RTOS-lite {ratio}x worse than DP");
        }
    }

    #[test]
    fn untrained_uses_cardinality_heuristic() {
        let (env, queries) = fixture();
        let mut rtos = RtosLite::new(8, 10);
        let t = rtos.find_plan(&env, &queries[1]).unwrap();
        assert_eq!(t.tables(), queries[1].all_tables());
        assert!(t.is_left_deep());
    }
}
