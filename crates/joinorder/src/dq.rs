//! DQ-style offline RL join ordering \[15\]/\[24\]: an approximate Q-function
//! (small MLP) over (state, action) features, trained with episodic
//! Q-learning on per-step join cost; at inference the greedy policy builds
//! a left-deep order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::query::JoinGraph;
use lqo_engine::{JoinTree, Result, SpjQuery, TableSet};
use lqo_ml::mlp::{Mlp, MlpConfig};

use crate::env::{require_tables, JoinEnv, JoinOrderSearch};

/// Hyper-parameters of the DQ learner.
#[derive(Debug, Clone)]
pub struct DqConfig {
    /// Training episodes per query in the workload.
    pub episodes: usize,
    /// Exploration rate (linearly decayed to 0 over training).
    pub epsilon: f64,
    /// Q-network learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DqConfig {
    fn default() -> Self {
        DqConfig {
            episodes: 60,
            epsilon: 0.5,
            learning_rate: 3e-3,
            seed: 71,
        }
    }
}

/// The DQ join orderer. The Q-value of `(joined, next)` predicts the total
/// remaining (log) cost of completing the order; the policy minimizes it.
pub struct DqJoinOrderer {
    cfg: DqConfig,
    /// Q-network over `[joined one-hot | action one-hot]` per table slot.
    net: Option<Mlp>,
    max_tables: usize,
}

impl DqJoinOrderer {
    /// New untrained learner supporting queries up to `max_tables`.
    pub fn new(max_tables: usize, cfg: DqConfig) -> DqJoinOrderer {
        DqJoinOrderer {
            cfg,
            net: None,
            max_tables,
        }
    }

    fn features(&self, joined: TableSet, action: usize) -> Vec<f64> {
        let mut x = vec![0.0; 2 * self.max_tables];
        for p in joined.iter() {
            if p < self.max_tables {
                x[p] = 1.0;
            }
        }
        if action < self.max_tables {
            x[self.max_tables + action] = 1.0;
        }
        x
    }

    fn q(&self, joined: TableSet, action: usize) -> f64 {
        match &self.net {
            Some(net) => net.predict_scalar(&self.features(joined, action)),
            None => 0.0,
        }
    }

    /// Greedy left-deep rollout under the current Q (min remaining cost).
    fn greedy_order(&self, env: &JoinEnv, query: &SpjQuery, graph: &JoinGraph) -> Vec<usize> {
        let n = query.num_tables();
        let mut joined = TableSet::EMPTY;
        let mut order = Vec::with_capacity(n);
        while joined.len() < n {
            let cands = env.candidates(query, graph, joined);
            let next = cands
                .into_iter()
                .min_by(|&a, &b| self.q(joined, a).total_cmp(&self.q(joined, b)))
                .expect("non-empty candidates");
            order.push(next);
            joined = joined.insert(next);
        }
        order
    }
}

/// Scaled log of a per-step cost, the reward unit all RL methods share.
pub(crate) fn log_cost(c: f64) -> f64 {
    (c.max(1.0)).ln() / 25.0
}

impl JoinOrderSearch for DqJoinOrderer {
    fn name(&self) -> &'static str {
        "DQ"
    }

    fn train(&mut self, env: &JoinEnv, workload: &[SpjQuery]) {
        let mut net = Mlp::new(MlpConfig {
            learning_rate: self.cfg.learning_rate,
            seed: self.cfg.seed,
            ..MlpConfig::new(vec![2 * self.max_tables, 64, 1])
        });
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let total = self.cfg.episodes;
        for ep in 0..total {
            let eps = self.cfg.epsilon * (1.0 - ep as f64 / total as f64);
            for query in workload {
                if query.num_tables() > self.max_tables {
                    continue;
                }
                let graph = JoinGraph::new(query);
                let n = query.num_tables();
                let mut joined = TableSet::EMPTY;
                // Roll out one episode, collecting (features, step cost).
                let mut steps: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n);
                while joined.len() < n {
                    let cands = env.candidates(query, &graph, joined);
                    let action = if rng.gen_bool(eps.clamp(0.0, 1.0)) {
                        cands[rng.gen_range(0..cands.len())]
                    } else {
                        *cands
                            .iter()
                            .min_by(|&&a, &&b| {
                                net.predict_scalar(&self.features(joined, a))
                                    .total_cmp(&net.predict_scalar(&self.features(joined, b)))
                            })
                            .unwrap()
                    };
                    let r = if joined.is_empty() {
                        0.0 // the first pick costs nothing by itself
                    } else {
                        log_cost(env.step_cost(query, joined, action))
                    };
                    steps.push((self.features(joined, action), r));
                    joined = joined.insert(action);
                }
                // Monte-Carlo targets: remaining cumulative cost.
                let mut xs = Vec::with_capacity(steps.len());
                let mut ys = Vec::with_capacity(steps.len());
                let mut future = 0.0;
                for (x, r) in steps.into_iter().rev() {
                    future += r;
                    xs.push(x);
                    ys.push(future);
                }
                net.train_scalar_batch(&xs, &ys);
            }
        }
        self.net = Some(net);
    }

    fn find_plan(&mut self, env: &JoinEnv, query: &SpjQuery) -> Result<JoinTree> {
        require_tables(query)?;
        let graph = JoinGraph::new(query);
        let order = self.greedy_order(env, query, &graph);
        Ok(JoinTree::left_deep(&order).expect("non-empty order"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::DpBaseline;
    use crate::env::test_support::fixture;

    #[test]
    fn trained_dq_is_competitive_with_dp() {
        let (env, queries) = fixture();
        let mut dq = DqJoinOrderer::new(8, DqConfig::default());
        dq.train(&env, &queries);
        let mut dp = DpBaseline {
            left_deep_only: true,
        };
        for q in &queries {
            let t_dq = dq.find_plan(&env, q).unwrap();
            let t_dp = dp.find_plan(&env, q).unwrap();
            let ratio = env.tree_cost(q, &t_dq) / env.tree_cost(q, &t_dp);
            assert!(ratio < 8.0, "DQ plan {ratio}x worse than DP on {q}");
            assert!(t_dq.is_left_deep());
            assert_eq!(t_dq.tables(), q.all_tables());
        }
    }

    #[test]
    fn untrained_dq_still_produces_valid_plans() {
        let (env, queries) = fixture();
        let mut dq = DqJoinOrderer::new(8, DqConfig::default());
        let t = dq.find_plan(&env, &queries[0]).unwrap();
        assert_eq!(t.tables(), queries[0].all_tables());
    }
}
