//! The query join graph: tables as nodes, equi-join conditions as edges.

use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// Adjacency view of a query's join conditions, precomputed once per query
/// so connectivity tests inside DP enumeration are O(1) bit operations.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n: usize,
    /// `adj[i]` = set of tables sharing a join condition with table `i`.
    adj: Vec<TableSet>,
}

impl JoinGraph {
    /// Build the graph for a query. Join conditions whose aliases do not
    /// resolve are ignored (queries are validated before optimization).
    pub fn new(query: &SpjQuery) -> JoinGraph {
        let n = query.num_tables();
        let mut adj = vec![TableSet::EMPTY; n];
        for j in &query.joins {
            if let (Ok(l), Ok(r)) = (query.col_pos(&j.left), query.col_pos(&j.right)) {
                if l != r {
                    adj[l] = adj[l].insert(r);
                    adj[r] = adj[r].insert(l);
                }
            }
        }
        JoinGraph { n, adj }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.n
    }

    /// Neighbours of a single table.
    pub fn neighbors(&self, pos: usize) -> TableSet {
        self.adj[pos]
    }

    /// Union of neighbours of every member of `set`, excluding `set` itself.
    pub fn neighborhood(&self, set: TableSet) -> TableSet {
        let mut out = TableSet::EMPTY;
        for p in set.iter() {
            out = out.union(self.adj[p]);
        }
        out.minus(set)
    }

    /// True when the induced subgraph on `set` is connected (singletons and
    /// the empty set count as connected).
    pub fn is_connected(&self, set: TableSet) -> bool {
        let Some(start) = set.first() else {
            return true;
        };
        let mut seen = TableSet::singleton(start);
        let mut frontier = seen;
        while !frontier.is_empty() {
            let mut next = TableSet::EMPTY;
            for p in frontier.iter() {
                next = next.union(self.adj[p].intersect(set));
            }
            frontier = next.minus(seen);
            seen = seen.union(next);
        }
        set.is_subset_of(seen)
    }

    /// True when at least one join edge crosses from `a` to `b`.
    pub fn has_edge_between(&self, a: TableSet, b: TableSet) -> bool {
        for p in a.iter() {
            if !self.adj[p].intersect(b).is_empty() {
                return true;
            }
        }
        false
    }

    /// Enumerate all connected subsets of the graph with size in
    /// `[1, max_size]`. Used by workload generators and by estimators that
    /// precompute per-subset structures.
    pub fn connected_subsets(&self, max_size: usize) -> Vec<TableSet> {
        let mut out = Vec::new();
        // Grow subsets by adding neighbours, deduplicating via a set.
        let mut seen = std::collections::HashSet::new();
        let mut frontier: Vec<TableSet> = (0..self.n).map(TableSet::singleton).collect();
        for s in &frontier {
            seen.insert(*s);
            out.push(*s);
        }
        for _size in 2..=max_size {
            let mut next = Vec::new();
            for s in &frontier {
                for nb in self.neighborhood(*s).iter() {
                    let grown = s.insert(nb);
                    if seen.insert(grown) {
                        next.push(grown);
                        out.push(grown);
                    }
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::{ColRef, JoinCond, TableRef};

    /// Chain: t0 - t1 - t2.
    fn chain3() -> SpjQuery {
        SpjQuery::new(
            vec![
                TableRef::new("a", "t0"),
                TableRef::new("b", "t1"),
                TableRef::new("c", "t2"),
            ],
            vec![
                JoinCond::new(ColRef::new("t0", "id"), ColRef::new("t1", "a_id")),
                JoinCond::new(ColRef::new("t1", "id"), ColRef::new("t2", "b_id")),
            ],
            vec![],
        )
    }

    #[test]
    fn adjacency() {
        let g = JoinGraph::new(&chain3());
        assert_eq!(g.neighbors(0), TableSet::singleton(1));
        assert_eq!(g.neighbors(1), TableSet::from_iter([0, 2]));
    }

    #[test]
    fn connectivity() {
        let g = JoinGraph::new(&chain3());
        assert!(g.is_connected(TableSet::full(3)));
        assert!(g.is_connected(TableSet::from_iter([0, 1])));
        assert!(!g.is_connected(TableSet::from_iter([0, 2])));
        assert!(g.is_connected(TableSet::singleton(2)));
        assert!(g.is_connected(TableSet::EMPTY));
    }

    #[test]
    fn edge_between_partitions() {
        let g = JoinGraph::new(&chain3());
        assert!(g.has_edge_between(TableSet::from_iter([0, 1]), TableSet::singleton(2)));
        assert!(!g.has_edge_between(TableSet::singleton(0), TableSet::singleton(2)));
    }

    #[test]
    fn connected_subsets_of_chain() {
        let g = JoinGraph::new(&chain3());
        let subs = g.connected_subsets(3);
        // Chain of 3: {0},{1},{2},{01},{12},{012} = 6 connected subsets.
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&TableSet::full(3)));
        assert!(!subs.contains(&TableSet::from_iter([0, 2])));
    }

    #[test]
    fn neighborhood_excludes_self() {
        let g = JoinGraph::new(&chain3());
        assert_eq!(
            g.neighborhood(TableSet::from_iter([0, 1])),
            TableSet::singleton(2)
        );
    }
}
