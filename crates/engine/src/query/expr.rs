//! Query building blocks: table references, column references, comparison
//! predicates and equi-join conditions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::Value;

/// An entry of the `FROM` clause: a base table with an alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias used by predicates and joins (defaults to the table name).
    pub alias: String,
}

impl TableRef {
    /// Reference a table under an alias.
    pub fn new(table: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }

    /// Reference a table under its own name.
    pub fn bare(table: impl Into<String>) -> TableRef {
        let t = table.into();
        TableRef {
            alias: t.clone(),
            table: t,
        }
    }
}

/// A column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Alias of the table in the query's `FROM` list.
    pub alias: String,
    /// Column name within that table.
    pub column: String,
}

impl ColRef {
    /// Shorthand constructor.
    pub fn new(alias: impl Into<String>, column: impl Into<String>) -> ColRef {
        ColRef {
            alias: alias.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.alias, self.column)
    }
}

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// All operators, for featurization (one-hot encodings need a stable
    /// ordering).
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Position in [`CmpOp::ALL`], for one-hot features.
    pub fn index(self) -> usize {
        CmpOp::ALL.iter().position(|&o| o == self).unwrap()
    }

    /// Evaluate the operator on an ordering of `lhs.cmp(rhs)`.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A single-column filter predicate `alias.column OP literal`.
///
/// Conjunctions are represented as a list of predicates on the query;
/// `BETWEEN` desugars into a `Ge`/`Le` pair in the parser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Filtered column.
    pub col: ColRef,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl Predicate {
    /// Shorthand constructor.
    pub fn new(col: ColRef, op: CmpOp, value: Value) -> Predicate {
        Predicate { col, op, value }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.col, self.op, self.value)
    }
}

/// An equi-join condition `left = right` between two integer columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinCond {
    /// One side of the equality.
    pub left: ColRef,
    /// The other side.
    pub right: ColRef,
}

impl JoinCond {
    /// Shorthand constructor.
    pub fn new(left: ColRef, right: ColRef) -> JoinCond {
        JoinCond { left, right }
    }
}

impl fmt::Display for JoinCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.matches(Ordering::Equal));
        assert!(!CmpOp::Eq.matches(Ordering::Less));
        assert!(CmpOp::Neq.matches(Ordering::Greater));
        assert!(CmpOp::Lt.matches(Ordering::Less));
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Gt.matches(Ordering::Greater));
        assert!(CmpOp::Ge.matches(Ordering::Equal));
        assert!(!CmpOp::Ge.matches(Ordering::Less));
    }

    #[test]
    fn cmp_op_index_is_stable() {
        for (i, op) in CmpOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn display_forms() {
        let p = Predicate::new(ColRef::new("t", "x"), CmpOp::Ge, Value::Int(5));
        assert_eq!(p.to_string(), "t.x >= 5");
        let j = JoinCond::new(ColRef::new("a", "id"), ColRef::new("b", "a_id"));
        assert_eq!(j.to_string(), "a.id = b.a_id");
    }

    #[test]
    fn bare_table_ref_aliases_to_itself() {
        let t = TableRef::bare("title");
        assert_eq!(t.alias, "title");
    }
}
