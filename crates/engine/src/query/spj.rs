//! The SPJ query: `SELECT COUNT(*) FROM … WHERE <joins AND filters>`.
//!
//! All workloads in the paper's benchmark section (JOB, STATS-CEB) are
//! count-star SPJ queries, which is exactly what cardinality estimation is
//! defined over, so the engine's query model is specialized to them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{EngineError, Result};
use crate::query::expr::{ColRef, JoinCond, Predicate, TableRef};
use crate::query::table_set::TableSet;
use crate::types::DataType;
use crate::Catalog;

/// A select-project-join query over base tables with conjunctive
/// single-column filters and equi-joins. The implicit output is
/// `COUNT(*)` — i.e. the query's cardinality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpjQuery {
    /// `FROM` list; position in this vector is the table's identity in
    /// every [`TableSet`].
    pub tables: Vec<TableRef>,
    /// Equi-join conditions.
    pub joins: Vec<JoinCond>,
    /// Filter predicates.
    pub predicates: Vec<Predicate>,
}

impl SpjQuery {
    /// Create a query from parts.
    pub fn new(tables: Vec<TableRef>, joins: Vec<JoinCond>, predicates: Vec<Predicate>) -> Self {
        SpjQuery {
            tables,
            joins,
            predicates,
        }
    }

    /// Number of relations.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The set of all table positions.
    pub fn all_tables(&self) -> TableSet {
        TableSet::full(self.tables.len())
    }

    /// Resolve an alias to its position in `tables`.
    pub fn alias_pos(&self, alias: &str) -> Result<usize> {
        self.tables
            .iter()
            .position(|t| t.alias == alias)
            .ok_or_else(|| EngineError::UnknownAlias(alias.to_string()))
    }

    /// Position of the table a column reference lives on.
    pub fn col_pos(&self, col: &ColRef) -> Result<usize> {
        self.alias_pos(&col.alias)
    }

    /// Predicates filtering the table at `pos`.
    pub fn predicates_on(&self, pos: usize) -> Vec<&Predicate> {
        let alias = &self.tables[pos].alias;
        self.predicates
            .iter()
            .filter(|p| &p.col.alias == alias)
            .collect()
    }

    /// Join conditions whose both sides fall inside `set`.
    pub fn joins_within(&self, set: TableSet) -> Vec<&JoinCond> {
        self.joins
            .iter()
            .filter(|j| {
                let l = self.col_pos(&j.left);
                let r = self.col_pos(&j.right);
                matches!((l, r), (Ok(l), Ok(r)) if set.contains(l) && set.contains(r))
            })
            .collect()
    }

    /// Join conditions with one side in `left` and the other in `right`.
    pub fn joins_between(&self, left: TableSet, right: TableSet) -> Vec<&JoinCond> {
        self.joins
            .iter()
            .filter(|j| {
                let (Ok(l), Ok(r)) = (self.col_pos(&j.left), self.col_pos(&j.right)) else {
                    return false;
                };
                (left.contains(l) && right.contains(r)) || (left.contains(r) && right.contains(l))
            })
            .collect()
    }

    /// The sub-query induced by a subset of tables: keeps the tables in
    /// `set` (renumbered in increasing position order), all joins internal
    /// to `set`, and all predicates on members of `set`.
    pub fn induced(&self, set: TableSet) -> SpjQuery {
        let tables: Vec<TableRef> = set.iter().map(|p| self.tables[p].clone()).collect();
        let joins = self
            .joins_within(set)
            .into_iter()
            .cloned()
            .collect::<Vec<_>>();
        let aliases: Vec<&str> = tables.iter().map(|t| t.alias.as_str()).collect();
        let predicates = self
            .predicates
            .iter()
            .filter(|p| aliases.contains(&p.col.alias.as_str()))
            .cloned()
            .collect();
        SpjQuery {
            tables,
            joins,
            predicates,
        }
    }

    /// A canonical string uniquely identifying the semantics of the
    /// sub-query induced by `set`. Used as cache key by the true-cardinality
    /// oracle so repeated sub-plans across the workload are executed once.
    pub fn canonical_key(&self, set: TableSet) -> String {
        let mut tables: Vec<String> = set
            .iter()
            .map(|p| format!("{} {}", self.tables[p].table, self.tables[p].alias))
            .collect();
        tables.sort();
        let mut preds: Vec<String> = set
            .iter()
            .flat_map(|p| self.predicates_on(p))
            .map(|p| p.to_string())
            .collect();
        preds.sort();
        let mut joins: Vec<String> = self
            .joins_within(set)
            .iter()
            .map(|j| {
                // Order the two sides deterministically.
                let a = j.left.to_string();
                let b = j.right.to_string();
                if a <= b {
                    format!("{a}={b}")
                } else {
                    format!("{b}={a}")
                }
            })
            .collect();
        joins.sort();
        format!(
            "F[{}]J[{}]P[{}]",
            tables.join(","),
            joins.join(","),
            preds.join(",")
        )
    }

    /// Validate the query against a catalog: every table, alias and column
    /// must resolve; aliases must be unique; join columns must be integers.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for (i, t) in self.tables.iter().enumerate() {
            catalog.table(&t.table)?;
            if self.tables[..i].iter().any(|o| o.alias == t.alias) {
                return Err(EngineError::Parse(format!("duplicate alias: {}", t.alias)));
            }
        }
        let check_col = |c: &ColRef, need_int: bool| -> Result<()> {
            let pos = self.alias_pos(&c.alias)?;
            let table = catalog.table(&self.tables[pos].table)?;
            let col = table.column_by_name(&c.column)?;
            if need_int && col.dtype() != DataType::Int {
                return Err(EngineError::TypeMismatch {
                    expected: "INT join column",
                    found: format!("{} for {c}", col.dtype()),
                });
            }
            Ok(())
        };
        for j in &self.joins {
            check_col(&j.left, true)?;
            check_col(&j.right, true)?;
        }
        for p in &self.predicates {
            check_col(&p.col, false)?;
        }
        Ok(())
    }
}

impl fmt::Display for SpjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT COUNT(*) FROM ")?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if t.table == t.alias {
                write!(f, "{}", t.table)?;
            } else {
                write!(f, "{} {}", t.table, t.alias)?;
            }
        }
        let mut conds: Vec<String> = self.joins.iter().map(|j| j.to_string()).collect();
        conds.extend(self.predicates.iter().map(|p| p.to_string()));
        if !conds.is_empty() {
            write!(f, " WHERE {}", conds.join(" AND "))?;
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::CmpOp;
    use crate::table::TableBuilder;
    use crate::types::Value;

    fn two_table_query() -> SpjQuery {
        SpjQuery::new(
            vec![TableRef::new("a", "x"), TableRef::new("b", "y")],
            vec![JoinCond::new(
                ColRef::new("x", "id"),
                ColRef::new("y", "a_id"),
            )],
            vec![Predicate::new(
                ColRef::new("x", "id"),
                CmpOp::Gt,
                Value::Int(0),
            )],
        )
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", vec![1, 2])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", vec![1])
                .int("a_id", vec![2])
                .float("score", vec![0.5])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn alias_resolution() {
        let q = two_table_query();
        assert_eq!(q.alias_pos("y").unwrap(), 1);
        assert!(q.alias_pos("z").is_err());
    }

    #[test]
    fn joins_within_and_between() {
        let q = two_table_query();
        assert_eq!(q.joins_within(TableSet::full(2)).len(), 1);
        assert_eq!(q.joins_within(TableSet::singleton(0)).len(), 0);
        assert_eq!(
            q.joins_between(TableSet::singleton(0), TableSet::singleton(1))
                .len(),
            1
        );
        assert_eq!(
            q.joins_between(TableSet::singleton(1), TableSet::singleton(0))
                .len(),
            1
        );
    }

    #[test]
    fn induced_subquery_keeps_local_parts() {
        let q = two_table_query();
        let sub = q.induced(TableSet::singleton(0));
        assert_eq!(sub.tables.len(), 1);
        assert_eq!(sub.joins.len(), 0);
        assert_eq!(sub.predicates.len(), 1);
    }

    #[test]
    fn canonical_key_is_order_insensitive() {
        let q = two_table_query();
        let mut q2 = q.clone();
        q2.tables.reverse();
        // Positions changed, but the full-set key must be identical.
        assert_eq!(
            q.canonical_key(q.all_tables()),
            q2.canonical_key(q2.all_tables())
        );
    }

    #[test]
    fn validate_checks_types_and_duplicates() {
        let c = catalog();
        let q = two_table_query();
        q.validate(&c).unwrap();

        // Join on a float column is rejected.
        let bad = SpjQuery::new(
            vec![TableRef::new("a", "x"), TableRef::new("b", "y")],
            vec![JoinCond::new(
                ColRef::new("x", "id"),
                ColRef::new("y", "score"),
            )],
            vec![],
        );
        assert!(bad.validate(&c).is_err());

        // Duplicate aliases are rejected.
        let dup = SpjQuery::new(
            vec![TableRef::new("a", "x"), TableRef::new("b", "x")],
            vec![],
            vec![],
        );
        assert!(dup.validate(&c).is_err());
    }

    #[test]
    fn display_is_sqlish() {
        let q = two_table_query();
        let s = q.to_string();
        assert!(s.starts_with("SELECT COUNT(*) FROM a x, b y WHERE "));
        assert!(s.contains("x.id = y.a_id"));
        assert!(s.contains("x.id > 0"));
    }
}
