//! A small SQL-ish parser for count-star SPJ queries.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT COUNT ( * ) FROM from (WHERE cond (AND cond)*)? ;?
//! from    := table (AS? ident)? (, table (AS? ident)?)*
//! cond    := col op literal
//!          | col = col              -- equi-join
//!          | col BETWEEN literal AND literal
//! col     := ident . ident
//! op      := = | <> | != | < | <= | > | >=
//! literal := int | float | 'text'
//! ```

use crate::error::{EngineError, Result};
use crate::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
use crate::query::spj::SpjQuery;
use crate::types::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(String),
}

fn keyword_eq(tok: &Token, kw: &str) -> bool {
    matches!(tok, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| EngineError::Parse(format!("bad float literal: {text}")))?;
                out.push(Token::Float(v));
            } else {
                let v = text
                    .parse::<i64>()
                    .map_err(|_| EngineError::Parse(format!("bad int literal: {text}")))?;
                out.push(Token::Int(v));
            }
        } else if c == '\'' {
            let start = i + 1;
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(EngineError::Parse("unterminated string literal".into()));
            }
            out.push(Token::Str(chars[start..i].iter().collect()));
            i += 1;
        } else {
            // Multi-char operators first.
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
                out.push(Token::Symbol(two));
                i += 2;
            } else {
                out.push(Token::Symbol(c.to_string()));
                i += 1;
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EngineError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let t = self.next()?;
        if keyword_eq(&t, kw) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!("expected {kw}, got {t:?}")))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        let t = self.next()?;
        if matches!(&t, Token::Symbol(s) if s == sym) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!("expected '{sym}', got {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            t => Err(EngineError::Parse(format!(
                "expected identifier, got {t:?}"
            ))),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let alias = self.ident()?;
        self.expect_symbol(".")?;
        let column = self.ident()?;
        Ok(ColRef::new(alias, column))
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Float(v) => Ok(Value::Float(v)),
            Token::Str(s) => Ok(Value::Text(s)),
            t => Err(EngineError::Parse(format!("expected literal, got {t:?}"))),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        match self.next()? {
            Token::Symbol(s) => match s.as_str() {
                "=" => Ok(CmpOp::Eq),
                "<>" | "!=" => Ok(CmpOp::Neq),
                "<" => Ok(CmpOp::Lt),
                "<=" => Ok(CmpOp::Le),
                ">" => Ok(CmpOp::Gt),
                ">=" => Ok(CmpOp::Ge),
                other => Err(EngineError::Parse(format!("unknown operator '{other}'"))),
            },
            t => Err(EngineError::Parse(format!("expected operator, got {t:?}"))),
        }
    }
}

/// Parse a count-star SPJ query.
pub fn parse_query(input: &str) -> Result<SpjQuery> {
    let mut p = Parser {
        toks: tokenize(input)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    p.expect_keyword("COUNT")?;
    p.expect_symbol("(")?;
    p.expect_symbol("*")?;
    p.expect_symbol(")")?;
    p.expect_keyword("FROM")?;

    let mut tables = Vec::new();
    loop {
        let table = p.ident()?;
        // Optional alias: `t alias`, `t AS alias`.
        let alias = match p.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("AS") => {
                p.next()?;
                Some(p.ident()?)
            }
            Some(Token::Ident(s)) if !s.eq_ignore_ascii_case("WHERE") => {
                let a = s.clone();
                p.next()?;
                Some(a)
            }
            _ => None,
        };
        tables.push(match alias {
            Some(a) => TableRef::new(table, a),
            None => TableRef::bare(table),
        });
        if matches!(p.peek(), Some(Token::Symbol(s)) if s == ",") {
            p.next()?;
        } else {
            break;
        }
    }

    let mut joins = Vec::new();
    let mut predicates = Vec::new();
    if p.peek().is_some_and(|t| keyword_eq(t, "WHERE")) {
        p.next()?;
        loop {
            let col = p.col_ref()?;
            if p.peek().is_some_and(|t| keyword_eq(t, "BETWEEN")) {
                p.next()?;
                let lo = p.literal()?;
                p.expect_keyword("AND")?;
                let hi = p.literal()?;
                predicates.push(Predicate::new(col.clone(), CmpOp::Ge, lo));
                predicates.push(Predicate::new(col, CmpOp::Le, hi));
            } else {
                let op = p.cmp_op()?;
                // Column on the RHS means this is a join condition.
                let is_col = matches!(
                    (p.peek(), p.toks.get(p.pos + 1)),
                    (Some(Token::Ident(_)), Some(Token::Symbol(s))) if s == "."
                );
                if is_col {
                    if op != CmpOp::Eq {
                        return Err(EngineError::Parse("only equi-joins are supported".into()));
                    }
                    let rhs = p.col_ref()?;
                    joins.push(JoinCond::new(col, rhs));
                } else {
                    let v = p.literal()?;
                    predicates.push(Predicate::new(col, op, v));
                }
            }
            if p.peek().is_some_and(|t| keyword_eq(t, "AND")) {
                p.next()?;
            } else {
                break;
            }
        }
    }
    // Optional trailing semicolon.
    if matches!(p.peek(), Some(Token::Symbol(s)) if s == ";") {
        p.next()?;
    }
    if p.pos != p.toks.len() {
        return Err(EngineError::Parse(format!(
            "trailing input at token {}",
            p.pos
        )));
    }
    Ok(SpjQuery::new(tables, joins, predicates))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_join_query() {
        let q = parse_query(
            "SELECT COUNT(*) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id AND t.production_year > 1990 AND ci.role_id = 2;",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.tables[0].alias, "t");
    }

    #[test]
    fn parse_between_desugars() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE t.x BETWEEN 3 AND 7").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].op, CmpOp::Ge);
        assert_eq!(q.predicates[1].op, CmpOp::Le);
    }

    #[test]
    fn parse_as_alias_and_bare() {
        let q = parse_query("SELECT COUNT(*) FROM users AS u, posts").unwrap();
        assert_eq!(q.tables[0].alias, "u");
        assert_eq!(q.tables[1].alias, "posts");
    }

    #[test]
    fn parse_string_and_float_literals() {
        let q =
            parse_query("SELECT COUNT(*) FROM t WHERE t.s = 'abc' AND t.f <= 2.5 AND t.i <> -4")
                .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[0].value, Value::Text("abc".into()));
        assert_eq!(q.predicates[1].value, Value::Float(2.5));
        assert_eq!(q.predicates[2].value, Value::Int(-4));
    }

    #[test]
    fn roundtrip_display_parse() {
        let q =
            parse_query("SELECT COUNT(*) FROM a x, b y WHERE x.id = y.a_id AND x.v >= 10").unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn rejects_non_equi_join() {
        let r = parse_query("SELECT COUNT(*) FROM a x, b y WHERE x.id < y.id");
        assert!(r.is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT * FROM t").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE t.x = 'oops").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t extra tokens here").is_err());
    }
}
