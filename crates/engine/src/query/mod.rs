//! SPJ query representation: table references, predicates, equi-join
//! conditions, join graphs and a small SQL-ish parser.

pub mod expr;
pub mod join_graph;
pub mod parser;
pub mod spj;
pub mod table_set;

pub use expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
pub use join_graph::JoinGraph;
pub use parser::parse_query;
pub use spj::SpjQuery;
pub use table_set::TableSet;
