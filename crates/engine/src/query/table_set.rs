//! Compact bitset over the tables of one query (≤ 64 relations).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A set of table positions within a single [`crate::query::SpjQuery`].
///
/// Position `i` refers to `query.tables[i]`. The optimizer's dynamic
/// programming, the true-cardinality oracle and every cardinality-estimator
/// interface key sub-plans by this type.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TableSet(pub u64);

impl TableSet {
    /// The empty set.
    pub const EMPTY: TableSet = TableSet(0);

    /// Set containing a single table position.
    pub fn singleton(pos: usize) -> TableSet {
        debug_assert!(pos < 64);
        TableSet(1u64 << pos)
    }

    /// Set containing positions `0..n`.
    pub fn full(n: usize) -> TableSet {
        debug_assert!(n <= 64);
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of positions (also available through the
    /// standard [`FromIterator`] impl, so `collect()` works).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = usize>) -> TableSet {
        iter.into_iter().collect()
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, pos: usize) -> bool {
        pos < 64 && (self.0 >> pos) & 1 == 1
    }

    /// Set with `pos` added.
    #[must_use]
    pub fn insert(self, pos: usize) -> TableSet {
        TableSet(self.0 | (1u64 << pos))
    }

    /// Set with `pos` removed.
    #[must_use]
    pub fn remove(self, pos: usize) -> TableSet {
        TableSet(self.0 & !(1u64 << pos))
    }

    /// Union.
    #[must_use]
    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    /// Difference (`self \ other`).
    #[must_use]
    pub fn minus(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    /// True when `self ⊆ other`.
    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True when the sets share no member.
    pub fn is_disjoint(self, other: TableSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterate member positions in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let pos = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(pos)
            }
        })
    }

    /// Smallest member, if any.
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Enumerate all non-empty proper subsets of `self`.
    ///
    /// Used by DP-over-subsets plan enumeration: for a set `S` this yields
    /// every `S1` with `∅ ⊂ S1 ⊂ S`, from which the complement `S \ S1`
    /// forms the join partner.
    pub fn proper_subsets(self) -> impl Iterator<Item = TableSet> {
        let full = self.0;
        let mut sub = full & full.wrapping_sub(1); // largest proper subset
        let mut done = full == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            if sub == 0 {
                done = true;
                return None;
            }
            let cur = TableSet(sub);
            sub = (sub - 1) & full;
            Some(cur)
        })
    }
}

impl FromIterator<usize> for TableSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> TableSet {
        let mut s = TableSet::EMPTY;
        for p in iter {
            s = s.insert(p);
        }
        s
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = TableSet::from_iter([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(1));
        assert_eq!(s.remove(2).len(), 2);
        assert_eq!(s.first(), Some(0));
        assert_eq!(s.to_string(), "{0,2,5}");
    }

    #[test]
    fn set_algebra() {
        let a = TableSet::from_iter([0, 1]);
        let b = TableSet::from_iter([1, 2]);
        assert_eq!(a.union(b), TableSet::from_iter([0, 1, 2]));
        assert_eq!(a.intersect(b), TableSet::singleton(1));
        assert_eq!(a.minus(b), TableSet::singleton(0));
        assert!(a.is_subset_of(TableSet::full(3)));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(TableSet::singleton(2)));
    }

    #[test]
    fn proper_subsets_of_three_elements() {
        let s = TableSet::from_iter([0, 1, 3]);
        let subs: Vec<TableSet> = s.proper_subsets().collect();
        // 2^3 - 2 = 6 proper non-empty subsets.
        assert_eq!(subs.len(), 6);
        for sub in &subs {
            assert!(sub.is_subset_of(s));
            assert!(!sub.is_empty());
            assert_ne!(*sub, s);
        }
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(TableSet::singleton(4).proper_subsets().count(), 0);
        assert_eq!(TableSet::EMPTY.proper_subsets().count(), 0);
    }

    #[test]
    fn full_set() {
        assert_eq!(TableSet::full(0), TableSet::EMPTY);
        assert_eq!(TableSet::full(3).len(), 3);
    }

    #[test]
    fn iter_order() {
        let s = TableSet::from_iter([7, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
    }
}
