//! Scalar value and data-type definitions.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Logical data type of a column.
///
/// Join keys are restricted to [`DataType::Int`]; the synthetic generators
/// only ever join integer primary/foreign keys, matching the PK–FK structure
/// of the IMDB and STATS schemas the paper's benchmark section relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Dictionary-encoded string.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A scalar value appearing in predicates and query literals.
///
/// Columns themselves never store `Null`; it exists so the parser can
/// faithfully reject `IS NULL`-style constructs with a typed error rather
/// than a panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Absent value (parser-level only; columns never store it).
    Null,
}

impl Value {
    /// The data type of this value, if it is not `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Null => None,
        }
    }

    /// Numeric view used by histogram statistics: ints and floats map to
    /// `f64`, text maps to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view used for join keys.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Compare two values of the same type. Cross-type numeric comparisons
    /// (`Int` vs `Float`) are supported; anything else returns `None`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_compare_same_type() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Float(2.0).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("b".into()).compare(&Value::Text("a".into())),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn value_compare_cross_numeric() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(2.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn value_compare_incompatible_is_none() {
        assert_eq!(Value::Int(1).compare(&Value::Text("1".into())), None);
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
    }

    #[test]
    fn value_numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), None);
    }
}
