//! In-memory tables: a schema plus one [`Column`] per column definition.

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::schema::{ColumnDef, TableSchema};
use crate::types::Value;

/// An immutable in-memory table. Built once by a generator (or appended to
/// wholesale for drift experiments), then only read.
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema of the table.
    pub schema: TableSchema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Build a table from a schema and matching columns.
    ///
    /// Returns an error when the column count or any column length is
    /// inconsistent with the schema.
    pub fn new(schema: TableSchema, columns: Vec<Column>) -> Result<Table> {
        if schema.columns.len() != columns.len() {
            return Err(EngineError::InvalidPlan(format!(
                "table {}: schema has {} columns but {} provided",
                schema.name,
                schema.columns.len(),
                columns.len()
            )));
        }
        let nrows = columns.first().map_or(0, Column::len);
        for (def, col) in schema.columns.iter().zip(&columns) {
            if col.len() != nrows {
                return Err(EngineError::InvalidPlan(format!(
                    "table {}: column {} has {} rows, expected {}",
                    schema.name,
                    def.name,
                    col.len(),
                    nrows
                )));
            }
            if col.dtype() != def.dtype {
                return Err(EngineError::TypeMismatch {
                    expected: "column type matching schema",
                    found: format!("{} for column {}", col.dtype(), def.name),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            nrows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Borrow a column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Borrow a column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .column_index(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                table: self.schema.name.clone(),
                column: name.to_string(),
            })?;
        Ok(&self.columns[idx])
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Materialize one row as values (slow path; used by tests and display).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(idx)).collect()
    }

    /// Append all rows of `other` (same schema) to this table. Used by the
    /// data-drift experiments (E1) to model inserts.
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema.columns != other.schema.columns {
            return Err(EngineError::TypeMismatch {
                expected: "identical schema for append",
                found: other.schema.name.clone(),
            });
        }
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            match (dst, src) {
                (Column::Int(d), Column::Int(s)) => d.extend_from_slice(s),
                (Column::Float(d), Column::Float(s)) => d.extend_from_slice(s),
                (
                    Column::Text { dict, codes },
                    Column::Text {
                        dict: sdict,
                        codes: scodes,
                    },
                ) => {
                    // Re-encode source codes into the destination dictionary.
                    let mut remap = Vec::with_capacity(sdict.len());
                    for s in sdict {
                        let code = dict.iter().position(|d| d == s).unwrap_or_else(|| {
                            dict.push(s.clone());
                            dict.len() - 1
                        });
                        remap.push(code as u32);
                    }
                    codes.extend(scodes.iter().map(|&c| remap[c as usize]));
                }
                _ => {
                    return Err(EngineError::TypeMismatch {
                        expected: "matching column types for append",
                        found: "mixed".to_string(),
                    })
                }
            }
        }
        self.nrows += other.nrows;
        Ok(())
    }
}

/// Convenience builder used by the data generators.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    defs: Vec<ColumnDef>,
    cols: Vec<Column>,
    pk: Option<String>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add an integer column.
    pub fn int(mut self, name: impl Into<String>, data: Vec<i64>) -> Self {
        self.defs
            .push(ColumnDef::new(name, crate::types::DataType::Int));
        self.cols.push(Column::Int(data));
        self
    }

    /// Add a float column.
    pub fn float(mut self, name: impl Into<String>, data: Vec<f64>) -> Self {
        self.defs
            .push(ColumnDef::new(name, crate::types::DataType::Float));
        self.cols.push(Column::Float(data));
        self
    }

    /// Add a text column from raw strings.
    pub fn text(mut self, name: impl Into<String>, data: Vec<String>) -> Self {
        self.defs
            .push(ColumnDef::new(name, crate::types::DataType::Text));
        self.cols.push(Column::from_strings(data));
        self
    }

    /// Mark a column as the primary key.
    pub fn primary_key(mut self, name: impl Into<String>) -> Self {
        self.pk = Some(name.into());
        self
    }

    /// Finish, validating shape consistency.
    pub fn build(self) -> Result<Table> {
        let schema = TableSchema::new(self.name, self.defs, self.pk.as_deref());
        Table::new(schema, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn small() -> Table {
        TableBuilder::new("t")
            .int("id", vec![1, 2, 3])
            .float("x", vec![0.1, 0.2, 0.3])
            .text("s", vec!["a".into(), "b".into(), "a".into()])
            .primary_key("id")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let t = small();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.schema.primary_key, Some(0));
        assert_eq!(t.column_by_name("x").unwrap().dtype(), DataType::Float);
        assert_eq!(
            t.row(2),
            vec![Value::Int(3), Value::Float(0.3), Value::Text("a".into())]
        );
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let r = TableBuilder::new("t")
            .int("a", vec![1, 2])
            .int("b", vec![1])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn append_grows_and_remaps_dictionary() {
        let mut t = small();
        let extra = TableBuilder::new("t")
            .int("id", vec![4])
            .float("x", vec![0.4])
            .text("s", vec!["c".into()])
            .primary_key("id")
            .build()
            .unwrap();
        t.append(&extra).unwrap();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.row(3)[2], Value::Text("c".into()));
    }

    #[test]
    fn append_schema_mismatch_rejected() {
        let mut t = small();
        let other = TableBuilder::new("u").int("id", vec![1]).build().unwrap();
        assert!(t.append(&other).is_err());
    }

    #[test]
    fn unknown_column_error() {
        let t = small();
        assert!(matches!(
            t.column_by_name("nope"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }
}
