//! Classical per-column statistics: equi-depth histograms, most-common
//! values, HyperLogLog distinct-count sketches and reservoir samples.
//!
//! These drive the engine's *traditional* cardinality estimator (the
//! PostgreSQL-style baseline every learned method in the paper is compared
//! against) and also serve as featurization inputs for several learned
//! estimators.

pub mod histogram;
pub mod hll;
pub mod mcv;
pub mod sample;
pub mod table_stats;

pub use histogram::EquiDepthHistogram;
pub use hll::HyperLogLog;
pub use mcv::Mcv;
pub use sample::reservoir_sample;
pub use table_stats::{CatalogStats, ColumnStats, StatsConfig, TableStats};
