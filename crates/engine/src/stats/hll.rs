//! HyperLogLog distinct-count sketch.
//!
//! Used to estimate per-column NDV (number of distinct values) without
//! materializing a hash set over the whole column. NDV feeds the classical
//! join-selectivity formula `1 / max(ndv_l, ndv_r)`.

/// A HyperLogLog sketch with `2^b` registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    b: u8,
    registers: Vec<u8>,
}

/// SplitMix64: a fast, well-mixed 64-bit hash for integer keys.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HyperLogLog {
    /// Create a sketch with `2^b` registers (`4 <= b <= 16`).
    pub fn new(b: u8) -> HyperLogLog {
        let b = b.clamp(4, 16);
        HyperLogLog {
            b,
            registers: vec![0; 1 << b],
        }
    }

    /// Insert a pre-hashed 64-bit key.
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.b)) as usize;
        let rest = hash << self.b;
        // Rank = position of the leftmost 1-bit in the remaining bits.
        let rank = (rest.leading_zeros() as u8).min(64 - self.b) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Insert an integer key (hashed internally).
    pub fn insert_i64(&mut self, v: i64) {
        self.insert_hash(splitmix64(v as u64));
    }

    /// Insert a float key (hashed by bit pattern; `-0.0` normalized).
    pub fn insert_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.insert_hash(splitmix64(v.to_bits()));
    }

    /// Estimated number of distinct inserted keys, with the standard
    /// small-range (linear counting) correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

/// Exact-or-sketched NDV of an integer slice: exact via hash set for small
/// inputs, HLL for large ones. The cutoff keeps stats builds fast while
/// exercising the sketch on realistic sizes.
pub fn ndv_i64(values: &[i64]) -> f64 {
    if values.len() <= 4096 {
        let set: std::collections::HashSet<i64> = values.iter().copied().collect();
        set.len() as f64
    } else {
        let mut hll = HyperLogLog::new(12);
        for &v in values {
            hll.insert_i64(v);
        }
        hll.estimate().min(values.len() as f64).max(1.0)
    }
}

/// Same as [`ndv_i64`] for floats.
pub fn ndv_f64(values: &[f64]) -> f64 {
    if values.len() <= 4096 {
        let set: std::collections::HashSet<u64> = values.iter().map(|v| v.to_bits()).collect();
        set.len() as f64
    } else {
        let mut hll = HyperLogLog::new(12);
        for &v in values {
            hll.insert_f64(v);
        }
        hll.estimate().min(values.len() as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_small_cardinality_is_near_exact() {
        let mut h = HyperLogLog::new(10);
        for i in 0..100 {
            h.insert_i64(i);
        }
        let est = h.estimate();
        assert!((est - 100.0).abs() / 100.0 < 0.1, "est = {est}");
    }

    #[test]
    fn hll_large_cardinality_within_5_percent() {
        let mut h = HyperLogLog::new(12);
        for i in 0..200_000i64 {
            h.insert_i64(i * 7 + 13);
        }
        let est = h.estimate();
        let err = (est - 200_000.0).abs() / 200_000.0;
        assert!(err < 0.05, "relative error {err} too large (est {est})");
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(10);
        for _ in 0..10_000 {
            h.insert_i64(42);
        }
        assert!(h.estimate() < 3.0);
    }

    #[test]
    fn ndv_helpers() {
        let v: Vec<i64> = (0..1000).map(|i| i % 17).collect();
        assert_eq!(ndv_i64(&v), 17.0);
        let big: Vec<i64> = (0..10_000).collect();
        let est = ndv_i64(&big);
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05);
        let f: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        assert_eq!(ndv_f64(&f), 5.0);
    }

    #[test]
    fn float_zero_normalization() {
        let mut h = HyperLogLog::new(10);
        h.insert_f64(0.0);
        h.insert_f64(-0.0);
        assert!(h.estimate() < 1.5);
    }
}
