//! Aggregated statistics per column, table and catalog.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::Result;
use crate::query::expr::CmpOp;
use crate::stats::histogram::EquiDepthHistogram;
use crate::stats::hll::{ndv_f64, ndv_i64};
use crate::stats::mcv::Mcv;
use crate::stats::sample::reservoir_sample;
use crate::table::Table;
use crate::types::{DataType, Value};
use crate::Catalog;

/// Knobs for statistics collection.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Histogram buckets per numeric column.
    pub histogram_buckets: usize,
    /// MCV list length.
    pub mcv_entries: usize,
    /// Reservoir sample size per table.
    pub sample_size: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            histogram_buckets: 64,
            mcv_entries: 16,
            sample_size: 1024,
            seed: 0x5EED,
        }
    }
}

/// Statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Logical type.
    pub dtype: DataType,
    /// Minimum (numeric view; text uses dictionary codes).
    pub min: f64,
    /// Maximum (numeric view).
    pub max: f64,
    /// Estimated number of distinct values.
    pub ndv: f64,
    /// Equi-depth histogram (numeric columns only).
    pub histogram: Option<EquiDepthHistogram>,
    /// Most common values.
    pub mcv: Mcv,
}

/// Default selectivity for predicates the statistics cannot reason about
/// (mirrors PostgreSQL's `DEFAULT_INEQ_SEL`).
const DEFAULT_SEL: f64 = 1.0 / 3.0;

impl ColumnStats {
    /// Build from a column.
    pub fn build(col: &Column, cfg: &StatsConfig) -> ColumnStats {
        match col {
            Column::Int(v) => {
                let f: Vec<f64> = v.iter().map(|&x| x as f64).collect();
                ColumnStats {
                    dtype: DataType::Int,
                    min: f.iter().copied().fold(f64::INFINITY, f64::min),
                    max: f.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    ndv: ndv_i64(v).max(1.0),
                    histogram: EquiDepthHistogram::build(&f, cfg.histogram_buckets),
                    mcv: Mcv::build_i64(v, cfg.mcv_entries),
                }
            }
            Column::Float(v) => ColumnStats {
                dtype: DataType::Float,
                min: v.iter().copied().fold(f64::INFINITY, f64::min),
                max: v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                ndv: ndv_f64(v).max(1.0),
                histogram: EquiDepthHistogram::build(v, cfg.histogram_buckets),
                mcv: Mcv::build_i64(&[], 0), // floats rarely repeat; skip MCV
            },
            Column::Text { dict, codes } => ColumnStats {
                dtype: DataType::Text,
                min: 0.0,
                max: dict.len().saturating_sub(1) as f64,
                ndv: dict.len().max(1) as f64,
                histogram: None,
                mcv: Mcv::build_text(dict, codes, cfg.mcv_entries),
            },
        }
    }

    /// Estimated selectivity of `col OP value` under these statistics.
    pub fn selectivity(&self, op: CmpOp, value: &Value) -> f64 {
        match op {
            CmpOp::Eq => self.eq_selectivity(value),
            CmpOp::Neq => (1.0 - self.eq_selectivity(value)).clamp(0.0, 1.0),
            _ => {
                let Some(v) = value.as_f64() else {
                    return DEFAULT_SEL;
                };
                match &self.histogram {
                    Some(h) => h.selectivity(op, v),
                    None => DEFAULT_SEL,
                }
            }
        }
    }

    fn eq_selectivity(&self, value: &Value) -> f64 {
        if let Some(f) = self.mcv.frequency(value) {
            return f;
        }
        // Tail estimate: remaining mass spread over remaining distinct values.
        let tail_ndv = (self.ndv - self.mcv.len() as f64).max(1.0);
        ((1.0 - self.mcv.mass()) / tail_ndv).clamp(1e-9, 1.0)
    }
}

/// Statistics of one table: per-column stats plus a row-id sample.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count at collection time.
    pub nrows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Reservoir sample of row ids.
    pub sample: Vec<u32>,
}

impl TableStats {
    /// Collect statistics over a table.
    pub fn build(table: &Table, cfg: &StatsConfig) -> TableStats {
        TableStats {
            nrows: table.nrows(),
            columns: table
                .columns()
                .iter()
                .map(|c| ColumnStats::build(c, cfg))
                .collect(),
            sample: reservoir_sample(table.nrows(), cfg.sample_size, cfg.seed),
        }
    }

    /// Stats for a column by name.
    pub fn column(&self, table: &Table, name: &str) -> Result<&ColumnStats> {
        let idx = table.schema.column_index(name).ok_or_else(|| {
            crate::error::EngineError::UnknownColumn {
                table: table.name().to_string(),
                column: name.to_string(),
            }
        })?;
        Ok(&self.columns[idx])
    }
}

/// Statistics for every table in a catalog.
#[derive(Debug, Clone)]
pub struct CatalogStats {
    tables: HashMap<String, TableStats>,
    /// Config used at build time (estimators read the sample size etc.).
    pub config: StatsConfig,
}

impl CatalogStats {
    /// Collect statistics for all tables.
    pub fn build(catalog: &Catalog, cfg: StatsConfig) -> CatalogStats {
        let tables = catalog
            .tables()
            .iter()
            .map(|t| (t.name().to_string(), TableStats::build(t, &cfg)))
            .collect();
        CatalogStats {
            tables,
            config: cfg,
        }
    }

    /// Collect with default config.
    pub fn build_default(catalog: &Catalog) -> CatalogStats {
        Self::build(catalog, StatsConfig::default())
    }

    /// Stats for a table by name.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Re-collect statistics for a single table (after drift/appends).
    pub fn refresh_table(&mut self, catalog: &Catalog, name: &str) -> Result<()> {
        let table = catalog.table(name)?;
        self.tables
            .insert(name.to_string(), TableStats::build(table, &self.config));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .int("id", (0..1000).collect())
            .int("grp", (0..1000).map(|i| i % 10).collect())
            .float("score", (0..1000).map(|i| (i as f64) / 10.0).collect())
            .text(
                "label",
                (0..1000)
                    .map(|i| if i % 4 == 0 { "hot" } else { "cold" }.to_string())
                    .collect(),
            )
            .primary_key("id")
            .build()
            .unwrap()
    }

    #[test]
    fn column_stats_basics() {
        let t = table();
        let ts = TableStats::build(&t, &StatsConfig::default());
        let id = ts.column(&t, "id").unwrap();
        assert_eq!(id.min, 0.0);
        assert_eq!(id.max, 999.0);
        assert!((id.ndv - 1000.0).abs() < 50.0);
        let grp = ts.column(&t, "grp").unwrap();
        assert_eq!(grp.ndv, 10.0);
    }

    #[test]
    fn eq_selectivity_uses_mcv() {
        let t = table();
        let ts = TableStats::build(&t, &StatsConfig::default());
        let grp = ts.column(&t, "grp").unwrap();
        let sel = grp.selectivity(CmpOp::Eq, &Value::Int(3));
        assert!((sel - 0.1).abs() < 1e-9, "sel = {sel}");
        let label = ts.column(&t, "label").unwrap();
        let sel = label.selectivity(CmpOp::Eq, &Value::Text("hot".into()));
        assert!((sel - 0.25).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_on_uniform() {
        let t = table();
        let ts = TableStats::build(&t, &StatsConfig::default());
        let score = ts.column(&t, "score").unwrap();
        let sel = score.selectivity(CmpOp::Lt, &Value::Float(50.0));
        assert!((sel - 0.5).abs() < 0.05, "sel = {sel}");
    }

    #[test]
    fn unknown_value_eq_uses_tail() {
        let t = table();
        let ts = TableStats::build(&t, &StatsConfig::default());
        let grp = ts.column(&t, "grp").unwrap();
        // 4242 never occurs; tail estimate must be small but positive.
        let sel = grp.selectivity(CmpOp::Eq, &Value::Int(4242));
        assert!(sel > 0.0 && sel < 0.2);
    }

    #[test]
    fn catalog_stats_refresh() {
        let mut catalog = Catalog::new();
        catalog.add_table(table());
        let mut stats = CatalogStats::build_default(&catalog);
        assert_eq!(stats.table("t").unwrap().nrows, 1000);

        let extra = TableBuilder::new("t")
            .int("id", vec![1000])
            .int("grp", vec![0])
            .float("score", vec![0.0])
            .text("label", vec!["hot".into()])
            .primary_key("id")
            .build()
            .unwrap();
        catalog.table_mut("t").unwrap().append(&extra).unwrap();
        stats.refresh_table(&catalog, "t").unwrap();
        assert_eq!(stats.table("t").unwrap().nrows, 1001);
    }

    #[test]
    fn text_range_predicate_falls_back_to_default() {
        let t = table();
        let ts = TableStats::build(&t, &StatsConfig::default());
        let label = ts.column(&t, "label").unwrap();
        let sel = label.selectivity(CmpOp::Lt, &Value::Text("m".into()));
        assert_eq!(sel, DEFAULT_SEL);
    }
}
