//! Reservoir sampling of row ids.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a uniform sample of `k` row ids from `0..n` without replacement
/// using reservoir sampling (Algorithm R). Deterministic given the seed.
///
/// The sample underlies the engine's sampling-based cardinality estimator
/// and the kernel-density estimators in `lqo-card`.
pub fn reservoir_sample(n: usize, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.min(n);
    let mut reservoir: Vec<u32> = (0..k as u32).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i as u32;
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_and_range() {
        let s = reservoir_sample(1000, 100, 7);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&i| i < 1000));
        // No duplicates.
        let set: std::collections::HashSet<u32> = s.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn sample_smaller_population() {
        let s = reservoir_sample(5, 100, 7);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(reservoir_sample(500, 50, 42), reservoir_sample(500, 50, 42));
        assert_ne!(reservoir_sample(500, 50, 42), reservoir_sample(500, 50, 43));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample of 0..10000 should be near 5000.
        let s = reservoir_sample(10_000, 1_000, 3);
        let mean: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
        assert!((mean - 5_000.0).abs() < 500.0, "mean = {mean}");
    }
}
