//! Equi-depth (equi-height) histograms over numeric columns.

use serde::{Deserialize, Serialize};

use crate::query::expr::CmpOp;

/// An equi-depth histogram: bucket boundaries chosen so each bucket holds
/// (approximately) the same number of rows. Selectivity of a range predicate
/// is estimated by linear interpolation within the boundary bucket — the
/// same scheme PostgreSQL's `scalarltsel` uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// `buckets + 1` boundaries, non-decreasing.
    bounds: Vec<f64>,
    /// Total number of rows summarized.
    total: f64,
}

impl EquiDepthHistogram {
    /// Build from raw values (need not be sorted). `buckets` is clamped to
    /// the number of values. Returns `None` for empty input.
    pub fn build(values: &[f64], buckets: usize) -> Option<EquiDepthHistogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let b = buckets.min(sorted.len());
        let n = sorted.len();
        let mut bounds = Vec::with_capacity(b + 1);
        bounds.push(sorted[0]);
        for i in 1..b {
            let idx = (i * n) / b;
            bounds.push(sorted[idx.min(n - 1)]);
        }
        bounds.push(sorted[n - 1]);
        Some(EquiDepthHistogram {
            bounds,
            total: n as f64,
        })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Smallest summarized value.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest summarized value.
    pub fn max(&self) -> f64 {
        *self.bounds.last().unwrap()
    }

    /// Estimated fraction of rows with value `< v` (strict).
    pub fn frac_below(&self, v: f64) -> f64 {
        if v <= self.min() {
            return 0.0;
        }
        if v > self.max() {
            return 1.0;
        }
        let nb = self.num_buckets() as f64;
        // Find the bucket containing v.
        let mut lo = 0usize;
        let mut hi = self.num_buckets();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.bounds[mid + 1] < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let (b_lo, b_hi) = (self.bounds[lo], self.bounds[lo + 1]);
        let within = if b_hi > b_lo {
            ((v - b_lo) / (b_hi - b_lo)).clamp(0.0, 1.0)
        } else {
            0.5
        };
        ((lo as f64 + within) / nb).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a range operator. Equality is better served
    /// by MCVs + distinct counts; here it falls back to one bucket-width of
    /// probability mass, which the caller overrides when it has ndv.
    pub fn selectivity(&self, op: CmpOp, v: f64) -> f64 {
        match op {
            CmpOp::Lt => self.frac_below(v),
            CmpOp::Le => self.frac_below(v + 0.0) + self.point_mass(),
            CmpOp::Gt => 1.0 - self.frac_below(v) - self.point_mass(),
            CmpOp::Ge => 1.0 - self.frac_below(v),
            CmpOp::Eq => self.point_mass(),
            CmpOp::Neq => 1.0 - self.point_mass(),
        }
        .clamp(0.0, 1.0)
    }

    /// Default point-probability mass: one part in `total` rows, floored at
    /// a tiny epsilon so products never collapse to zero.
    fn point_mass(&self) -> f64 {
        (1.0 / self.total).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_99() -> EquiDepthHistogram {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        EquiDepthHistogram::build(&vals, 10).unwrap()
    }

    #[test]
    fn build_shapes() {
        let h = uniform_0_99();
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 99.0);
    }

    #[test]
    fn frac_below_uniform_is_linear() {
        let h = uniform_0_99();
        assert!((h.frac_below(50.0) - 0.5).abs() < 0.05);
        assert!((h.frac_below(25.0) - 0.25).abs() < 0.05);
        assert_eq!(h.frac_below(-10.0), 0.0);
        assert_eq!(h.frac_below(1000.0), 1.0);
    }

    #[test]
    fn range_selectivities_are_complementary() {
        let h = uniform_0_99();
        let lt = h.selectivity(CmpOp::Lt, 30.0);
        let ge = h.selectivity(CmpOp::Ge, 30.0);
        assert!((lt + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_buckets_adapt() {
        // 90% of mass at value 0, the rest spread over [1, 10].
        let mut vals = vec![0.0; 900];
        vals.extend((0..100).map(|i| 1.0 + (i as f64) * 0.09));
        let h = EquiDepthHistogram::build(&vals, 10).unwrap();
        // Almost everything is below 0.5.
        assert!(h.frac_below(0.5) > 0.8);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(EquiDepthHistogram::build(&[], 10).is_none());
        assert!(EquiDepthHistogram::build(&[1.0], 0).is_none());
        let h = EquiDepthHistogram::build(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 5.0);
        // All-equal column: everything is >= 5 and <= 5.
        assert_eq!(h.frac_below(5.0), 0.0);
        assert_eq!(h.frac_below(5.1), 1.0);
    }

    #[test]
    fn non_finite_values_filtered() {
        let h = EquiDepthHistogram::build(&[1.0, f64::NAN, 2.0, f64::INFINITY], 2).unwrap();
        assert_eq!(h.max(), 2.0);
    }
}
