//! Most-common-value lists.

use std::collections::HashMap;

use crate::types::Value;

/// The top-k most frequent values of a column with their frequencies
/// (fractions of the table). Equality selectivity checks the MCV list
/// first and falls back to `(1 - mcv_mass) / (ndv - k)` for the tail,
/// exactly as PostgreSQL's `eqsel` does.
#[derive(Debug, Clone, PartialEq)]
pub struct Mcv {
    /// `(value, frequency)` pairs sorted by descending frequency.
    entries: Vec<(Value, f64)>,
    /// Total probability mass covered by the list.
    mass: f64,
}

impl Mcv {
    /// Build the top-`k` list over integer data.
    pub fn build_i64(values: &[i64], k: usize) -> Mcv {
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for &v in values {
            *counts.entry(v).or_insert(0) += 1;
        }
        Self::from_counts(
            counts.into_iter().map(|(v, c)| (Value::Int(v), c)),
            values.len(),
            k,
        )
    }

    /// Build the top-`k` list over text data (by dictionary code, decoded).
    pub fn build_text(dict: &[String], codes: &[u32], k: usize) -> Mcv {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &c in codes {
            *counts.entry(c).or_insert(0) += 1;
        }
        Self::from_counts(
            counts
                .into_iter()
                .map(|(c, n)| (Value::Text(dict[c as usize].clone()), n)),
            codes.len(),
            k,
        )
    }

    fn from_counts(counts: impl Iterator<Item = (Value, usize)>, total: usize, k: usize) -> Mcv {
        let mut pairs: Vec<(Value, usize)> = counts.collect();
        pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        pairs.truncate(k);
        let total = total.max(1) as f64;
        let entries: Vec<(Value, f64)> = pairs
            .into_iter()
            .map(|(v, c)| (v, c as f64 / total))
            .collect();
        let mass = entries.iter().map(|(_, f)| f).sum();
        Mcv { entries, mass }
    }

    /// Frequency of `v` if it is in the list.
    pub fn frequency(&self, v: &Value) -> Option<f64> {
        self.entries.iter().find(|(e, _)| e == v).map(|(_, f)| *f)
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probability mass covered by the list.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Iterate entries by descending frequency.
    pub fn entries(&self) -> &[(Value, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_ordering_and_mass() {
        // 6 zeros, 3 ones, 1 two.
        let vals = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 2];
        let mcv = Mcv::build_i64(&vals, 2);
        assert_eq!(mcv.len(), 2);
        assert_eq!(mcv.entries()[0].0, Value::Int(0));
        assert!((mcv.entries()[0].1 - 0.6).abs() < 1e-12);
        assert!((mcv.mass() - 0.9).abs() < 1e-12);
        assert_eq!(mcv.frequency(&Value::Int(2)), None);
    }

    #[test]
    fn text_mcv() {
        let dict = vec!["a".to_string(), "b".to_string()];
        let codes = vec![0, 0, 0, 1];
        let mcv = Mcv::build_text(&dict, &codes, 1);
        assert_eq!(mcv.frequency(&Value::Text("a".into())), Some(0.75));
    }

    #[test]
    fn empty_input() {
        let mcv = Mcv::build_i64(&[], 4);
        assert!(mcv.is_empty());
        assert_eq!(mcv.mass(), 0.0);
    }
}
