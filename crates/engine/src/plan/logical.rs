//! Logical join trees: join order without physical operator choices.

use crate::query::table_set::TableSet;

/// A binary join tree over table positions. This is the object join-order
/// search methods (`lqo-join`) produce; the optimizer then assigns physical
/// operators to turn it into a [`crate::plan::PhysNode`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// A base table (position in the query's `FROM` list).
    Leaf(usize),
    /// A join of two subtrees.
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Join two subtrees.
    pub fn join(left: JoinTree, right: JoinTree) -> JoinTree {
        JoinTree::Join(Box::new(left), Box::new(right))
    }

    /// Build a left-deep tree following `order` (first element is the
    /// left-most leaf).
    pub fn left_deep(order: &[usize]) -> Option<JoinTree> {
        let mut it = order.iter();
        let first = *it.next()?;
        let mut tree = JoinTree::Leaf(first);
        for &pos in it {
            tree = JoinTree::join(tree, JoinTree::Leaf(pos));
        }
        Some(tree)
    }

    /// Set of tables covered by this subtree.
    pub fn tables(&self) -> TableSet {
        match self {
            JoinTree::Leaf(p) => TableSet::singleton(*p),
            JoinTree::Join(l, r) => l.tables().union(r.tables()),
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.tables().len()
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.num_joins() + r.num_joins(),
        }
    }

    /// True when every right child is a leaf (left-deep shape).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => matches!(**r, JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }

    /// Leaves in left-to-right order.
    pub fn leaf_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(t: &JoinTree, out: &mut Vec<usize>) {
            match t {
                JoinTree::Leaf(p) => out.push(*p),
                JoinTree::Join(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Height of the tree (a leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Join(l, r) => 1 + l.height().max(r.height()),
        }
    }
}

impl std::fmt::Display for JoinTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinTree::Leaf(p) => write!(f, "{p}"),
            JoinTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_deep_construction() {
        let t = JoinTree::left_deep(&[2, 0, 1]).unwrap();
        assert!(t.is_left_deep());
        assert_eq!(t.leaf_order(), vec![2, 0, 1]);
        assert_eq!(t.num_joins(), 2);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.tables(), TableSet::full(3));
        assert_eq!(t.to_string(), "((2 ⋈ 0) ⋈ 1)");
    }

    #[test]
    fn bushy_tree_is_not_left_deep() {
        let t = JoinTree::join(
            JoinTree::join(JoinTree::Leaf(0), JoinTree::Leaf(1)),
            JoinTree::join(JoinTree::Leaf(2), JoinTree::Leaf(3)),
        );
        assert!(!t.is_left_deep());
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn empty_order() {
        assert!(JoinTree::left_deep(&[]).is_none());
        let single = JoinTree::left_deep(&[5]).unwrap();
        assert_eq!(single, JoinTree::Leaf(5));
        assert!(single.is_left_deep());
        assert_eq!(single.height(), 0);
    }
}
