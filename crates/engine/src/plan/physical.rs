//! Physical plans: join trees annotated with join algorithms.

use std::fmt::Write as _;

use crate::plan::logical::JoinTree;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// Physical join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Build a hash table on the left input, probe with the right.
    Hash,
    /// Nested loops over both inputs (the only algorithm that can evaluate
    /// a cross product).
    NestedLoop,
    /// Sort both inputs on the join key, then merge.
    Merge,
}

impl JoinAlgo {
    /// All algorithms, in the stable order used by one-hot featurization.
    pub const ALL: [JoinAlgo; 3] = [JoinAlgo::Hash, JoinAlgo::NestedLoop, JoinAlgo::Merge];

    /// Position in [`JoinAlgo::ALL`].
    pub fn index(self) -> usize {
        JoinAlgo::ALL.iter().position(|&a| a == self).unwrap()
    }
}

impl std::fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JoinAlgo::Hash => "HashJoin",
            JoinAlgo::NestedLoop => "NestedLoopJoin",
            JoinAlgo::Merge => "MergeJoin",
        };
        write!(f, "{s}")
    }
}

/// A physical plan node. Scans carry no predicate list: predicates are
/// looked up from the query at execution/costing time, which keeps plans
/// small and hashable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhysNode {
    /// Scan of the table at `pos` in the query's `FROM` list, applying all
    /// of that table's filter predicates.
    Scan {
        /// Table position.
        pos: usize,
    },
    /// A join of two sub-plans.
    Join {
        /// Physical algorithm.
        algo: JoinAlgo,
        /// Left input (hash-join build side).
        left: Box<PhysNode>,
        /// Right input (hash-join probe side).
        right: Box<PhysNode>,
    },
}

impl PhysNode {
    /// Scan node helper.
    pub fn scan(pos: usize) -> PhysNode {
        PhysNode::Scan { pos }
    }

    /// Join node helper.
    pub fn join(algo: JoinAlgo, left: PhysNode, right: PhysNode) -> PhysNode {
        PhysNode::Join {
            algo,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Set of tables covered by this sub-plan.
    pub fn tables(&self) -> TableSet {
        match self {
            PhysNode::Scan { pos } => TableSet::singleton(*pos),
            PhysNode::Join { left, right, .. } => left.tables().union(right.tables()),
        }
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            PhysNode::Scan { .. } => 0,
            PhysNode::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Convert a logical join tree into a physical plan by assigning the
    /// same algorithm to every join.
    pub fn from_join_tree(tree: &JoinTree, algo: JoinAlgo) -> PhysNode {
        match tree {
            JoinTree::Leaf(p) => PhysNode::scan(*p),
            JoinTree::Join(l, r) => PhysNode::join(
                algo,
                PhysNode::from_join_tree(l, algo),
                PhysNode::from_join_tree(r, algo),
            ),
        }
    }

    /// Strip physical algorithm choices, returning the logical tree.
    pub fn join_tree(&self) -> JoinTree {
        match self {
            PhysNode::Scan { pos } => JoinTree::Leaf(*pos),
            PhysNode::Join { left, right, .. } => {
                JoinTree::join(left.join_tree(), right.join_tree())
            }
        }
    }

    /// Visit every sub-plan bottom-up (children before parents).
    pub fn visit_bottom_up<'a>(&'a self, f: &mut impl FnMut(&'a PhysNode)) {
        if let PhysNode::Join { left, right, .. } = self {
            left.visit_bottom_up(f);
            right.visit_bottom_up(f);
        }
        f(self);
    }

    /// A compact stable string identifying the plan's structure; used for
    /// deduplicating candidate plans in learned optimizers.
    pub fn fingerprint(&self) -> String {
        match self {
            PhysNode::Scan { pos } => format!("S{pos}"),
            PhysNode::Join { algo, left, right } => format!(
                "({}{}{}{})",
                left.fingerprint(),
                match algo {
                    JoinAlgo::Hash => "H",
                    JoinAlgo::NestedLoop => "N",
                    JoinAlgo::Merge => "M",
                },
                right.fingerprint(),
                ""
            ),
        }
    }

    /// Pretty explain-style rendering using the query's aliases.
    pub fn explain(&self, query: &SpjQuery) -> String {
        let mut out = String::new();
        fn walk(node: &PhysNode, query: &SpjQuery, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            match node {
                PhysNode::Scan { pos } => {
                    let t = &query.tables[*pos];
                    let preds = query.predicates_on(*pos);
                    let _ = write!(out, "{indent}Scan {} {}", t.table, t.alias);
                    if !preds.is_empty() {
                        let strs: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                        let _ = write!(out, " [{}]", strs.join(" AND "));
                    }
                    out.push('\n');
                }
                PhysNode::Join { algo, left, right } => {
                    let conds = query.joins_between(left.tables(), right.tables());
                    let cond_str = if conds.is_empty() {
                        " (cross)".to_string()
                    } else {
                        let strs: Vec<String> = conds.iter().map(|c| c.to_string()).collect();
                        format!(" on {}", strs.join(" AND "))
                    };
                    let _ = writeln!(out, "{indent}{algo}{cond_str}");
                    walk(left, query, depth + 1, out);
                    walk(right, query, depth + 1, out);
                }
            }
        }
        walk(self, query, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::{ColRef, JoinCond, TableRef};

    fn plan() -> PhysNode {
        PhysNode::join(
            JoinAlgo::Hash,
            PhysNode::scan(0),
            PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(1), PhysNode::scan(2)),
        )
    }

    #[test]
    fn tables_and_joins() {
        let p = plan();
        assert_eq!(p.tables(), TableSet::full(3));
        assert_eq!(p.num_joins(), 2);
    }

    #[test]
    fn roundtrip_logical_physical() {
        let tree = JoinTree::left_deep(&[0, 1, 2]).unwrap();
        let phys = PhysNode::from_join_tree(&tree, JoinAlgo::Hash);
        assert_eq!(phys.join_tree(), tree);
    }

    #[test]
    fn fingerprint_distinguishes_algo_and_shape() {
        let a = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let b = PhysNode::join(JoinAlgo::Merge, PhysNode::scan(0), PhysNode::scan(1));
        let c = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(1), PhysNode::scan(0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let p = plan();
        let mut seen = Vec::new();
        p.visit_bottom_up(&mut |n| seen.push(n.tables()));
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last().copied(), Some(TableSet::full(3)));
        assert_eq!(seen[0], TableSet::singleton(0));
    }

    #[test]
    fn explain_renders_aliases_and_conditions() {
        let q = SpjQuery::new(
            vec![TableRef::new("a", "x"), TableRef::new("b", "y")],
            vec![JoinCond::new(
                ColRef::new("x", "id"),
                ColRef::new("y", "a_id"),
            )],
            vec![],
        );
        let p = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let text = p.explain(&q);
        assert!(text.contains("HashJoin on x.id = y.a_id"));
        assert!(text.contains("Scan a x"));
    }
}
