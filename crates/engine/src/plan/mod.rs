//! Logical join trees and physical plans.

pub mod logical;
pub mod physical;

pub use logical::JoinTree;
pub use physical::{JoinAlgo, PhysNode};
