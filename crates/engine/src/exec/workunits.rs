//! Work-unit cost parameters.
//!
//! The executor charges *work units* for every tuple it touches; the sum is
//! the engine's deterministic, machine-independent notion of latency. The
//! native cost model (see [`crate::optimizer::cost`]) predicts cost with the
//! same per-tuple constants but — deliberately — **without** the runtime
//! effects (`hash spill`, `nested-loop cache discount`): just as a real
//! DBMS's analytical cost model abstracts away caches and memory pressure,
//! our native model is a biased approximation of true execution cost. That
//! residual bias is what learned cost models (and end-to-end learned
//! optimizers) can exploit.
//!
//! **Charging-cadence contract.** The work account is part of the
//! executor's determinism guarantee (the row-ordering half lives in
//! [`crate::exec::executor`]'s module docs): charges are accumulated in a
//! fixed serial order — per-operator up-front charges, then per-tuple
//! output charges in 64 Ki-tuple blocks as rows are emitted. `f64`
//! addition does not associate, so the parallel executor must *replay*
//! emission charges in this exact cadence after its deterministic merge
//! rather than summing worker-local totals; any change to the cadence
//! here changes recorded work bit-for-bit and must be mirrored in
//! `exec::parallel`.

/// Per-tuple cost constants shared by the executor and the native cost
/// model, plus executor-only runtime effects.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Cost of scanning one base tuple.
    pub scan_tuple: f64,
    /// Extra cost per predicate evaluated per tuple.
    pub pred_eval: f64,
    /// Cost of inserting one tuple into a hash table.
    pub hash_build: f64,
    /// Cost of probing the hash table with one tuple.
    pub hash_probe: f64,
    /// Cost of one nested-loop pair comparison.
    pub nl_pair: f64,
    /// Cost per tuple per `log2(n)` of sorting.
    pub sort_tuple: f64,
    /// Cost of advancing one tuple through the merge phase.
    pub merge_tuple: f64,
    /// Cost of materializing one output tuple, per unit of width.
    pub output_tuple: f64,

    // --- runtime-only effects, invisible to the native cost model ---
    /// Hash tables above this many build rows "spill": build+probe work is
    /// multiplied by [`CostParams::spill_factor`].
    pub hash_mem_rows: usize,
    /// Multiplier applied when a hash join spills.
    pub spill_factor: f64,
    /// Nested-loop inner relations at most this large are "cache resident".
    pub nl_cache_rows: usize,
    /// Pair-cost multiplier for cache-resident inner relations.
    pub nl_cache_discount: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            scan_tuple: 1.0,
            pred_eval: 0.2,
            hash_build: 1.5,
            hash_probe: 1.0,
            nl_pair: 0.8,
            sort_tuple: 0.4,
            merge_tuple: 0.6,
            output_tuple: 0.3,
            hash_mem_rows: 100_000,
            spill_factor: 2.5,
            nl_cache_rows: 1_000,
            nl_cache_discount: 0.3,
        }
    }
}

impl CostParams {
    /// Work to scan `n` rows evaluating `p` predicates each.
    pub fn scan_work(&self, n: f64, p: usize) -> f64 {
        n * (self.scan_tuple + self.pred_eval * p as f64)
    }

    /// Analytical (spill-free) hash-join work.
    pub fn hash_join_work(&self, build: f64, probe: f64, out: f64, width: usize) -> f64 {
        build * self.hash_build + probe * self.hash_probe + self.output_work(out, width)
    }

    /// Analytical nested-loop work (no cache discount).
    pub fn nl_join_work(&self, outer: f64, inner: f64, out: f64, width: usize) -> f64 {
        outer * inner * self.nl_pair + self.output_work(out, width)
    }

    /// Analytical merge-join work (sorts both inputs).
    pub fn merge_join_work(&self, left: f64, right: f64, out: f64, width: usize) -> f64 {
        self.sort_work(left)
            + self.sort_work(right)
            + (left + right) * self.merge_tuple
            + self.output_work(out, width)
    }

    /// `n log2 n` sort work.
    pub fn sort_work(&self, n: f64) -> f64 {
        if n <= 1.0 {
            0.0
        } else {
            n * n.log2() * self.sort_tuple
        }
    }

    /// Cost of materializing `out` tuples of `width` joined tables.
    pub fn output_work(&self, out: f64, width: usize) -> f64 {
        out * self.output_tuple * width as f64
    }

    /// Predicted wall-clock scaling of `work` units on `threads` workers
    /// under Amdahl's law with serial fraction
    /// [`PARALLEL_SERIAL_FRACTION`]. This is a *planning hook* for
    /// latency-aware components choosing between serial and parallel
    /// execution; the deterministic work-unit account itself is
    /// mode-independent by construction.
    pub fn parallel_work(&self, work: f64, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        work * (PARALLEL_SERIAL_FRACTION + (1.0 - PARALLEL_SERIAL_FRACTION) / t)
    }
}

/// Fraction of operator work that does not parallelize (coordination,
/// morsel dispatch, build-table merge, final concatenation). Used by
/// [`CostParams::parallel_work`].
pub const PARALLEL_SERIAL_FRACTION: f64 = 0.08;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_work_scales_with_predicates() {
        let p = CostParams::default();
        assert_eq!(p.scan_work(100.0, 0), 100.0);
        assert!(p.scan_work(100.0, 2) > p.scan_work(100.0, 0));
    }

    #[test]
    fn nl_quadratic_vs_hash_linear() {
        let p = CostParams::default();
        let hash = p.hash_join_work(1_000.0, 1_000.0, 100.0, 2);
        let nl = p.nl_join_work(1_000.0, 1_000.0, 100.0, 2);
        assert!(nl > 10.0 * hash);
    }

    #[test]
    fn sort_work_degenerate() {
        let p = CostParams::default();
        assert_eq!(p.sort_work(0.0), 0.0);
        assert_eq!(p.sort_work(1.0), 0.0);
        assert!(p.sort_work(1024.0) > 0.0);
    }

    #[test]
    fn parallel_work_amdahl_bounds() {
        let p = CostParams::default();
        assert_eq!(p.parallel_work(1000.0, 1), 1000.0);
        let w4 = p.parallel_work(1000.0, 4);
        let w8 = p.parallel_work(1000.0, 8);
        // Monotone in threads, bounded below by the serial fraction.
        assert!(w4 < 1000.0 && w8 < w4);
        assert!(w8 > 1000.0 * PARALLEL_SERIAL_FRACTION);
        assert_eq!(p.parallel_work(1000.0, 0), 1000.0);
    }

    #[test]
    fn merge_includes_both_sorts() {
        let p = CostParams::default();
        let m = p.merge_join_work(100.0, 200.0, 10.0, 2);
        assert!(m >= p.sort_work(100.0) + p.sort_work(200.0));
    }
}
